//! # Albireo
//!
//! A full-system simulator for **Albireo: Energy-Efficient Acceleration of
//! Convolutional Neural Networks via Silicon Photonics** (Shiflett et al.,
//! ISCA 2021).
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`photonics`] — silicon-photonic device physics (MRRs, MZMs, couplers,
//!   photodiodes, noise, crosstalk, precision analysis).
//! * [`tensor`] — a small dense tensor library with reference (digital)
//!   convolution, the golden model for the analog simulator.
//! * [`nn`] — CNN layer descriptors and the model zoo (AlexNet, VGG16,
//!   ResNet18, MobileNet).
//! * [`core`] — the Albireo architecture: PLCU / PLCG / chip models,
//!   dataflow scheduling, power, energy, area, and the functional analog
//!   simulation.
//! * [`baselines`] — the accelerators Albireo is compared against: PIXEL,
//!   DEAP-CNN, and the reported numbers for Eyeriss, ENVISION, and UNPU.
//! * [`modes`] — alternative photonic operating modes behind the same
//!   trait: Winograd F(2×2, 3×3) transform-domain convolution and an
//!   incoherent-MRR weight-stationary GEMM scheduler for dense/attention
//!   workloads.
//! * [`parallel`] — the deterministic parallel execution engine (chunked
//!   thread pool + per-work-item seed splitting) every simulator layer
//!   fans out through.
//! * [`runtime`] — the multi-chip inference-serving simulator: a
//!   deterministic discrete-event engine with seeded arrival processes,
//!   micro-batching, admission control, autoscaling, fault-aware
//!   degradation, and service metrics (latency percentiles, goodput,
//!   energy/request).
//! * [`plan`] — the capacity planner: a deterministic coarse-to-fine
//!   search over candidate fleets (chip mix × batching policy ×
//!   autoscaling), each scored by the serving simulator, that returns
//!   the minimum-energy fleet meeting an SLO plus the full
//!   (energy, attainment) frontier.
//!
//! # Quickstart
//!
//! ```
//! use albireo::core::config::{ChipConfig, TechnologyEstimate};
//! use albireo::core::energy::NetworkEvaluation;
//! use albireo::nn::zoo;
//!
//! let chip = ChipConfig::albireo_9();
//! let eval = NetworkEvaluation::evaluate(
//!     &chip,
//!     TechnologyEstimate::Conservative,
//!     &zoo::vgg16(),
//! );
//! // The paper reports 2.55 ms for VGG16 on Albireo-C; the reproduced
//! // dataflow model lands within ~15%.
//! assert!(eval.latency_s > 1e-3 && eval.latency_s < 5e-3);
//! ```

pub use albireo_baselines as baselines;
pub use albireo_core as core;
pub use albireo_modes as modes;
pub use albireo_nn as nn;
pub use albireo_parallel as parallel;
pub use albireo_photonics as photonics;
pub use albireo_plan as plan;
pub use albireo_runtime as runtime;
pub use albireo_tensor as tensor;

//! Golden-value regression tests: the committed `results/*.csv` artifacts
//! pin the scheduler's cycle counts and the latency / energy / EDP numbers
//! for all four benchmark networks under all three technology estimates.
//! Any dataflow, power, or clock change that shifts the model's headline
//! numbers fails here before it silently rewrites the paper comparison.

use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::sched::total_cycles;
use albireo_nn::{zoo, Model};
use std::path::PathBuf;

/// Relative tolerance absorbing the CSVs' printed precision (6 decimal
/// places) while still catching any real model drift.
const REL_TOL: f64 = 1e-4;

fn results_csv(name: &str) -> Vec<Vec<String>> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    text.lines()
        .skip(1) // header
        .filter(|line| !line.trim().is_empty())
        .map(|line| line.split(',').map(|f| f.trim().to_string()).collect())
        .collect()
}

fn model_named(name: &str) -> Model {
    match name {
        "AlexNet" => zoo::alexnet(),
        "VGG16" => zoo::vgg16(),
        "ResNet18" => zoo::resnet18(),
        "MobileNet" => zoo::mobilenet(),
        other => panic!("unknown golden network {other}"),
    }
}

fn estimate_tagged(tag: &str) -> TechnologyEstimate {
    match tag {
        "C" => TechnologyEstimate::Conservative,
        "M" => TechnologyEstimate::Moderate,
        "A" => TechnologyEstimate::Aggressive,
        other => panic!("unknown estimate tag {other}"),
    }
}

#[track_caller]
fn assert_close(label: &str, actual: f64, golden: f64) {
    let denom = golden.abs().max(1e-12);
    let rel = (actual - golden).abs() / denom;
    assert!(
        rel <= REL_TOL,
        "{label}: model = {actual}, golden = {golden} (rel err {rel:.2e})"
    );
}

fn chip_named(name: &str) -> ChipConfig {
    match name {
        "albireo_9" => ChipConfig::albireo_9(),
        "albireo_27" => ChipConfig::albireo_27(),
        other => panic!("unknown golden chip {other}"),
    }
}

/// The full golden grid — four networks × three estimates × two chips —
/// reproduces from the model: cycle counts exactly, latency / energy / EDP
/// within the artifact's printed precision.
#[test]
fn golden_grid_metrics_are_pinned() {
    let rows = results_csv("golden_network_metrics.csv");
    assert_eq!(rows.len(), 4 * 3 * 2, "expected the full evaluation grid");
    for row in rows {
        let (network, chip_name, tag) = (&row[0], &row[1], &row[2]);
        let chip = chip_named(chip_name);
        let model = model_named(network);
        let estimate = estimate_tagged(tag.strip_prefix("albireo_").unwrap());
        let label = format!("{network}/{chip_name}/{tag}");
        let golden_cycles: u64 = row[3].parse().unwrap();
        assert_eq!(
            total_cycles(&chip, &model),
            golden_cycles,
            "{label}: scheduler cycle count drifted"
        );
        let eval = NetworkEvaluation::evaluate(&chip, estimate, &model);
        assert_close(
            &format!("{label} latency_ms"),
            eval.latency_s * 1e3,
            row[4].parse().unwrap(),
        );
        assert_close(
            &format!("{label} energy_mj"),
            eval.energy_j * 1e3,
            row[5].parse().unwrap(),
        );
        assert_close(
            &format!("{label} edp_mj_ms"),
            eval.edp_mj_ms(),
            row[6].parse().unwrap(),
        );
    }
}

/// Every Albireo row of the Table IV artifact — the paper compares the
/// electronic baselines on AlexNet and VGG16, each under all three
/// estimates — reproduces from the model within tolerance.
#[test]
fn table4_albireo_rows_are_pinned() {
    let chip = ChipConfig::albireo_9();
    let mut albireo_rows = 0;
    for row in results_csv("table4_electronic_comparison.csv") {
        let Some(tag) = row[1].strip_prefix("albireo_") else {
            continue; // electronic baselines are reported, not modelled here
        };
        albireo_rows += 1;
        let network = &row[0];
        let eval = NetworkEvaluation::evaluate(&chip, estimate_tagged(tag), &model_named(network));
        let label = format!("{network}/albireo_{tag}");
        assert_close(
            &format!("{label} latency_ms"),
            eval.latency_s * 1e3,
            row[2].parse().unwrap(),
        );
        assert_close(
            &format!("{label} energy_mj"),
            eval.energy_j * 1e3,
            row[3].parse().unwrap(),
        );
        assert_close(
            &format!("{label} edp_mj_ms"),
            eval.edp_mj_ms(),
            row[4].parse().unwrap(),
        );
        assert_close(
            &format!("{label} gops_per_mm2"),
            eval.gops_per_mm2(),
            row[5].parse().unwrap(),
        );
        assert_close(
            &format!("{label} gops_per_mm2_active"),
            eval.gops_per_mm2_active(),
            row[6].parse().unwrap(),
        );
    }
    assert_eq!(
        albireo_rows,
        2 * 3,
        "expected both Table IV networks × every estimate"
    );
}

/// The Fig. 8 artifact pins both chip sizes (Albireo-9 and -27) under the
/// conservative estimate.
#[test]
fn fig8_both_chips_are_pinned() {
    let chip9 = ChipConfig::albireo_9();
    let chip27 = ChipConfig::albireo_27();
    let rows = results_csv("fig8_photonic_comparison.csv");
    assert_eq!(rows.len(), 4);
    for row in rows {
        let network = &row[0];
        let model = model_named(network);
        let e9 = NetworkEvaluation::evaluate(&chip9, TechnologyEstimate::Conservative, &model);
        let e27 = NetworkEvaluation::evaluate(&chip27, TechnologyEstimate::Conservative, &model);
        // Columns: 3/7/11 are albireo9 latency/energy/EDP, 4/8/12 albireo27.
        assert_close(
            &format!("{network} albireo9 latency"),
            e9.latency_s * 1e3,
            row[3].parse().unwrap(),
        );
        assert_close(
            &format!("{network} albireo27 latency"),
            e27.latency_s * 1e3,
            row[4].parse().unwrap(),
        );
        assert_close(
            &format!("{network} albireo9 energy"),
            e9.energy_j * 1e3,
            row[7].parse().unwrap(),
        );
        assert_close(
            &format!("{network} albireo27 energy"),
            e27.energy_j * 1e3,
            row[8].parse().unwrap(),
        );
        assert_close(
            &format!("{network} albireo9 EDP"),
            e9.edp_mj_ms(),
            row[11].parse().unwrap(),
        );
        assert_close(
            &format!("{network} albireo27 EDP"),
            e27.edp_mj_ms(),
            row[12].parse().unwrap(),
        );
    }
}

/// Scheduler cycle counts are pinned through the latency column: the
/// committed latency at each estimate's clock (5 GHz conservative /
/// moderate, 8 GHz aggressive) must equal the scheduler's cycle total.
#[test]
fn scheduler_cycle_counts_match_golden_latencies() {
    let chip = ChipConfig::albireo_9();
    for row in results_csv("table4_electronic_comparison.csv") {
        let Some(tag) = row[1].strip_prefix("albireo_") else {
            continue;
        };
        let estimate = estimate_tagged(tag);
        let model = model_named(&row[0]);
        let cycles = total_cycles(&chip, &model);
        let golden_latency_ms: f64 = row[2].parse().unwrap();
        let golden_cycles = golden_latency_ms * 1e-3 * estimate.clock_hz();
        assert_close(
            &format!("{}/albireo_{tag} cycles", row[0]),
            cycles as f64,
            golden_cycles,
        );
        // The evaluation's latency is exactly cycles/clock — no hidden
        // terms between the scheduler and the reported latency.
        let eval = NetworkEvaluation::evaluate(&chip, estimate, &model);
        let exact = cycles as f64 / estimate.clock_hz();
        let rel = (eval.latency_s - exact).abs() / exact;
        assert!(rel < 1e-9, "{}: latency drifted from cycle count", row[0]);
    }
}

/// The golden evaluations are invariant under the parallel engine: any
/// thread count reproduces the committed numbers bit-for-bit.
#[test]
fn golden_values_hold_under_parallel_evaluation() {
    use albireo_core::engine::{paper_grid, EvalEngine};
    use albireo_parallel::Parallelism;
    let (chips, estimates, models) = paper_grid();
    let golden = results_csv("golden_network_metrics.csv");
    for threads in [1usize, 2, 8] {
        let grid = EvalEngine::new(Parallelism::with_threads(threads))
            .evaluate_grid(&chips, &estimates, &models);
        for g in &grid {
            let tag = format!("albireo_{}", g.estimate.suffix());
            let row = golden
                .iter()
                .find(|r| r[0] == g.evaluation.network && r[1] == g.chip_name && r[2] == tag)
                .unwrap_or_else(|| {
                    panic!(
                        "no golden row for {}/{}/{tag}",
                        g.evaluation.network, g.chip_name
                    )
                });
            assert_close(
                &format!(
                    "{}/{}/{tag} at {threads} threads",
                    g.evaluation.network, g.chip_name
                ),
                g.evaluation.latency_s * 1e3,
                row[4].parse().unwrap(),
            );
        }
    }
}

//! Golden-value regression for the capacity planner: the committed
//! `results/golden_plan_frontier.csv` pins the ranked feasible frontier
//! of the golden planning scenario ([`albireo_plan::GOLDEN_PLAN_SPEC`])
//! byte for byte — fleet rankings, energy per request, p99 latencies,
//! spin-up counts, and pareto flags. Any change to the planner's search
//! order, seeding, aggregation, or to the serving engine underneath
//! that shifts the plan fails here before it silently rewrites the
//! artifact. Regenerate with:
//!
//! ```text
//! cargo run --release -p albireo-bench --bin plan_search
//! ```

use albireo_obs::Obs;
use albireo_parallel::Parallelism;
use albireo_plan::{plan, PlanSpec, GOLDEN_PLAN_SPEC};
use std::path::PathBuf;

fn golden_csv() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden_plan_frontier.csv");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn golden_plan_frontier_reproduces_byte_exactly() {
    let spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).expect("golden spec parses");
    let report = plan(&spec, Parallelism::default(), &Obs::disabled(), false).unwrap();
    assert_eq!(
        report.to_csv(),
        golden_csv(),
        "planner diverged from results/golden_plan_frontier.csv; \
         if the change is intentional, regenerate with \
         `cargo run --release -p albireo-bench --bin plan_search`"
    );
}

#[test]
fn golden_frontier_pins_the_elastic_headline() {
    // The committed artifact itself must carry the planner's headline
    // result: rank 1 is an elastic fleet that spun up during the run,
    // and every static row costs more energy per request.
    let committed = golden_csv();
    let mut rows = committed.lines();
    let header = rows.next().expect("header row");
    assert!(header.starts_with("rank,fleet,chips,policy,autoscale,"));
    let parsed: Vec<Vec<&str>> = rows.map(|r| r.split(',').collect()).collect();
    assert!(!parsed.is_empty(), "golden frontier is empty");
    let energy = |row: &[&str]| row[9].parse::<f64>().expect("energy column");
    let winner = &parsed[0];
    assert!(winner[4].starts_with("elastic"), "rank 1 must be elastic");
    assert!(
        winner[11].parse::<u64>().unwrap() > 0,
        "winner never spun up"
    );
    for row in parsed.iter().filter(|r| r[4] == "static") {
        assert!(
            energy(winner) < energy(row),
            "elastic winner must beat static fleet {} on energy",
            row[1]
        );
    }
}

//! Integration tests validating the functional analog simulation against
//! the digital golden model across shapes, seeds, and effect toggles.

use albireo::core::analog::{AnalogEngine, AnalogSimConfig};
use albireo::core::config::ChipConfig;
use albireo::tensor::conv::{conv2d, depthwise_conv, pointwise_conv, ConvSpec};
use albireo::tensor::quant::Quantizer;
use albireo::tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn relative_error(analog: &Tensor3, reference: &Tensor3, full_scale: f64) -> f64 {
    analog.max_abs_diff(reference) / full_scale
}

#[test]
fn analog_matches_digital_across_shapes() {
    let chip = ChipConfig::albireo_9();
    for (seed, z, n, kernels) in [
        (1u64, 1usize, 6usize, 1usize),
        (2, 3, 8, 2),
        (3, 7, 10, 4),
        (4, 12, 6, 3),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(z, n, n, 0.0, 1.0, &mut rng);
        let weights = Tensor4::random_gaussian(kernels, z, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &weights, &spec);
        let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
        let analog = engine.conv2d(&input, &weights, &spec);
        let fs = input.max_abs() * weights.max_abs() * 27.0;
        let err = relative_error(&analog, &reference, fs);
        // 8-bit ADC + ~6.7 analog bits, accumulated over channel groups.
        let groups = z.div_ceil(3) as f64;
        assert!(
            err < groups * 0.02,
            "seed {seed}: relative error {err} over {groups} groups"
        );
    }
}

#[test]
fn error_decomposition_is_monotone() {
    // Adding an effect never reduces the worst-case error (statistically;
    // checked with a fixed seed).
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(42);
    let input = Tensor3::random_uniform(6, 12, 12, 0.0, 1.0, &mut rng);
    let weights = Tensor4::random_gaussian(3, 6, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &weights, &spec);
    let fs = input.max_abs() * weights.max_abs() * 27.0;

    let run = |cfg: AnalogSimConfig| {
        let mut engine = AnalogEngine::new(&chip, cfg);
        relative_error(&engine.conv2d(&input, &weights, &spec), &reference, fs)
    };
    let ideal = run(AnalogSimConfig::ideal());
    let full = run(AnalogSimConfig::default());
    assert!(ideal < 1e-3, "ideal error {ideal}");
    assert!(
        full > ideal,
        "full error {full} should exceed ideal {ideal}"
    );
    assert!(full < 0.1, "full error {full} stays within analog budget");
}

#[test]
fn analog_respects_8bit_quantized_network_semantics() {
    // Quantize weights to 8 bits first (the paper's deployment model) and
    // check the analog path reproduces the quantized reference within the
    // analog noise budget.
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(7);
    let input = Tensor3::random_uniform(3, 10, 10, 0.0, 1.0, &mut rng);
    let mut weights = Tensor4::random_gaussian(2, 3, 3, 3, 0.3, &mut rng);
    let q = Quantizer::fit8(weights.as_slice());
    let quantized: Vec<f64> = q.round_all(weights.as_slice());
    weights.as_mut_slice().copy_from_slice(&quantized);

    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &weights, &spec);
    let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
    let analog = engine.conv2d(&input, &weights, &spec);
    let fs = input.max_abs() * weights.max_abs() * 27.0;
    assert!(relative_error(&analog, &reference, fs) < 0.02);
}

#[test]
fn depthwise_separable_block_through_analog_engine() {
    // MobileNet-style block: depthwise (one PLCU per channel, no
    // cross-channel aggregation) then pointwise, both via the analog conv
    // by expressing them as grouped standard convolutions the engine
    // supports (depthwise = per-channel 1-kernel conv).
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(21);
    let input = Tensor3::random_uniform(3, 8, 8, 0.0, 1.0, &mut rng);
    let dw = Tensor4::random_gaussian(3, 1, 3, 3, 0.3, &mut rng);
    let pw = Tensor4::random_gaussian(2, 3, 1, 1, 0.3, &mut rng);

    let spec = ConvSpec::same_padding(3, 1);
    let dw_ref = depthwise_conv(&input, &dw, &spec);
    // Depthwise per channel: run each channel as its own 1-channel conv.
    let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::ideal());
    let mut dw_analog = Tensor3::zeros(3, 8, 8);
    for c in 0..3 {
        let mut chan = Tensor3::zeros(1, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                chan.set(0, y, x, input[(c, y, x)]);
            }
        }
        let mut kern = Tensor4::zeros(1, 1, 3, 3);
        for ky in 0..3 {
            for kx in 0..3 {
                kern.set(0, 0, ky, kx, dw[(c, 0, ky, kx)]);
            }
        }
        let out = engine.conv2d(&chan, &kern, &spec);
        for y in 0..8 {
            for x in 0..8 {
                dw_analog.set(c, y, x, out[(0, y, x)]);
            }
        }
    }
    let fs_dw = input.max_abs() * dw.max_abs() * 27.0;
    assert!(relative_error(&dw_analog, &dw_ref, fs_dw) < 1e-3);

    // Pointwise on the (ReLU'd, hence non-negative) depthwise output.
    let mut activated = dw_ref.clone();
    activated.relu_inplace();
    let pw_ref = pointwise_conv(&activated, &pw);
    let pw_analog = engine.conv2d(&activated, &pw, &ConvSpec::unit());
    let fs_pw = activated.max_abs() * pw.max_abs() * 27.0;
    assert!(relative_error(&pw_analog, &pw_ref, fs_pw) < 1e-3);
}

#[test]
fn measured_effective_bits_consistent_with_prediction() {
    // The analog engine's measured error should correspond to within ~2
    // bits of the precision model's prediction.
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(33);
    let input = Tensor3::random_uniform(3, 16, 16, 0.0, 1.0, &mut rng);
    let weights = Tensor4::random_gaussian(4, 3, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &weights, &spec);
    let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
    let predicted = engine.expected_bits();
    let analog = engine.conv2d(&input, &weights, &spec);
    let fs = input.max_abs() * weights.max_abs() * 27.0;
    let err = relative_error(&analog, &reference, fs);
    let measured_bits = -err.log2();
    assert!(
        (measured_bits - predicted).abs() < 2.5,
        "measured {measured_bits} vs predicted {predicted}"
    );
}

#[test]
fn fc_dot_large_vector() {
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(55);
    let a: Vec<f64> = (0..1000)
        .map(|_| rand::Rng::random::<f64>(&mut rng))
        .collect();
    let w: Vec<f64> = (0..1000)
        .map(|_| rand::Rng::random::<f64>(&mut rng) - 0.5)
        .collect();
    let reference: f64 = a.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
    let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
    let analog = engine.dot(&a, &w);
    let a_max = a.iter().cloned().fold(0.0_f64, f64::max);
    let w_max = w.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
    // 1000 terms = 38 cycles of 27-term chunks; errors accumulate as ~√38.
    let budget = 38.0_f64.sqrt() * a_max * w_max * 27.0 / 2f64.powi(6);
    assert!(
        (analog - reference).abs() < budget,
        "analog {analog} vs reference {reference} (budget {budget})"
    );
}

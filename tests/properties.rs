//! Cross-crate property-based tests (proptest) on the simulator's
//! physical and architectural invariants.

use albireo::core::config::{ChipConfig, PlcuConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::power::PowerBreakdown;
use albireo::core::sched::total_cycles;
use albireo::nn::{LayerKind, Model, VolumeShape};
use albireo::photonics::mrr::Microring;
use albireo::photonics::mzm::Mzm;
use albireo::photonics::precision::PrecisionModel;
use albireo::photonics::units::Db;
use albireo::photonics::OpticalParams;
use albireo::tensor::conv::{conv2d, ConvSpec};
use albireo::tensor::quant::Quantizer;
use albireo::tensor::{Tensor3, Tensor4};
use proptest::prelude::*;

proptest! {
    /// An MZM can never amplify: output power ≤ input power, for any
    /// weight and any input power.
    #[test]
    fn mzm_is_passive(weight in 0.0f64..=1.0, p_in in 0.0f64..1e-2) {
        let mut mzm = Mzm::from_params(&OpticalParams::paper());
        mzm.set_weight(weight).unwrap();
        let out = mzm.multiply(p_in);
        prop_assert!(out <= p_in + 1e-18);
        prop_assert!(out >= 0.0);
    }

    /// The MZM weight→phase→weight mapping round-trips exactly.
    #[test]
    fn mzm_weight_round_trip(weight in 0.0f64..=1.0) {
        let mut mzm = Mzm::from_params(&OpticalParams::paper());
        mzm.set_weight(weight).unwrap();
        prop_assert!((mzm.weight() - weight).abs() < 1e-9);
    }

    /// A microring is passive at every detuning and coupling: the drop and
    /// through ports never carry more than the input power combined.
    #[test]
    fn mrr_is_passive(k2 in 0.005f64..0.5, detuning_frac in -0.5f64..0.5) {
        let ring = Microring::with_k2(&OpticalParams::paper(), k2);
        let d = detuning_frac * ring.fsr();
        let total = ring.drop_transmission(d) + ring.through_transmission(d);
        prop_assert!(total <= 1.0 + 1e-9, "total = {total}");
        prop_assert!(ring.drop_transmission(d) >= 0.0);
    }

    /// Drop transmission peaks on resonance for any coupling.
    #[test]
    fn mrr_peaks_on_resonance(k2 in 0.005f64..0.5, detuning_frac in 1e-3f64..0.5) {
        let ring = Microring::with_k2(&OpticalParams::paper(), k2);
        let d = detuning_frac * ring.fsr();
        prop_assert!(ring.drop_transmission(0.0) >= ring.drop_transmission(d));
    }

    /// dB conversions round-trip and compose multiplicatively.
    #[test]
    fn db_round_trip_and_compose(a in -40.0f64..20.0, b in -40.0f64..20.0) {
        let da = Db::new(a);
        let db = Db::new(b);
        let combined = (da + db).linear();
        prop_assert!((combined - da.linear() * db.linear()).abs() / combined < 1e-9);
        let back = Db::from_linear(da.linear()).db();
        prop_assert!((back - a).abs() < 1e-9);
    }

    /// More wavelengths never increase crosstalk-limited precision.
    #[test]
    fn precision_monotone_in_wavelengths(n in 2usize..60) {
        let model = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let here = model.crosstalk_limited_bits(&ring, n);
        let more = model.crosstalk_limited_bits(&ring, n + 4);
        prop_assert!(more <= here + 1e-9);
    }

    /// More laser power never decreases noise-limited precision.
    #[test]
    fn precision_monotone_in_power(p_mw in 0.05f64..5.0) {
        let model = PrecisionModel::paper();
        let low = model.noise_limited_bits(20, p_mw * 1e-3);
        let high = model.noise_limited_bits(20, p_mw * 2e-3);
        prop_assert!(high >= low - 1e-9);
    }

    /// Quantization error is bounded by half a step for in-range values.
    #[test]
    fn quantizer_error_bound(bits in 2u32..12, value in -1.0f64..1.0) {
        let q = Quantizer::new(bits, 1.0);
        let err = (q.round(value) - value).abs();
        prop_assert!(err <= q.max_error() + 1e-12);
    }

    /// Convolution is linear: conv(αA, W) = α·conv(A, W).
    #[test]
    fn conv_linearity(seed in 0u64..1000, alpha in 0.1f64..4.0) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let input = Tensor3::random_uniform(2, 5, 5, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 2, 3, 3, 0.5, &mut rng);
        let base = conv2d(&input, &kernels, &ConvSpec::unit());
        let mut scaled_input = input.clone();
        scaled_input.map_inplace(|v| alpha * v);
        let scaled = conv2d(&scaled_input, &kernels, &ConvSpec::unit());
        let mut expected = base.clone();
        expected.map_inplace(|v| alpha * v);
        prop_assert!(scaled.max_abs_diff(&expected) < 1e-9 * alpha.max(1.0) * 100.0);
    }

    /// Scheduling is monotone in the PLCG count: more groups never means
    /// more cycles, for arbitrary conv layers.
    #[test]
    fn schedule_monotone_in_groups(
        kernels in 1usize..128,
        channels in 1usize..128,
        extent in 4usize..40,
    ) {
        let mut b = Model::builder("prop", VolumeShape::new(channels, extent, extent));
        b.push("conv", LayerKind::conv(kernels, 3, 1, 1)).unwrap();
        let model = b.build().unwrap();
        let c9 = total_cycles(&ChipConfig::with_ng(9), &model);
        let c27 = total_cycles(&ChipConfig::with_ng(27), &model);
        prop_assert!(c27 <= c9);
        prop_assert!(c27 >= 1);
    }

    /// Cycle counts give at least enough MAC slots for the layer's work.
    #[test]
    fn schedule_covers_macs(
        kernels in 1usize..64,
        channels in 1usize..64,
        extent in 4usize..24,
    ) {
        let chip = ChipConfig::albireo_9();
        let mut b = Model::builder("prop", VolumeShape::new(channels, extent, extent));
        b.push("conv", LayerKind::conv(kernels, 3, 1, 1)).unwrap();
        let model = b.build().unwrap();
        let cycles = total_cycles(&chip, &model);
        let capacity = cycles * chip.peak_macs_per_cycle();
        prop_assert!(capacity >= model.total_macs(),
            "capacity {capacity} < macs {}", model.total_macs());
    }

    /// Power scales strictly with the PLCG count for every estimate.
    #[test]
    fn power_monotone_in_groups(ng in 1usize..40) {
        for estimate in TechnologyEstimate::all() {
            let small = PowerBreakdown::for_chip(&ChipConfig::with_ng(ng), estimate).total_w();
            let large = PowerBreakdown::for_chip(&ChipConfig::with_ng(ng + 1), estimate).total_w();
            prop_assert!(large > small);
        }
    }

    /// EDP is consistent with latency × energy for arbitrary small nets.
    #[test]
    fn edp_consistency(kernels in 1usize..32, extent in 6usize..32) {
        let mut b = Model::builder("prop", VolumeShape::new(3, extent, extent));
        b.push("conv", LayerKind::conv(kernels, 3, 1, 1)).unwrap();
        let model = b.build().unwrap();
        let e = NetworkEvaluation::evaluate(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            &model,
        );
        let expected = e.energy_j * 1e3 * e.latency_s * 1e3;
        prop_assert!((e.edp_mj_ms() - expected).abs() < 1e-9);
        prop_assert!(e.latency_s > 0.0);
    }

    /// Bigger PLCUs (more output columns) never slow a stride-1 network
    /// down.
    #[test]
    fn more_output_columns_never_slower(nd in 2usize..10) {
        let mut chip_small = ChipConfig::albireo_9();
        chip_small.plcu = PlcuConfig { nm: 9, nd };
        let mut chip_big = chip_small;
        chip_big.plcu = PlcuConfig { nm: 9, nd: nd + 1 };
        let mut b = Model::builder("prop", VolumeShape::new(16, 28, 28));
        b.push("conv", LayerKind::conv(32, 3, 1, 1)).unwrap();
        let model = b.build().unwrap();
        prop_assert!(total_cycles(&chip_big, &model) <= total_cycles(&chip_small, &model));
    }
}

//! Integration tests for the extension subsystems: timing closure, power
//! delivery, thermal sensitivity, weight-distribution headroom, fault
//! injection, crosstalk compensation, and the extension networks.

use albireo::core::ablation::plcu_precision_bits;
use albireo::core::analog::{AnalogEngine, AnalogSimConfig, Fault, FaultSet};
use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::power_delivery::PowerDelivery;
use albireo::core::timing::{analyze, max_clock_hz};
use albireo::nn::zoo;
use albireo::photonics::mrr::Microring;
use albireo::photonics::precision::PrecisionModel;
use albireo::photonics::thermal::ThermalModel;
use albireo::photonics::wdm::ChannelPlan;
use albireo::photonics::OpticalParams;
use albireo::tensor::conv::{conv2d, ConvSpec};
use albireo::tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn the_paper_design_point_is_self_consistent() {
    // One test tying the whole design story together: the k² = 0.03,
    // 21-wavelength, Nu = 3, 5 GHz design simultaneously (a) fits the
    // 64-channel distribution network, (b) closes timing, (c) clears
    // ~7 bits of precision, and (d) is deliverable by the conservative
    // laser.
    let chip = ChipConfig::albireo_9();
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);

    // (a) wavelength plan fits.
    let plan = ChannelPlan::albireo(&ring);
    plan.validate_against_awg(&params.awg)
        .expect("plan fits AWG");
    assert_eq!(plan.len(), chip.wavelengths_per_plcg());

    // (b) timing closes at 5 GHz.
    let report = analyze(&chip, TechnologyEstimate::Conservative, 0.03);
    assert!(report.closes_timing);

    // (c) ~7-bit precision.
    let bits = plcu_precision_bits(&chip);
    assert!((6.5..7.2).contains(&bits), "bits = {bits}");

    // (d) conservative laser sustains the noise floor.
    let delivery = PowerDelivery::new(&chip);
    assert!(delivery.noise_bits(37.5e-3) >= 8.0);
}

#[test]
fn no_better_single_axis_move_exists_from_the_paper_point() {
    // The paper's Nd = 5 and Nu = 3 are on the Pareto frontier: pushing
    // either up breaks a constraint (precision / wavelength budget).
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let model = PrecisionModel::paper();

    // Nd = 7 ⇒ 27 λ per PLCU ⇒ below the ~7-bit target.
    let bits_27 = PrecisionModel::with_negative_rail(model.crosstalk_limited_levels(&ring, 27));
    assert!(bits_27.log2() < 6.5, "{}", bits_27.log2());

    // Nu = 4 ⇒ 84 λ per group > the 64-channel network.
    let mut chip = ChipConfig::albireo_9();
    chip.nu = 4;
    assert!(chip.wavelengths_per_plcg() > params.awg.channels);
}

#[test]
fn thermal_budget_is_consistent_with_mrr_power_row() {
    // Holding all rings against a ±5 K ambient swing costs less than the
    // conservative MRR drive budget — i.e. Table I's 3.1 mW/ring
    // plausibly covers drive + tuning.
    let thermal = ThermalModel::silicon();
    let rings = 2430;
    let tuning = thermal.chip_tuning_power(rings, 5.0);
    let drive_budget = rings as f64 * 3.1e-3;
    assert!(tuning < drive_budget, "{tuning} vs {drive_budget}");
}

#[test]
fn clock_choices_match_ring_limits() {
    // 5 GHz (C/M) and 8 GHz (A) both sit under the k² = 0.03 ring's
    // ~10 GHz limit, while 8 GHz would NOT be feasible at k² = 0.02 —
    // the quantitative version of the paper's Fig. 4b argument.
    let limit_003 = max_clock_hz(0.03);
    let limit_002 = max_clock_hz(0.02);
    assert!(limit_003 > 8e9);
    assert!(limit_002 < 8e9);
    assert!(limit_002 > 5e9);
}

#[test]
fn compensation_and_faults_compose() {
    // Crosstalk compensation corrects interference but cannot mask a
    // hardware fault.
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(77);
    let input = Tensor3::random_uniform(3, 8, 8, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(2, 3, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &kernels, &spec);
    let fs = input.max_abs() * kernels.max_abs() * 27.0;
    let cfg = AnalogSimConfig {
        enable_noise: false,
        adc_bits: 16,
        crosstalk_compensation: true,
        ..AnalogSimConfig::default()
    };
    let healthy_err = {
        let mut e = AnalogEngine::new(&chip, cfg);
        e.conv2d(&input, &kernels, &spec).max_abs_diff(&reference) / fs
    };
    let faulty_err = {
        let mut e = AnalogEngine::new(&chip, cfg);
        let mut faults = FaultSet::new();
        faults.push(Fault::DeadChannel { column: 1 });
        e.inject_faults(faults);
        e.conv2d(&input, &kernels, &spec).max_abs_diff(&reference) / fs
    };
    assert!(healthy_err < 1e-3, "healthy: {healthy_err}");
    assert!(faulty_err > 10.0 * healthy_err, "faulty: {faulty_err}");
}

#[test]
fn extension_networks_run_the_full_pipeline() {
    let chip = ChipConfig::albireo_9();
    for model in [
        zoo::vgg19(),
        zoo::resnet34(),
        zoo::mobilenet_half(),
        zoo::tiny(),
    ] {
        let e = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        assert!(e.latency_s > 0.0, "{}", model.name());
        assert!(e.gops() > 0.0);
    }
    // Scaling sanity: VGG19 is slower than VGG16; MobileNet-0.5 is faster
    // than MobileNet.
    let lat = |m: &albireo::nn::Model| {
        NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, m).latency_s
    };
    assert!(lat(&zoo::vgg19()) > lat(&zoo::vgg16()));
    assert!(lat(&zoo::mobilenet_half()) < lat(&zoo::mobilenet()));
    assert!(lat(&zoo::resnet34()) > lat(&zoo::resnet18()));
}

#[test]
fn power_delivery_scales_with_broadcast_fanout() {
    let d9 = PowerDelivery::new(&ChipConfig::albireo_9());
    let d27 = PowerDelivery::new(&ChipConfig::albireo_27());
    // 3× the fanout costs ~log2(3) extra split levels ≈ 3–5 dB.
    let delta = d27.link_loss_db() - d9.link_loss_db();
    assert!((2.0..7.0).contains(&delta), "delta = {delta} dB");
    // Same laser ⇒ fewer delivered bits on the bigger chip.
    assert!(d27.delivered_bits(2e-3) <= d9.delivered_bits(2e-3));
}

#[test]
fn weight_distribution_headroom_is_about_one_bit() {
    let ring = Microring::from_params(&OpticalParams::paper());
    let model = PrecisionModel::paper();
    let uniform = model.crosstalk_limited_levels(&ring, 21).log2();
    let trained = model
        .crosstalk_limited_levels_with_weight_rms(&ring, 21, 0.15)
        .log2();
    assert!((0.5..1.5).contains(&(trained - uniform)));
}

//! End-to-end pipeline tests: model zoo → scheduler → energy → reports,
//! exercising the facade crate exactly as a downstream user would.

use albireo::baselines::{Accelerator, DeapCnn, Pixel};
use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::report::{format_seconds, format_table};
use albireo::nn::zoo;

#[test]
fn facade_reexports_are_usable() {
    // One expression touching every crate through the facade.
    let chip = ChipConfig::albireo_9();
    let ring = albireo::photonics::mrr::Microring::from_params(&chip.optical_params());
    let t = albireo::tensor::Tensor3::zeros(1, 2, 2);
    let model = zoo::alexnet();
    let eval = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
    let pixel = Pixel::paper_60w();
    assert!(ring.fsr() > 0.0);
    assert!(t.is_empty() || t.len() == 4);
    assert!(eval.latency_s > 0.0);
    assert!(pixel.units > 0);
}

#[test]
fn every_network_evaluates_under_every_estimate() {
    let chips = [ChipConfig::albireo_9(), ChipConfig::albireo_27()];
    for chip in &chips {
        for estimate in TechnologyEstimate::all() {
            for model in zoo::all_benchmarks() {
                let e = NetworkEvaluation::evaluate(chip, estimate, &model);
                assert!(e.latency_s > 0.0, "{} {}", model.name(), estimate.suffix());
                assert!(e.energy_j > 0.0);
                assert!(e.gops() > 0.0);
                assert!(e.per_layer.len() == model.layers().len());
                // Every compute layer got cycles; every pool got none.
                for (layer, eval) in model.layers().iter().zip(&e.per_layer) {
                    if layer.is_compute() {
                        assert!(eval.cycles > 0, "{}", layer.name);
                    } else {
                        assert_eq!(eval.cycles, 0, "{}", layer.name);
                    }
                }
            }
        }
    }
}

#[test]
fn estimates_strictly_improve_energy() {
    let chip = ChipConfig::albireo_9();
    for model in zoo::all_benchmarks() {
        let c = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        let m = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Moderate, &model);
        let a = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Aggressive, &model);
        assert!(c.energy_j > m.energy_j, "{}", model.name());
        assert!(m.energy_j > a.energy_j, "{}", model.name());
        assert!(c.edp_mj_ms() > m.edp_mj_ms());
        assert!(m.edp_mj_ms() > a.edp_mj_ms());
    }
}

#[test]
fn baselines_evaluate_all_networks() {
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    for model in zoo::all_benchmarks() {
        let p = pixel.cost(&model);
        let d = deap.cost(&model);
        assert!(p.latency_s > 0.0 && p.energy_j > 0.0);
        assert!(d.latency_s > 0.0 && d.energy_j > 0.0);
        assert_eq!(p.network, model.name());
        assert_eq!(d.network, model.name());
    }
}

#[test]
fn report_helpers_cover_full_pipeline_output() {
    let chip = ChipConfig::albireo_9();
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let e = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, m);
            vec![e.network.clone(), format_seconds(e.latency_s)]
        })
        .collect();
    let table = format_table(&["network", "latency"], &rows);
    for name in ["AlexNet", "VGG16", "ResNet18", "MobileNet"] {
        assert!(table.contains(name));
    }
}

#[test]
fn bench_harness_experiments_run_from_integration_context() {
    // The harness crate is not part of the facade, but its experiment set
    // must stay runnable; smoke-test two cheap ones via subprocess-free
    // direct calls would need the bench crate as a dependency, so instead
    // assert that the pipeline pieces it composes are stable here.
    let chip = ChipConfig::albireo_27();
    let e = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
    let d = DeapCnn::paper_60w().cost(&zoo::vgg16());
    let p = Pixel::paper_60w().cost(&zoo::vgg16());
    // Fig. 8(b) energy ordering at equal power budgets mirrors latency.
    assert!(p.energy_j > d.energy_j);
    assert!(d.energy_j > e.energy_j);
}

#[test]
fn utilization_identifies_fc_layers_as_inefficient() {
    // §III-C: FC layers use only one PD column per PLCU, so their
    // utilization is far below conv layers' — the model should show it.
    let chip = ChipConfig::albireo_9();
    let e = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
    let conv_util = e
        .per_layer
        .iter()
        .find(|l| l.name == "conv3_2")
        .unwrap()
        .utilization;
    let fc_util = e
        .per_layer
        .iter()
        .find(|l| l.name == "fc7")
        .unwrap()
        .utilization;
    assert!(
        conv_util > fc_util,
        "conv {conv_util} should exceed fc {fc_util}"
    );
}

#[test]
fn trace_agrees_with_scheduler_for_conv_layers() {
    // The Fig. 7 cycle-level trace and the closed-form Algorithm 2
    // scheduler must count the same cycles for kernels that fit the PLCU.
    use albireo::core::sched::layer_cycles;
    use albireo::core::trace::trace_kernel;
    let chip = ChipConfig::albireo_9();
    let model = zoo::vgg16();
    for layer in model.layers() {
        if let albireo::nn::LayerKind::Conv {
            kernels,
            kernel_y,
            kernel_x,
            stride,
            groups,
            ..
        } = layer.kind
        {
            if kernel_y * kernel_x > 9 || stride != 1 || groups != 1 {
                continue;
            }
            let per_kernel =
                trace_kernel(&chip, 0, layer.output.y, layer.output.x, layer.input.z).len() as u64;
            let kernel_batches = (kernels as u64).div_ceil(9);
            let expected = per_kernel * kernel_batches;
            assert_eq!(
                layer_cycles(&chip, layer),
                expected,
                "layer {} disagrees",
                layer.name
            );
        }
    }
}

//! Golden-value regression for the serving simulator: the committed
//! `results/golden_serving_metrics.csv` pins the *entire* service report
//! of the fixed (seed × fleet × rate × policy) golden grid — latency
//! percentiles, shed rates, goodput, energy per request, and the
//! per-run digests — byte for byte. Any change to the event engine, the
//! batching policies, the service-time oracle, or the workload generator
//! that shifts serving behaviour fails here before it silently rewrites
//! the study artifacts. Regenerate with:
//!
//! ```text
//! cargo run --release -p albireo-bench --bin serving_study
//! ```

use albireo_parallel::Parallelism;
use albireo_runtime::{run_serving_study, StudyOptions};
use std::path::PathBuf;

fn golden_csv() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden_serving_metrics.csv");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn golden_serving_metrics_reproduce_byte_exactly() {
    let study = run_serving_study(&StudyOptions::golden(), Parallelism::default());
    let regenerated = study.to_csv();
    let committed = golden_csv();
    assert_eq!(
        regenerated, committed,
        "serving study diverged from results/golden_serving_metrics.csv; \
         if the change is intentional, regenerate with \
         `cargo run --release -p albireo-bench --bin serving_study`"
    );
}

#[test]
fn golden_grid_covers_both_fleets_and_all_policies() {
    let committed = golden_csv();
    let options = StudyOptions::golden();
    assert_eq!(
        committed.lines().count(),
        options.cells() * options.replicas + 1,
        "row count must match the golden grid"
    );
    for key in [
        "albireo_9+albireo_27",
        "albireo_9_C",
        "immediate",
        "size4",
        "deadline200us_max8",
    ] {
        assert!(committed.contains(key), "golden CSV lost {key}");
    }
}

#[test]
fn study_digests_are_identical_at_one_and_eight_threads() {
    let options = StudyOptions::golden();
    let one = run_serving_study(&options, Parallelism::with_threads(1));
    let eight = run_serving_study(&options, Parallelism::with_threads(8));
    assert_eq!(
        one.combined_digest(),
        eight.combined_digest(),
        "serving study must be bit-deterministic at any thread count"
    );
    assert_eq!(one, eight);
    assert_eq!(one.to_json(), eight.to_json());
}

//! Integration tests asserting the reproduction against the numbers the
//! paper itself reports — the cross-crate oracle suite.

use albireo::baselines::{reported_accelerators, Accelerator, DeapCnn, Pixel};
use albireo::core::area::AreaBreakdown;
use albireo::core::config::{ChipConfig, TechnologyEstimate};
use albireo::core::energy::NetworkEvaluation;
use albireo::core::inventory::DeviceInventory;
use albireo::core::power::PowerBreakdown;
use albireo::nn::zoo;
use albireo::photonics::mrr::Microring;
use albireo::photonics::precision::PrecisionModel;
use albireo::photonics::OpticalParams;

#[test]
fn table_ii_fsr_anchor() {
    let ring = Microring::from_params(&OpticalParams::paper());
    assert!((ring.fsr() * 1e9 - 16.1).abs() < 0.4);
}

#[test]
fn section_v_device_count_anchors() {
    let inv = DeviceInventory::for_chip(&ChipConfig::albireo_9());
    assert_eq!(inv.dacs, 306, "paper: Albireo uses only 306 DACs");
    assert_eq!(inv.tias, 45, "paper: Albireo uses only 45 TIAs");
    // DEAP-CNN uses 6.6 X more DACs (2034) and 113 TIAs.
    assert!((2034.0 / inv.dacs as f64 - 6.6).abs() < 0.1);
}

#[test]
fn table_iii_totals() {
    let chip = ChipConfig::albireo_9();
    let expectations = [
        (TechnologyEstimate::Conservative, 22.7),
        (TechnologyEstimate::Moderate, 6.19),
        (TechnologyEstimate::Aggressive, 1.64),
    ];
    for (estimate, expected) in expectations {
        let total = PowerBreakdown::for_chip(&chip, estimate).total_w();
        assert!(
            (total - expected).abs() / expected < 0.02,
            "Albireo-{}: {total} W vs paper {expected} W",
            estimate.suffix()
        );
    }
}

#[test]
fn albireo_27_fits_60w() {
    let total =
        PowerBreakdown::for_chip(&ChipConfig::albireo_27(), TechnologyEstimate::Conservative)
            .total_w();
    assert!((total - 58.8).abs() < 0.6, "paper: 58.8 W, got {total}");
}

#[test]
fn fig9_area_anchors() {
    let area = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
    assert!((area.total_mm2() - 124.6).abs() / 124.6 < 0.01);
    let rows = area.rows();
    let awg = rows.iter().find(|r| r.0 == "AWG").unwrap();
    assert!((awg.2 - 0.72).abs() < 0.02, "AWG share {}", awg.2);
    let star = rows.iter().find(|r| r.0 == "Star coupler").unwrap();
    assert!((star.2 - 0.17).abs() < 0.01, "star share {}", star.2);
    let mzm = rows.iter().find(|r| r.0 == "MZM").unwrap();
    assert!((mzm.2 - 0.037).abs() < 0.003, "MZM share {}", mzm.2);
}

#[test]
fn section_ii_precision_anchors() {
    let model = PrecisionModel::paper();
    // Fig. 3: 10 bits @ 2 mW laser, 20 wavelengths.
    let noise_bits = model.noise_limited_bits(20, 2e-3);
    assert!((9.0..11.0).contains(&noise_bits), "bits = {noise_bits}");
    // §II-C2: 6 bits positive-only, 7 with the negative rail.
    let ring = Microring::from_params(&OpticalParams::paper());
    let levels = model.crosstalk_limited_levels(&ring, 20);
    assert!((5.5..6.6).contains(&levels.log2()));
    let with_neg = PrecisionModel::with_negative_rail(levels).log2();
    assert!((6.5..7.6).contains(&with_neg));
}

#[test]
fn table_iv_latency_shape() {
    let chip = ChipConfig::albireo_9();
    let vgg = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
    let alex =
        NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::alexnet());
    // Paper: 2.55 ms VGG16, 0.13 ms AlexNet on Albireo-C.
    assert!(
        (vgg.latency_s * 1e3 - 2.55).abs() / 2.55 < 0.35,
        "{}",
        vgg.latency_s * 1e3
    );
    assert!(
        (alex.latency_s * 1e3 - 0.13).abs() / 0.13 < 1.0,
        "{}",
        alex.latency_s * 1e3
    );
    // VGG16 : AlexNet latency ratio ≈ 20 X in the paper.
    let ratio = vgg.latency_s / alex.latency_s;
    assert!((10.0..25.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn table_iv_every_albireo_estimate_beats_every_electronic_latency() {
    let chip = ChipConfig::albireo_9();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        for estimate in TechnologyEstimate::all() {
            let e = NetworkEvaluation::evaluate(&chip, estimate, &model);
            for acc in reported_accelerators() {
                let r = acc.results[model.name()];
                assert!(
                    e.latency_s < r.latency_s,
                    "Albireo-{} should beat {} on {}",
                    estimate.suffix(),
                    acc.name,
                    model.name()
                );
            }
        }
    }
}

#[test]
fn abstract_headline_ratios_hold_in_order_of_magnitude() {
    let chip = ChipConfig::albireo_9();
    let electronic = reported_accelerators();
    let mut latency_ratios = Vec::new();
    let mut edp_ratios_c = Vec::new();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        let c = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        for acc in &electronic {
            let r = acc.results[model.name()];
            latency_ratios.push(r.latency_s / c.latency_s);
            edp_ratios_c.push(r.edp_mj_ms() / c.edp_mj_ms());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Paper abstract: 110 X throughput, 74 X EDP on average for Albireo-C.
    let lat = mean(&latency_ratios);
    assert!((40.0..400.0).contains(&lat), "mean latency ratio {lat}");
    let edp = mean(&edp_ratios_c);
    assert!(edp > 30.0, "mean EDP ratio {edp}");
}

#[test]
fn fig8_photonic_ordering_on_all_networks() {
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    let a27 = ChipConfig::albireo_27();
    for model in zoo::all_benchmarks() {
        let p = pixel.cost(&model);
        let d = deap.cost(&model);
        let a = NetworkEvaluation::evaluate(&a27, TechnologyEstimate::Conservative, &model);
        assert!(p.latency_s > d.latency_s, "{}: PIXEL slowest", model.name());
        assert!(
            d.latency_s > a.latency_s,
            "{}: Albireo fastest",
            model.name()
        );
        assert!(p.edp_mj_ms() > d.edp_mj_ms());
        assert!(d.edp_mj_ms() > a.edp_mj_ms());
    }
}

#[test]
fn all_designs_within_power_budget() {
    // Every design in the 60 W comparison respects the budget.
    assert!(Pixel::paper_60w().power_w <= 60.0);
    assert!(DeapCnn::paper_60w().power_w <= 60.0);
    let a27 = PowerBreakdown::for_chip(&ChipConfig::albireo_27(), TechnologyEstimate::Conservative);
    assert!(a27.total_w() <= 60.0);
}

#[test]
fn mzm_area_efficiency_claim() {
    // §IV-B: an MZM achieves 333 GOPS/mm² multiplying one input at 5 GHz
    // (5e9 ops / 0.015 mm²), 46 X better than a 7.3 GOPS/mm² electronic
    // approximate multiplier.
    let p = OpticalParams::paper();
    let mzm_gops_per_mm2 = 5e9 / 1e9 / (p.mzm.area_m2 * 1e6);
    assert!(
        (mzm_gops_per_mm2 - 333.0).abs() / 333.0 < 0.01,
        "{mzm_gops_per_mm2}"
    );
    assert!((mzm_gops_per_mm2 / 7.3 - 46.0).abs() < 1.0);
}

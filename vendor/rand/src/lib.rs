//! Vendored stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact surface Albireo uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`distr::Uniform`] — backed by the public-domain
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces the same
//! stream on every platform and every run. The whole simulator's
//! seeded-noise reproducibility rests on this, so the generator choice is
//! part of the repo's golden values — do not swap it casually.

#![allow(clippy::all)] // vendored stand-in: keep close to upstream idiom, not lint-clean

/// The core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample {
    /// Draws one standard sample from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard sample (`[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distr::Distribution<T>>(&mut self, distribution: D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed, expanded via SplitMix64 —
    /// the conventional construction for xoshiro-family generators.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `rand` ChaCha12 — this repo vendors its own
    /// generator (see the crate docs) — but it satisfies the same
    /// contract: seeded, deterministic, high-quality 64-bit output.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it
            // through SplitMix64 so every seed yields a working generator.
            if s == [0; 4] {
                let mut sm = 0u64;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    /// A small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// Distributions.
pub mod distr {
    use super::{Rng, StandardSample};

    /// A value-producing distribution.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (`[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardUniform;

    impl<T: StandardSample> Distribution<T> for StandardUniform {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            rng.random()
        }
    }

    /// Error building a [`Uniform`] distribution.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Error {
        /// `low >= high` or a bound was not finite.
        InvalidRange,
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid uniform range")
        }
    }

    impl std::error::Error for Error {}

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        range: T,
    }

    impl Uniform<f64> {
        /// Builds the half-open uniform distribution `[low, high)`.
        pub fn new(low: f64, high: f64) -> Result<Uniform<f64>, Error> {
            if !(low < high) || !low.is_finite() || !high.is_finite() {
                return Err(Error::InvalidRange);
            }
            Ok(Uniform {
                low,
                range: high - low,
            })
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + self.range * rng.random::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{distr::Distribution, distr::Uniform, Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let dist = Uniform::new(-2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_rejects_bad_ranges() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        let a: u64 = rng.random();
        let b: u64 = rng.random();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

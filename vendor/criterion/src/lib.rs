//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate supplies
//! the macro/struct surface the bench harness uses — [`Criterion`],
//! [`Bencher`], [`criterion_group!`], [`criterion_main!`] — backed by a
//! simple calibrated timing loop instead of criterion's full statistical
//! machinery. Output is one line per benchmark: median-ish mean time per
//! iteration over a fixed measurement budget.

#![allow(clippy::all)] // vendored stand-in: keep close to upstream idiom, not lint-clean

use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// The per-benchmark timing driver passed to `bench_function` closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration from the last [`iter`](Bencher::iter).
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that fills
    /// the measurement budget, then reporting mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find how many iterations fit ~10ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 30 {
                let per_iter = elapsed.as_secs_f64() / n as f64;
                let total = (MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64;
                n = total.clamp(1, 1 << 32);
                break;
            }
            n = n.saturating_mul(4);
        }
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("bench: {:<48} {}", id, format_ns(b.ns_per_iter));
        self
    }

    /// No-op hook for API compatibility with criterion's config chain.
    pub fn final_summary(&mut self) {}
}

/// Renders nanoseconds with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:10.2} ns/iter")
    } else if ns < 1e6 {
        format!("{:10.2} us/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:10.2} ms/iter", ns / 1e6)
    } else {
        format!("{:10.2}  s/iter", ns / 1e9)
    }
}

/// Prevents the optimizer from eliding a value (re-export for callers that
/// use `criterion::black_box` instead of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: a function that runs each registered
/// benchmark against a shared [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; a timing
            // sweep there would be pure overhead, so only run benches
            // when invoked without the test harness flag.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(3u64.wrapping_mul(7))
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).contains("ns/iter"));
        assert!(format_ns(12_000.0).contains("us/iter"));
        assert!(format_ns(12_000_000.0).contains("ms/iter"));
    }
}

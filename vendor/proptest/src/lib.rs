//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API that Albireo's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`x in 0u64..100`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies for the primitive numeric types,
//! * [`strategy::Strategy::prop_map`],
//! * [`bool::ANY`] and [`collection::vec`].
//!
//! No shrinking is performed: a failing case panics with the generated
//! argument values so it can be reproduced directly. Case count defaults
//! to 64 and is overridable via the `PROPTEST_CASES` environment variable.

#![allow(clippy::all)] // vendored stand-in: keep close to upstream idiom, not lint-clean

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies. A thin newtype so strategy
/// implementations do not depend on the generator's engine.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-(test, case) generator.
    fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name keeps per-test streams distinct while
        // staying reproducible across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of arbitrary values for one test argument.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `func` (upstream's `prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, func }
        }
    }

    /// Strategy adapter applying a function to another strategy's values
    /// (built by [`Strategy::prop_map`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.func)(self.source.generate(rng))
        }
    }

    macro_rules! impl_unsigned_range {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )+};
    }

    impl_unsigned_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
                }
            }
        )+};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )+};
    }

    impl_float_range!(f32, f64);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// Weighted choice among strategies of one value type (the engine
    /// behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union; weights are relative and must not all be zero.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            assert!(
                options.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
                "prop_oneof! needs at least one positive weight"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.next_u64() % total;
            for (weight, strat) in &self.options {
                let weight = *weight as u64;
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of the element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy: `vec(1e-6f64..1e-2, 1..16)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use super::TestRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the case is a genuine failure.
        Fail(String),
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection.
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject
        }
    }

    /// Number of cases per property, from `PROPTEST_CASES` (default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Runs one property: `body` receives a per-case generator and returns
    /// the case outcome plus a rendering of the generated arguments.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (with the arguments that produced
    /// it), or when too many cases are rejected by `prop_assume!`.
    pub fn run(
        test_name: &str,
        mut body: impl FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    ) {
        let cases = case_count();
        let max_attempts = cases.saturating_mul(16);
        let mut passed = 0u64;
        let mut attempt = 0u64;
        while passed < cases {
            if attempt >= max_attempts {
                panic!(
                    "{test_name}: gave up after {attempt} attempts \
                     ({passed}/{cases} cases passed, rest rejected by prop_assume!)"
                );
            }
            let mut rng = TestRng::for_case(test_name, attempt);
            attempt += 1;
            let (outcome, values) = body(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{test_name}: property failed at case {attempt}\n  with {values}\n  {msg}"
                ),
            }
        }
    }
}

/// Wraps property functions: each argument is drawn from its strategy and
/// the body is run for [`test_runner::case_count`] cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |prop_rng__| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng__);)+
                    let values__ = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome__: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    (outcome__, values__)
                });
            }
        )+
    };
}

/// Fails the current case (without aborting the whole test run machinery)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left__ = $left;
        let right__ = $right;
        if left__ != right__ {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left__,
                right__
            )));
        }
    }};
}

/// Rejects the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Weighted (or uniform) choice among strategies producing one value
/// type: `prop_oneof![8 => 1e-3f64..1.0, 1 => Just(0.0)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = vec![$(($weight as u32, ::std::boxed::Box::new($strat))),+];
        $crate::strategy::Union::new(options)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

pub mod prelude {
    //! The standard imports: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Module-path mirror of the crate root, matching upstream's
    /// `prelude::prop` re-export (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::{bool, collection, strategy};
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)] // mirrors upstream's standard test preamble
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn int_ranges_in_bounds(a in 3u64..17, b in -5i32..5, c in 1usize..2) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert_eq!(c, 1);
        }

        /// Float ranges respect their bounds.
        #[test]
        fn float_ranges_in_bounds(x in 0.25f64..0.75, y in 0.0f64..=1.0) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        /// Vec strategy honours its size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// bool::ANY produces booleans (and the strategy compiles in place).
        #[test]
        fn bool_any(b in crate::bool::ANY, _x in 0u8..2) {
            prop_assert!(b || !b);
        }

        /// Tuple strategies draw each component from its own strategy.
        #[test]
        fn tuples_draw_componentwise(t in (0u32..4, 10.0f64..20.0, 5i64..6)) {
            prop_assert!(t.0 < 4);
            prop_assert!((10.0..20.0).contains(&t.1));
            prop_assert_eq!(t.2, 5);
        }

        /// Just always yields its value; prop_oneof picks only from its
        /// member strategies.
        #[test]
        fn just_and_oneof(
            j in Just(42u64),
            v in prop_oneof![3 => 0u64..10, 1 => Just(99u64)],
        ) {
            prop_assert_eq!(j, 42);
            prop_assert!(v < 10 || v == 99);
        }

        /// A zero-weight arm is never drawn.
        #[test]
        fn zero_weight_arm_never_fires(v in prop_oneof![1 => 0u64..10, 0 => Just(77u64)]) {
            prop_assert!(v < 10);
        }

        /// prop_map transforms every drawn value, including inside
        /// prop_oneof arms.
        #[test]
        fn prop_map_applies_everywhere(
            v in (0u64..8).prop_map(|n| n * 10),
            w in prop_oneof![1 => (0u32..4).prop_map(|n| n as f64 * 0.25), 1 => Just(9.0f64)],
        ) {
            prop_assert!(v % 10 == 0 && v < 80);
            prop_assert!((w - 9.0).abs() < 1e-12 || w < 1.0);
        }
    }

    #[test]
    fn failing_property_panics_with_values() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run("always_fails", |rng| {
                let v = rng.next_u64();
                (
                    Err(crate::test_runner::TestCaseError::fail("boom")),
                    format!("v = {v}"),
                )
            });
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("boom") && msg.contains("v ="), "{msg}");
    }

    #[test]
    fn determinism_across_runs() {
        let draw = || {
            let mut rng = super::TestRng::for_case("determinism", 3);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}

//! Experiment-regeneration harness: one function per table/figure of the
//! paper's evaluation.
//!
//! Each function returns the formatted experiment output as a `String`; the
//! `src/bin/*` binaries print them, the integration tests assert on their
//! contents, and EXPERIMENTS.md records the paper-vs-measured diff. Run
//! everything with:
//!
//! ```text
//! cargo run -p albireo-bench --bin all_experiments
//! ```

pub mod experiments;
pub mod perfdiff;
pub mod sweep;

pub use experiments::*;

//! The experiments of the paper's evaluation section, one function per
//! table/figure.

use albireo_baselines::{Accelerator, DeapCnn, Pixel};
use albireo_core::accel::{AlbireoAccelerator, NetworkCost};
use albireo_core::area::AreaBreakdown;
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::power::PowerBreakdown;
use albireo_core::report::{format_ratio, format_table, format_watts};
use albireo_nn::{zoo, Model};
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::{fig3_noise_sweep, fig4c_crosstalk_sweep, PrecisionModel};
use albireo_photonics::OpticalParams;

/// Laser powers swept in Fig. 3, W.
pub const FIG3_LASER_POWERS_W: [f64; 4] = [0.5e-3, 1e-3, 2e-3, 4e-3];

/// Coupling coefficients swept in Fig. 4.
pub const FIG4_K2_VALUES: [f64; 4] = [0.02, 0.03, 0.05, 0.10];

/// Fig. 3 — noise-limited precision vs. wavelength count per laser power.
pub fn fig3_noise_precision() -> String {
    let model = PrecisionModel::paper();
    let sweeps = fig3_noise_sweep(&model, &FIG3_LASER_POWERS_W, 64);
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 12, 16, 20, 24, 32, 40, 48, 56, 64] {
        let mut row = vec![n.to_string()];
        for sweep in &sweeps {
            let bits = sweep
                .series
                .iter()
                .find(|(count, _)| *count == n)
                .map(|(_, b)| *b)
                .unwrap_or(f64::NAN);
            row.push(format!("{bits:.2}"));
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 3: noise-limited precision (bits) vs wavelengths, per laser power\n\
         (paper anchor: 10 bits @ 2 mW, 20 wavelengths)\n\n",
    );
    out.push_str(&format_table(
        &["wavelengths", "0.5 mW", "1 mW", "2 mW", "4 mW"],
        &rows,
    ));
    out
}

/// Fig. 4a — MRR drop-port spectrum per k².
pub fn fig4a_spectrum() -> String {
    let params = OpticalParams::paper();
    let rings: Vec<Microring> = FIG4_K2_VALUES
        .iter()
        .map(|&k2| Microring::with_k2(&params, k2))
        .collect();
    let span = rings[0].fsr() / 8.0;
    let points = 33;
    let mut rows = Vec::new();
    for i in 0..points {
        let frac = i as f64 / (points - 1) as f64;
        let detuning = -span + 2.0 * span * frac;
        let mut row = vec![format!("{:+.3}", detuning * 1e9)];
        for ring in &rings {
            row.push(format!("{:.4}", ring.drop_transmission(detuning)));
        }
        rows.push(row);
    }
    let mut out =
        String::from("Figure 4a: MRR drop-port power transmission vs detuning (nm), per k²\n\n");
    out.push_str(&format_table(
        &["detuning (nm)", "k²=0.02", "k²=0.03", "k²=0.05", "k²=0.10"],
        &rows,
    ));
    out.push_str(&format!(
        "\nFSR = {:.2} nm (paper Table II: 16.1 nm)\n",
        rings[0].fsr() * 1e9
    ));
    out
}

/// Fig. 4b — MRR temporal step response per k².
pub fn fig4b_temporal() -> String {
    let params = OpticalParams::paper();
    let rings: Vec<Microring> = FIG4_K2_VALUES
        .iter()
        .map(|&k2| Microring::with_k2(&params, k2))
        .collect();
    let mut rows = Vec::new();
    for ps in (0..=200).step_by(10) {
        let t = ps as f64 * 1e-12;
        let mut row = vec![ps.to_string()];
        for ring in &rings {
            row.push(format!("{:.4}", ring.step_response(t)));
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 4b: MRR drop-port temporal step response (normalized power) vs time (ps)\n\n",
    );
    out.push_str(&format_table(
        &["time (ps)", "k²=0.02", "k²=0.03", "k²=0.05", "k²=0.10"],
        &rows,
    ));
    out.push_str("\n5 GHz modulation response (relative power):\n");
    for (k2, ring) in FIG4_K2_VALUES.iter().zip(rings.iter()) {
        out.push_str(&format!(
            "  k²={k2}: bandwidth {:.1} GHz, response at 5 GHz = {:.3}\n",
            ring.bandwidth_hz() / 1e9,
            ring.modulation_response(5e9)
        ));
    }
    out
}

/// Fig. 4c — crosstalk-limited precision vs. wavelength count per k².
pub fn fig4c_crosstalk_precision() -> String {
    let model = PrecisionModel::paper();
    let params = OpticalParams::paper();
    let sweeps = fig4c_crosstalk_sweep(&model, &params, &FIG4_K2_VALUES, 64);
    let mut rows = Vec::new();
    for n in [4usize, 8, 12, 16, 20, 24, 32, 40, 48, 56, 64] {
        let mut row = vec![n.to_string()];
        for sweep in &sweeps {
            let bits = sweep
                .series
                .iter()
                .find(|(count, _)| *count == n)
                .map(|(_, b)| *b)
                .unwrap_or(f64::NAN);
            row.push(format!("{bits:.2}"));
        }
        rows.push(row);
    }
    let mut out = String::from(
        "Figure 4c: crosstalk-limited precision (bits) vs wavelengths, per k²\n\
         (paper anchors: 6 bits positive-only / 7 bits with negative rail at k²=0.03, 20 λ)\n\n",
    );
    out.push_str(&format_table(
        &["wavelengths", "k²=0.02", "k²=0.03", "k²=0.05", "k²=0.10"],
        &rows,
    ));
    let ring = Microring::from_params(&params);
    let pos = model.crosstalk_limited_levels(&ring, 20);
    let neg = PrecisionModel::with_negative_rail(pos);
    out.push_str(&format!(
        "\nk²=0.03 @ 20 λ: {:.2} bits positive-only, {:.2} bits with negative rail\n",
        pos.log2(),
        neg.log2()
    ));
    out
}

/// Table I — per-device power estimates for the three configurations.
pub fn table1_device_powers() -> String {
    type PowerField = fn(&albireo_core::config::DevicePowers) -> f64;
    let fields: [(&str, PowerField); 6] = [
        ("MRR", |p| p.mrr_w),
        ("MZM", |p| p.mzm_w),
        ("Laser", |p| p.laser_w),
        ("TIA", |p| p.tia_w),
        ("ADC", |p| p.adc_w),
        ("DAC", |p| p.dac_w),
    ];
    let rows: Vec<Vec<String>> = fields
        .into_iter()
        .map(|(name, f)| {
            let mut row = vec![name.to_string()];
            for est in TechnologyEstimate::all() {
                row.push(format_watts(f(&est.device_powers())));
            }
            row
        })
        .collect();
    let mut out = String::from("Table I: device power estimates\n\n");
    out.push_str(&format_table(
        &["Device", "Conservative", "Moderate", "Aggressive"],
        &rows,
    ));
    out.push_str("\nConverter rates: 5 GS/s (C, M), 8 GS/s (A)\n");
    out
}

/// Table II — optical device parameters.
pub fn table2_optical_params() -> String {
    let p = OpticalParams::paper();
    let ring = Microring::from_params(&p);
    let rows = vec![
        vec![
            "waveguide n_eff / n_g".into(),
            format!("{} / {}", p.waveguide.n_eff, p.waveguide.n_group),
        ],
        vec![
            "waveguide loss".into(),
            format!(
                "{} dB/cm straight, {} dB/cm bent",
                p.waveguide.straight_loss_db_per_cm, p.waveguide.bent_loss_db_per_cm
            ),
        ],
        vec!["Y-branch loss".into(), format!("{} dB", p.ybranch.loss_db)],
        vec![
            "MRR radius / k² / loss".into(),
            format!(
                "{} µm / {} / {} dB",
                p.mrr.radius * 1e6,
                p.mrr.k2,
                p.mrr.drop_loss_db
            ),
        ],
        vec![
            "MRR FSR (derived)".into(),
            format!("{:.2} nm (paper: 16.1 nm)", ring.fsr() * 1e9),
        ],
        vec![
            "MRR finesse (derived)".into(),
            format!("{:.1}", ring.finesse()),
        ],
        vec!["MZM loss".into(), format!("{} dB", p.mzm.loss_db)],
        vec![
            "star coupler loss".into(),
            format!("{} dB", p.star_coupler.loss_db),
        ],
        vec![
            "AWG channels / loss / crosstalk".into(),
            format!(
                "{} / {} dB / {} dB",
                p.awg.channels, p.awg.loss_db, p.awg.crosstalk_db
            ),
        ],
        vec![
            "laser RIN".into(),
            format!("{} dBc/Hz", p.laser.rin_dbc_per_hz),
        ],
        vec![
            "PD responsivity / dark current".into(),
            format!(
                "{} A/W / {} pA",
                p.photodiode.responsivity,
                p.photodiode.dark_current * 1e12
            ),
        ],
    ];
    let mut out = String::from("Table II: optical device parameters\n\n");
    out.push_str(&format_table(&["Parameter", "Value"], &rows));
    out
}

/// Table III — device power breakdown per estimate for Albireo-9.
pub fn table3_power_breakdown() -> String {
    let chip = ChipConfig::albireo_9();
    let breakdowns: Vec<PowerBreakdown> = TechnologyEstimate::all()
        .iter()
        .map(|&e| PowerBreakdown::for_chip(&chip, e))
        .collect();
    let labels = ["MRR", "MZI", "Laser", "TIA", "DAC", "ADC", "Cache"];
    let mut rows = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for b in &breakdowns {
            let (_, w, portion) = b.rows()[i];
            row.push(format!("{w:.2} W ({:.1}%)", portion * 100.0));
        }
        rows.push(row);
    }
    rows.push(vec![
        "Total".into(),
        format!("{:.1} W", breakdowns[0].total_w()),
        format!("{:.2} W", breakdowns[1].total_w()),
        format!("{:.2} W", breakdowns[2].total_w()),
    ]);
    let mut out = String::from(
        "Table III: device power breakdown (Albireo-9)\n\
         (paper totals: 22.7 W / 6.19 W / 1.64 W)\n\n",
    );
    out.push_str(&format_table(
        &["Device", "Albireo-C", "Albireo-M", "Albireo-A"],
        &rows,
    ));
    out
}

/// Structured data behind Fig. 8: photonic accelerator comparison at 60 W.
/// Every column is produced through the shared [`Accelerator`] trait, so
/// Albireo and the baselines flow through identical code.
pub fn photonic_comparison_data() -> (
    Vec<NetworkCost>,
    Vec<NetworkCost>,
    Vec<NetworkCost>,
    Vec<NetworkCost>,
) {
    let networks = zoo::all_benchmarks();
    let costs = |accel: &dyn Accelerator| -> Vec<NetworkCost> {
        networks.iter().map(|m| accel.cost(m)).collect()
    };
    (
        costs(&AlbireoAccelerator::albireo_9(
            TechnologyEstimate::Conservative,
        )),
        costs(&AlbireoAccelerator::albireo_27(
            TechnologyEstimate::Conservative,
        )),
        costs(&Pixel::paper_60w()),
        costs(&DeapCnn::paper_60w()),
    )
}

/// Fig. 8 — latency / energy / EDP vs PIXEL and DEAP-CNN at the 60 W
/// budget, conservative devices.
pub fn fig8_photonic_comparison() -> String {
    let (a9, a27, pixel, deap) = photonic_comparison_data();
    let mut out = String::from(
        "Figure 8: photonic accelerator comparison (conservative devices, 60 W budget)\n\n",
    );
    // One metric extractor per panel — the trait's canonical NetworkCost
    // lets Albireo and baseline columns share it.
    type Metric = fn(&NetworkCost) -> f64;
    let panels: [(&str, Metric); 3] = [
        ("(a) latency (ms)", |e| e.latency_s * 1e3),
        ("(b) energy (mJ)", |e| e.energy_j * 1e3),
        ("(c) EDP (mJ·ms)", |e| e.edp_mj_ms()),
    ];
    for (metric, f) in panels {
        let mut rows = Vec::new();
        for i in 0..a9.len() {
            rows.push(vec![
                a9[i].network.clone(),
                format!("{:.4}", f(&pixel[i])),
                format!("{:.4}", f(&deap[i])),
                format!("{:.4}", f(&a9[i])),
                format!("{:.4}", f(&a27[i])),
            ]);
        }
        out.push_str(&format!("{metric}\n"));
        out.push_str(&format_table(
            &["network", "PIXEL", "DEAP-CNN", "Albireo-9", "Albireo-27"],
            &rows,
        ));
        out.push('\n');
    }

    // Average improvement ratios, as the paper reports them.
    let avg =
        |f: &dyn Fn(usize) -> f64| -> f64 { (0..a9.len()).map(f).sum::<f64>() / a9.len() as f64 };
    let lat9_pixel = avg(&|i| pixel[i].latency_s / a9[i].latency_s);
    let lat9_deap = avg(&|i| deap[i].latency_s / a9[i].latency_s);
    let lat27_pixel = avg(&|i| pixel[i].latency_s / a27[i].latency_s);
    let lat27_deap = avg(&|i| deap[i].latency_s / a27[i].latency_s);
    let e27_pixel = avg(&|i| pixel[i].energy_j / a27[i].energy_j);
    let e27_deap = avg(&|i| deap[i].energy_j / a27[i].energy_j);
    let edp27_pixel = avg(&|i| pixel[i].edp_mj_ms() / a27[i].edp_mj_ms());
    let edp27_deap = avg(&|i| deap[i].edp_mj_ms() / a27[i].edp_mj_ms());
    out.push_str("average improvements (paper values in parentheses):\n");
    out.push_str(&format!(
        "  Albireo-9  latency vs PIXEL: {} (79.5 X), vs DEAP-CNN: {} (1.7 X)\n",
        format_ratio(lat9_pixel),
        format_ratio(lat9_deap)
    ));
    out.push_str(&format!(
        "  Albireo-27 latency vs PIXEL: {} (225 X), vs DEAP-CNN: {} (4.8 X)\n",
        format_ratio(lat27_pixel),
        format_ratio(lat27_deap)
    ));
    out.push_str(&format!(
        "  Albireo-27 energy  vs PIXEL: {} (226 X), vs DEAP-CNN: {} (4.9 X)\n",
        format_ratio(e27_pixel),
        format_ratio(e27_deap)
    ));
    out.push_str(&format!(
        "  Albireo-27 EDP     vs PIXEL: {} (50,957 X), vs DEAP-CNN: {} (23.9 X)\n",
        format_ratio(edp27_pixel),
        format_ratio(edp27_deap)
    ));
    out
}

/// Fig. 9 — chip area breakdown by component.
pub fn fig9_area_breakdown() -> String {
    let area = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
    let rows: Vec<Vec<String>> = area
        .rows()
        .into_iter()
        .map(|(name, mm2, portion)| {
            vec![
                name.to_string(),
                format!("{mm2:.3}"),
                format!("{:.1}%", portion * 100.0),
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 9: Albireo-9 chip area breakdown\n\
         (paper: 124.6 mm² total; AWG 72%, star couplers 17%, MZM 3.7%)\n\n",
    );
    out.push_str(&format_table(&["Component", "mm²", "portion"], &rows));
    out.push_str(&format!(
        "\nTotal: {:.1} mm²; active (excl. passive distribution): {:.1} mm²\n",
        area.total_mm2(),
        area.active_mm2()
    ));
    out
}

/// Structured data behind Table IV.
pub fn electronic_comparison_data() -> Vec<(String, Vec<NetworkEvaluation>)> {
    let chip = ChipConfig::albireo_9();
    [zoo::alexnet(), zoo::vgg16()]
        .into_iter()
        .map(|model: Model| {
            let evals = TechnologyEstimate::all()
                .iter()
                .map(|&e| NetworkEvaluation::evaluate(&chip, e, &model))
                .collect();
            (model.name().to_string(), evals)
        })
        .collect()
}

/// Table IV — comparison with Eyeriss, ENVISION, and UNPU on AlexNet and
/// VGG16.
pub fn table4_electronic_comparison() -> String {
    let electronic = albireo_baselines::reported_accelerators();
    let albireo = electronic_comparison_data();
    let mut out = String::from("Table IV: comparison with electronic accelerators\n\n");
    for (network, evals) in &albireo {
        let mut rows = Vec::new();
        let mut header: Vec<String> = vec!["metric".into()];
        for acc in &electronic {
            header.push(format!("{} ({} nm)", acc.name, acc.technology_nm));
        }
        for e in evals {
            header.push(format!("Albireo-{}", e.estimate.suffix()));
        }
        let reported: Vec<_> = electronic
            .iter()
            .map(|a| a.results[network.as_str()])
            .collect();
        let metric_rows: Vec<(&str, Vec<f64>)> = vec![
            (
                "latency (ms)",
                reported
                    .iter()
                    .map(|r| r.latency_s * 1e3)
                    .chain(evals.iter().map(|e| e.latency_s * 1e3))
                    .collect(),
            ),
            (
                "energy (mJ)",
                reported
                    .iter()
                    .map(|r| r.energy_j * 1e3)
                    .chain(evals.iter().map(|e| e.energy_j * 1e3))
                    .collect(),
            ),
            (
                "EDP (mJ·ms)",
                reported
                    .iter()
                    .map(|r| r.edp_mj_ms())
                    .chain(evals.iter().map(|e| e.edp_mj_ms()))
                    .collect(),
            ),
            (
                "GOPS/mm²",
                reported
                    .iter()
                    .map(|r| r.gops_per_mm2)
                    .chain(evals.iter().map(|e| e.gops_per_mm2()))
                    .collect(),
            ),
            (
                "GOPS/mm² (active)",
                reported
                    .iter()
                    .map(|r| r.gops_per_mm2)
                    .chain(evals.iter().map(|e| e.gops_per_mm2_active()))
                    .collect(),
            ),
            (
                "GOPS/W/mm²",
                reported
                    .iter()
                    .map(|r| r.gops_per_w_per_mm2)
                    .chain(evals.iter().map(|e| e.gops_per_w_per_mm2()))
                    .collect(),
            ),
            (
                "GOPS/W/mm² (active)",
                reported
                    .iter()
                    .map(|r| r.gops_per_w_per_mm2)
                    .chain(evals.iter().map(|e| e.gops_per_w_per_mm2_active()))
                    .collect(),
            ),
        ];
        for (name, values) in metric_rows {
            let mut row = vec![name.to_string()];
            row.extend(values.iter().map(|v| {
                if *v >= 1000.0 {
                    format!("{v:.0}")
                } else if *v >= 10.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v:.3}")
                }
            }));
            rows.push(row);
        }
        out.push_str(&format!("{network}\n"));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        out.push_str(&format_table(&header_refs, &rows));
        out.push('\n');
    }
    out.push_str(
        "note: electronic GOPS rows are reported full-die values from the\n\
         original publications; Albireo 'active' rows exclude its passive\n\
         optical distribution area, as in the paper.\n",
    );
    out
}

/// WDM efficiency — energy per wavelength used (§IV-B).
pub fn wdm_efficiency() -> String {
    let (_, a27, pixel, deap) = photonic_comparison_data();
    let mut rows = Vec::new();
    let mut pixel_ratio_sum = 0.0;
    let mut deap_ratio_sum = 0.0;
    for i in 0..a27.len() {
        // Each NetworkCost carries its design's computation wavelengths,
        // so the metric needs no side-channel chip knowledge.
        let albireo_epw = a27[i].energy_per_wavelength();
        let pixel_epw = pixel[i].energy_per_wavelength();
        let deap_epw = deap[i].energy_per_wavelength();
        pixel_ratio_sum += pixel_epw / albireo_epw;
        deap_ratio_sum += deap_epw / albireo_epw;
        rows.push(vec![
            a27[i].network.clone(),
            format!("{:.4}", albireo_epw * 1e3),
            format!("{:.4}", pixel_epw * 1e3),
            format!("{:.4}", deap_epw * 1e3),
        ]);
    }
    let n = a27.len() as f64;
    let mut out =
        String::from("WDM efficiency: energy per wavelength used (mJ/λ), 60 W designs\n\n");
    out.push_str(&format_table(
        &["network", "Albireo-27", "PIXEL", "DEAP-CNN"],
        &rows,
    ));
    out.push_str(&format!(
        "\naverage Albireo WDM-efficiency advantage: {} vs PIXEL (paper: 1680 X), {} vs DEAP-CNN (paper: 30.9 X)\n",
        format_ratio(pixel_ratio_sum / n),
        format_ratio(deap_ratio_sum / n)
    ));
    out
}

/// Headline improvement ratios (abstract / §IV-B).
pub fn summary_ratios() -> String {
    let electronic = albireo_baselines::reported_accelerators();
    let albireo = electronic_comparison_data();
    let mut lat_c = Vec::new();
    let mut edp_c = Vec::new();
    let mut edp_m_no_eyeriss = Vec::new();
    let mut edp_a_no_eyeriss = Vec::new();
    let mut lat_a = Vec::new();
    for (network, evals) in &albireo {
        let c = &evals[0];
        let m = &evals[1];
        let a = &evals[2];
        for acc in &electronic {
            let r = acc.results[network.as_str()];
            lat_c.push(r.latency_s / c.latency_s);
            edp_c.push(r.edp_mj_ms() / c.edp_mj_ms());
            lat_a.push(r.latency_s / a.latency_s);
            if acc.name != "Eyeriss" {
                edp_m_no_eyeriss.push(r.edp_mj_ms() / m.edp_mj_ms());
                edp_a_no_eyeriss.push(r.edp_mj_ms() / a.edp_mj_ms());
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut out =
        String::from("Headline ratios vs electronic accelerators (paper values in parentheses):\n");
    out.push_str(&format!(
        "  Albireo-C latency improvement: avg {} (110 X), min {} (20 X)\n",
        format_ratio(mean(&lat_c)),
        format_ratio(min(&lat_c))
    ));
    out.push_str(&format!(
        "  Albireo-C EDP improvement: avg {} (74.2 X)\n",
        format_ratio(mean(&edp_c))
    ));
    out.push_str(&format!(
        "  Albireo-M EDP improvement (excl. Eyeriss): avg {} (275 X*)\n",
        format_ratio(mean(&edp_m_no_eyeriss))
    ));
    out.push_str(&format!(
        "  Albireo-A latency improvement: avg {} (177 X)\n",
        format_ratio(mean(&lat_a))
    ));
    out.push_str(&format!(
        "  Albireo-A EDP improvement (excl. Eyeriss): avg {} (min 229 X, avg 690 X incl. Eyeriss)\n",
        format_ratio(mean(&edp_a_no_eyeriss))
    ));
    out.push_str(
        "  (* paper's 275 X averages UNPU 23.1 X and ENVISION 216 X with Eyeriss excluded)\n",
    );
    out
}

/// Runs every experiment and concatenates the outputs.
pub fn all_experiments() -> String {
    let mut out = String::new();
    for (title, body) in [
        ("TABLE I", table1_device_powers()),
        ("TABLE II", table2_optical_params()),
        ("FIGURE 3", fig3_noise_precision()),
        ("FIGURE 4a", fig4a_spectrum()),
        ("FIGURE 4b", fig4b_temporal()),
        ("FIGURE 4c", fig4c_crosstalk_precision()),
        ("TABLE III", table3_power_breakdown()),
        ("FIGURE 7", fig7_dataflow_trace()),
        ("FIGURE 8", fig8_photonic_comparison()),
        ("FIGURE 9", fig9_area_breakdown()),
        ("TABLE IV", table4_electronic_comparison()),
        ("WDM EFFICIENCY", wdm_efficiency()),
        ("ABLATIONS", ablation_report()),
        ("THERMAL", thermal_sensitivity()),
        ("TIMING", timing_closure()),
        ("POWER DELIVERY", power_delivery_study()),
        ("WEIGHT DISTRIBUTION", weight_distribution_study()),
        ("SCALING", scaling_study()),
        ("DATAFLOW", dataflow_alternatives()),
        ("ALLOCATION", allocation_study()),
        ("FIDELITY", inference_fidelity()),
        ("SUMMARY", summary_ratios()),
    ] {
        out.push_str(&format!("================ {title} ================\n\n"));
        out.push_str(&body);
        out.push('\n');
    }
    out
}

/// Fig. 7 — the depth-first PLCG dataflow trace for the paper's running
/// example (one kernel, Wz = 9 channels, Nu = 3).
pub fn fig7_dataflow_trace() -> String {
    use albireo_core::trace::{summarize, trace_kernel};
    let chip = ChipConfig::albireo_9();
    let trace = trace_kernel(&chip, 0, 2, 12, 9);
    let mut out = String::from(
        "Figure 7: PLCG dataflow trace (1 kernel, 9 channels, Nu = 3, Nd = 5)\n\
         Each block of Nd outputs aggregates ceil(Wz/Nu) = 3 channel groups\n\
         depth-first before the kernel moves; partials never leave the chip.\n\n",
    );
    for cycle in trace.iter().take(18) {
        out.push_str(&format!("{cycle}\n"));
    }
    if trace.len() > 18 {
        out.push_str(&format!("... ({} more cycles)\n", trace.len() - 18));
    }
    let s = summarize(&trace);
    out.push_str(&format!(
        "\nsummary: {} cycles, {} outputs written, {} on-chip partial updates, {} writebacks, 0 partial-sum spills\n",
        s.cycles, s.outputs_written, s.partial_updates, s.writebacks
    ));
    out
}

/// Ablation study — the design-choice sensitivity analysis (stride model,
/// depth-first dataflow, and the Ng/Nd/Nu sweeps).
pub fn ablation_report() -> String {
    use albireo_core::ablation::{
        dataflow_ablation, stride_ablation, sweep_nd, sweep_ng, sweep_nu,
    };
    let estimate = TechnologyEstimate::Conservative;
    let vgg = zoo::vgg16();
    let mut out = String::from("Ablation studies (conservative devices, VGG16 unless noted)\n\n");

    out.push_str("1. PLCG count (Ng):\n");
    let rows: Vec<Vec<String>> = sweep_ng(&[1, 3, 9, 18, 27], estimate, &vgg)
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                format!("{:.1}", p.power_w),
                format!("{:.0}", p.area_mm2),
                format!("{:.2}", p.latency_s * 1e3),
                format!("{:.1}", p.edp_mj_ms),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &[
            "design",
            "power (W)",
            "area (mm²)",
            "latency (ms)",
            "EDP (mJ·ms)",
        ],
        &rows,
    ));

    out.push_str("\n2. PLCU outputs (Nd) — parallelism vs precision:\n");
    let rows: Vec<Vec<String>> = sweep_nd(&[2, 3, 5, 7, 10], estimate, &vgg)
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                format!("{}", p.chip.wavelengths_per_plcu()),
                format!("{:.2}", p.precision_bits),
                format!("{:.2}", p.latency_s * 1e3),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["design", "λ/PLCU", "bits", "latency (ms)"],
        &rows,
    ));

    out.push_str("\n3. PLCUs per group (Nu) — bounded by the 64-λ network:\n");
    let rows: Vec<Vec<String>> = sweep_nu(&[1, 2, 3, 4], estimate, &vgg)
        .into_iter()
        .map(|p| {
            vec![
                p.label,
                format!("{}", p.chip.wavelengths_per_plcg()),
                if p.chip.wavelengths_per_plcg() <= 64 {
                    "yes"
                } else {
                    "NO"
                }
                .into(),
                format!("{:.2}", p.latency_s * 1e3),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["design", "λ/PLCG", "fits 64-λ", "latency (ms)"],
        &rows,
    ));

    out.push_str("\n4. Stride model (cycles with / without the multicast-width penalty):\n");
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let a = stride_ablation(m);
            vec![
                m.name().to_string(),
                a.with_penalty.to_string(),
                a.without_penalty.to_string(),
                format!("{:.3}", a.slowdown()),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["network", "with penalty", "without", "slowdown"],
        &rows,
    ));

    out.push_str("\n5. Depth-first dataflow (partial-sum traffic avoided):\n");
    let chip = ChipConfig::albireo_9();
    let rows: Vec<Vec<String>> = zoo::all_benchmarks()
        .iter()
        .map(|m| {
            let a = dataflow_ablation(m, &chip);
            vec![
                m.name().to_string(),
                format!("{:.1}", a.depth_first_bytes as f64 / 1e6),
                format!("{:.1}", a.spilling_bytes as f64 / 1e6),
                format!("{:.3}", a.extra_energy_j * 1e3),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &[
            "network",
            "depth-first (MB)",
            "spilling (MB)",
            "extra energy (mJ)",
        ],
        &rows,
    ));
    out
}

/// Thermal sensitivity study — resonance drift vs precision and the ring
/// tuning budget (extension; the paper's device powers implicitly include
/// tuning).
pub fn thermal_sensitivity() -> String {
    use albireo_photonics::thermal::ThermalModel;
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let model = PrecisionModel::paper();
    let thermal = ThermalModel::silicon();
    let mut rows = Vec::new();
    for dt in [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0] {
        let drift = thermal.drift(dt);
        let bits = model
            .crosstalk_limited_levels_with_drift(&ring, 21, drift)
            .log2();
        rows.push(vec![
            format!("{dt:.2}"),
            format!("{:.1}", drift * 1e12),
            format!("{:.3}", thermal.drift_penalty(&ring, dt)),
            format!("{bits:.2}"),
        ]);
    }
    let mut out =
        String::from("Thermal sensitivity (k² = 0.03, 21 λ): uncorrected resonance drift\n\n");
    out.push_str(&format_table(
        &["ΔT (K)", "drift (pm)", "signal penalty", "bits"],
        &rows,
    ));
    out.push_str(&format!(
        "\nHalf-power excursion: {:.2} K. Holding 2430 switching rings against\n\
         ±5 K costs {:.2} W of heater power (vs the 7.53 W conservative MRR\n\
         drive budget) — why dense-WDM rings need active tuning.\n",
        thermal.half_power_excursion(&ring),
        thermal.chip_tuning_power(2430, 5.0)
    ));
    out
}

/// Timing-closure study — per-stage cycle budget at each estimate's clock
/// (combines Fig. 4b's temporal analysis with the §IV-A converter limits).
pub fn timing_closure() -> String {
    use albireo_core::timing::{analyze, max_clock_hz};
    let chip = ChipConfig::albireo_9();
    let mut out = String::from("Timing closure at the converter-limited clocks\n\n");
    for (estimate, k2) in [
        (TechnologyEstimate::Conservative, 0.02),
        (TechnologyEstimate::Conservative, 0.03),
        (TechnologyEstimate::Aggressive, 0.03),
    ] {
        let r = analyze(&chip, estimate, k2);
        out.push_str(&format!(
            "Albireo-{} @ {:.0} GHz, k² = {k2}: ring response {:.3}, settling {:.1} ps / {:.1} ps cycle  -> {}\n",
            estimate.suffix(),
            estimate.clock_hz() / 1e9,
            r.ring_response,
            r.settling_time_s() * 1e12,
            r.cycle_time_s * 1e12,
            if r.closes_timing { "CLOSES" } else { "FAILS" },
        ));
    }
    out.push_str("\nMaximum ring-limited clock by coupling:\n");
    let rows: Vec<Vec<String>> = [0.01, 0.02, 0.03, 0.05, 0.10]
        .iter()
        .map(|&k2| vec![format!("{k2}"), format!("{:.1}", max_clock_hz(k2) / 1e9)])
        .collect();
    out.push_str(&format_table(&["k²", "max clock (GHz)"], &rows));
    out
}

/// Power-delivery study — laser power vs delivered precision through the
/// chip link (closes the loop between Fig. 3 and Table I).
pub fn power_delivery_study() -> String {
    use albireo_core::power_delivery::PowerDelivery;
    let d9 = PowerDelivery::new(&ChipConfig::albireo_9());
    let d27 = PowerDelivery::new(&ChipConfig::albireo_27());
    let mut out =
        String::from("Optical power delivery (per-channel laser power through the chip link)\n\n");
    out.push_str(&format!(
        "link loss: Albireo-9 {:.1} dB, Albireo-27 {:.1} dB\n\n",
        d9.link_loss_db(),
        d27.link_loss_db()
    ));
    let rows: Vec<Vec<String>> = [0.5e-3, 1e-3, 2e-3, 5e-3, 10e-3, 37.5e-3]
        .iter()
        .map(|&p| {
            vec![
                format!("{:.1}", p * 1e3),
                format!("{:.1}", d9.power_at_pd(p) * 1e6),
                format!("{:.2}", d9.noise_bits(p)),
                format!("{:.2}", d9.delivered_bits(p)),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["laser (mW)", "at PD (µW)", "noise bits", "delivered bits"],
        &rows,
    ));
    if let Some(p) = d9.min_laser_power_for_noise_bits(8.0) {
        out.push_str(&format!(
            "\nminimum laser for 8 noise-limited bits: {:.2} mW optical (conservative device: 37.5 mW electrical)\n",
            p * 1e3
        ));
        let min_eta = p / 37.5e-3;
        out.push_str(&format!(
            "=> the conservative DBR laser needs a wall-plug efficiency of at least {:.0}%\n",
            min_eta * 100.0
        ));
        use albireo_photonics::laser::Laser;
        for eta in [1.0, 0.3, 0.1] {
            let laser = Laser::conservative(eta).expect("valid efficiency");
            out.push_str(&format!(
                "   at {:.0}% efficiency: {:.1} mW optical -> {:.2} delivered bits\n",
                eta * 100.0,
                laser.optical_w() * 1e3,
                d9.delivered_bits(laser.optical_w())
            ));
        }
    }
    out
}

/// Weight-distribution study — the paper's §II-C2 observation that
/// bell-shaped trained weights leave crosstalk headroom.
pub fn weight_distribution_study() -> String {
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let model = PrecisionModel::paper();
    let uniform_rms = (1.0f64 / 12.0).sqrt();
    let mut rows = Vec::new();
    for (label, rms) in [
        ("uniform [0,1] (worst-case analysis)", uniform_rms),
        ("Gaussian σ=0.25 of full scale", 0.25),
        ("Gaussian σ=0.15 (typical trained CNN)", 0.15),
        ("Gaussian σ=0.10 (heavily regularized)", 0.10),
    ] {
        let levels = model.crosstalk_limited_levels_with_weight_rms(&ring, 21, rms);
        let with_rail = PrecisionModel::with_negative_rail(levels);
        rows.push(vec![
            label.to_string(),
            format!("{rms:.3}"),
            format!("{:.2}", levels.log2()),
            format!("{:.2}", with_rail.log2()),
        ]);
    }
    let mut out = String::from(
        "Crosstalk vs weight distribution (k² = 0.03, 21 λ) — §II-C2's\n\
         bell-shaped-weights headroom, quantified:\n\n",
    );
    out.push_str(&format_table(
        &["weight distribution", "RMS", "bits", "bits (+neg rail)"],
        &rows,
    ));
    out
}

/// Writes machine-readable CSV series for every figure to `dir`, returning
/// the files written. Intended for downstream plotting.
pub fn export_csv(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use albireo_core::report::to_csv;
    use std::fs;
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut write = |name: &str, content: String| -> std::io::Result<()> {
        let path = dir.join(name);
        fs::write(&path, content)?;
        written.push(path);
        Ok(())
    };

    // Fig. 3: wavelengths × laser powers → bits.
    let model = PrecisionModel::paper();
    let sweeps = fig3_noise_sweep(&model, &FIG3_LASER_POWERS_W, 64);
    let rows: Vec<Vec<String>> = (1..=64)
        .map(|n| {
            let mut row = vec![n.to_string()];
            for sweep in &sweeps {
                row.push(format!("{:.4}", sweep.series[n - 1].1));
            }
            row
        })
        .collect();
    write(
        "fig3_noise_precision.csv",
        to_csv(
            &[
                "wavelengths",
                "bits_0p5mW",
                "bits_1mW",
                "bits_2mW",
                "bits_4mW",
            ],
            &rows,
        ),
    )?;

    // Fig. 4a: detuning × k² → transmission.
    let params = OpticalParams::paper();
    let rings: Vec<Microring> = FIG4_K2_VALUES
        .iter()
        .map(|&k2| Microring::with_k2(&params, k2))
        .collect();
    let span = rings[0].fsr() / 8.0;
    let rows: Vec<Vec<String>> = (0..201)
        .map(|i| {
            let d = -span + 2.0 * span * i as f64 / 200.0;
            let mut row = vec![format!("{:.5}", d * 1e9)];
            for ring in &rings {
                row.push(format!("{:.6}", ring.drop_transmission(d)));
            }
            row
        })
        .collect();
    write(
        "fig4a_spectrum.csv",
        to_csv(
            &["detuning_nm", "k2_0p02", "k2_0p03", "k2_0p05", "k2_0p10"],
            &rows,
        ),
    )?;

    // Fig. 4b: time × k² → normalized power.
    let rows: Vec<Vec<String>> = (0..=200)
        .map(|ps| {
            let t = ps as f64 * 1e-12;
            let mut row = vec![ps.to_string()];
            for ring in &rings {
                row.push(format!("{:.6}", ring.step_response(t)));
            }
            row
        })
        .collect();
    write(
        "fig4b_temporal.csv",
        to_csv(
            &["time_ps", "k2_0p02", "k2_0p03", "k2_0p05", "k2_0p10"],
            &rows,
        ),
    )?;

    // Fig. 4c: wavelengths × k² → bits.
    let sweeps = fig4c_crosstalk_sweep(&model, &params, &FIG4_K2_VALUES, 64);
    let rows: Vec<Vec<String>> = (2..=64)
        .map(|n| {
            let mut row = vec![n.to_string()];
            for sweep in &sweeps {
                row.push(format!("{:.4}", sweep.series[n - 2].1));
            }
            row
        })
        .collect();
    write(
        "fig4c_crosstalk_precision.csv",
        to_csv(
            &["wavelengths", "k2_0p02", "k2_0p03", "k2_0p05", "k2_0p10"],
            &rows,
        ),
    )?;

    // Fig. 8: network × accelerator → latency/energy/EDP.
    let (a9, a27, pixel, deap) = photonic_comparison_data();
    let rows: Vec<Vec<String>> = (0..a9.len())
        .map(|i| {
            vec![
                a9[i].network.clone(),
                format!("{:.6}", pixel[i].latency_s * 1e3),
                format!("{:.6}", deap[i].latency_s * 1e3),
                format!("{:.6}", a9[i].latency_s * 1e3),
                format!("{:.6}", a27[i].latency_s * 1e3),
                format!("{:.6}", pixel[i].energy_j * 1e3),
                format!("{:.6}", deap[i].energy_j * 1e3),
                format!("{:.6}", a9[i].energy_j * 1e3),
                format!("{:.6}", a27[i].energy_j * 1e3),
                format!("{:.6}", pixel[i].edp_mj_ms()),
                format!("{:.6}", deap[i].edp_mj_ms()),
                format!("{:.6}", a9[i].edp_mj_ms()),
                format!("{:.6}", a27[i].edp_mj_ms()),
            ]
        })
        .collect();
    write(
        "fig8_photonic_comparison.csv",
        to_csv(
            &[
                "network",
                "pixel_latency_ms",
                "deap_latency_ms",
                "albireo9_latency_ms",
                "albireo27_latency_ms",
                "pixel_energy_mj",
                "deap_energy_mj",
                "albireo9_energy_mj",
                "albireo27_energy_mj",
                "pixel_edp",
                "deap_edp",
                "albireo9_edp",
                "albireo27_edp",
            ],
            &rows,
        ),
    )?;

    // Fig. 9: component areas.
    let area = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
    let rows: Vec<Vec<String>> = area
        .rows()
        .into_iter()
        .map(|(name, mm2, portion)| {
            vec![
                name.to_string(),
                format!("{mm2:.4}"),
                format!("{portion:.5}"),
            ]
        })
        .collect();
    write(
        "fig9_area_breakdown.csv",
        to_csv(&["component", "mm2", "portion"], &rows),
    )?;

    // Table III: device powers per estimate.
    let rows: Vec<Vec<String>> = {
        let chip = ChipConfig::albireo_9();
        let breakdowns: Vec<PowerBreakdown> = TechnologyEstimate::all()
            .iter()
            .map(|&e| PowerBreakdown::for_chip(&chip, e))
            .collect();
        (0..7)
            .map(|i| {
                let mut row = vec![breakdowns[0].rows()[i].0.to_string()];
                for b in &breakdowns {
                    row.push(format!("{:.4}", b.rows()[i].1));
                }
                row
            })
            .collect()
    };
    write(
        "table3_power_breakdown.csv",
        to_csv(
            &["device", "conservative_w", "moderate_w", "aggressive_w"],
            &rows,
        ),
    )?;

    // Table IV: Albireo vs electronic.
    let mut rows = Vec::new();
    for (network, evals) in electronic_comparison_data() {
        for e in evals {
            rows.push(vec![
                network.clone(),
                format!("albireo_{}", e.estimate.suffix()),
                format!("{:.6}", e.latency_s * 1e3),
                format!("{:.6}", e.energy_j * 1e3),
                format!("{:.6}", e.edp_mj_ms()),
                format!("{:.4}", e.gops_per_mm2()),
                format!("{:.4}", e.gops_per_mm2_active()),
            ]);
        }
        for acc in albireo_baselines::reported_accelerators() {
            let r = acc.results[network.as_str()];
            rows.push(vec![
                network.clone(),
                acc.name.to_lowercase(),
                format!("{:.6}", r.latency_s * 1e3),
                format!("{:.6}", r.energy_j * 1e3),
                format!("{:.6}", r.edp_mj_ms()),
                format!("{:.4}", r.gops_per_mm2),
                String::new(),
            ]);
        }
    }
    write(
        "table4_electronic_comparison.csv",
        to_csv(
            &[
                "network",
                "accelerator",
                "latency_ms",
                "energy_mj",
                "edp_mj_ms",
                "gops_per_mm2",
                "gops_per_mm2_active",
            ],
            &rows,
        ),
    )?;

    // Golden grid: every (chip × estimate × network) point, with cycle
    // counts, for the regression tests in `tests/golden_values.rs`.
    write("golden_network_metrics.csv", golden_network_metrics_csv())?;

    // Golden baselines: every trait-costed baseline × supported network,
    // for the regression tests in `tests/baseline_golden.rs`.
    write("golden_baseline_metrics.csv", golden_baseline_metrics_csv())?;

    // Golden operating modes: direct vs Winograd vs GEMM on the serving
    // zoo, for the regression tests in `tests/modes_golden.rs`.
    write("golden_modes_metrics.csv", golden_modes_metrics_csv())?;

    Ok(written)
}

/// The baseline golden-value artifact: PIXEL, DEAP-CNN, and the three
/// reported electronic designs costed through the [`Accelerator`] trait
/// on every benchmark network they support. `tests/baseline_golden.rs`
/// pins the baseline models against the committed copy in `results/`.
pub fn golden_baseline_metrics_csv() -> String {
    use albireo_core::report::to_csv;
    let mut accels: Vec<Box<dyn Accelerator>> =
        vec![Box::new(Pixel::paper_60w()), Box::new(DeapCnn::paper_60w())];
    for reported in albireo_baselines::reported_accelerators() {
        accels.push(Box::new(reported));
    }
    let mut rows = Vec::new();
    for model in zoo::all_benchmarks() {
        for accel in &accels {
            if !accel.supports(&model) {
                continue;
            }
            let c = accel.cost(&model);
            rows.push(vec![
                c.network.clone(),
                c.accelerator.clone(),
                c.cycles.to_string(),
                format!("{:.6}", c.latency_s * 1e3),
                format!("{:.6}", c.energy_j * 1e3),
                format!("{:.6}", c.edp_mj_ms()),
                format!("{:.6}", c.setup_s * 1e3),
                c.wavelengths.to_string(),
            ]);
        }
    }
    to_csv(
        &[
            "network",
            "accelerator",
            "cycles",
            "latency_ms",
            "energy_mj",
            "edp_mj_ms",
            "setup_ms",
            "wavelengths",
        ],
        &rows,
    )
}

/// The operating-mode golden-value artifact: the direct Albireo dataflow
/// next to the Winograd F(2×2,3×3) and incoherent-GEMM modes on every
/// serving-zoo network each one supports, costed through the shared
/// [`Accelerator`] trait. `tests/modes_golden.rs` pins the mode cost
/// models against the committed copy in `results/` and asserts the
/// headline claims (Winograd shifts VGG-class nets, leaves MobileNet
/// untouched; GEMM serves only the dense workloads).
pub fn golden_modes_metrics_csv() -> String {
    use albireo_core::report::to_csv;
    use albireo_modes::{GemmMode, WinogradAccelerator};
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(AlbireoAccelerator::albireo_9(
            TechnologyEstimate::Conservative,
        )),
        Box::new(AlbireoAccelerator::albireo_27(
            TechnologyEstimate::Conservative,
        )),
        Box::new(WinogradAccelerator::winograd_9(
            TechnologyEstimate::Conservative,
        )),
        Box::new(WinogradAccelerator::winograd_27(
            TechnologyEstimate::Conservative,
        )),
        Box::new(GemmMode::gemm_9(TechnologyEstimate::Conservative)),
        Box::new(GemmMode::gemm_27(TechnologyEstimate::Conservative)),
    ];
    let mut rows = Vec::new();
    for model in zoo::serving_models() {
        for accel in &accels {
            if !accel.supports(&model) {
                continue;
            }
            let c = accel.cost(&model);
            let macs: u64 = c.per_layer.iter().map(|l| l.macs).sum();
            rows.push(vec![
                c.network.clone(),
                c.accelerator.clone(),
                c.cycles.to_string(),
                macs.to_string(),
                format!("{:.6}", c.latency_s * 1e3),
                format!("{:.6}", c.energy_j * 1e3),
                format!("{:.6}", c.edp_mj_ms()),
                format!("{:.6}", c.setup_s * 1e3),
                c.wavelengths.to_string(),
            ]);
        }
    }
    to_csv(
        &[
            "network",
            "accelerator",
            "cycles",
            "macs",
            "latency_ms",
            "energy_mj",
            "edp_mj_ms",
            "setup_ms",
            "wavelengths",
        ],
        &rows,
    )
}

/// The golden-value regression artifact: every (chip × estimate × network)
/// grid point's scheduler cycle count and headline metrics, produced
/// through the parallel evaluation engine. `tests/golden_values.rs` pins
/// the model against the committed copy in `results/`.
pub fn golden_network_metrics_csv() -> String {
    use albireo_core::engine::{paper_grid, EvalEngine};
    use albireo_core::report::to_csv;
    let (chips, estimates, models) = paper_grid();
    let grid = EvalEngine::default().evaluate_grid(&chips, &estimates, &models);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|g| {
            let cycles: u64 = g.evaluation.per_layer.iter().map(|l| l.cycles).sum();
            vec![
                g.evaluation.network.clone(),
                g.chip_name.clone(),
                format!("albireo_{}", g.estimate.suffix()),
                cycles.to_string(),
                format!("{:.6}", g.evaluation.latency_s * 1e3),
                format!("{:.6}", g.evaluation.energy_j * 1e3),
                format!("{:.6}", g.evaluation.edp_mj_ms()),
            ]
        })
        .collect();
    to_csv(
        &[
            "network",
            "chip",
            "estimate",
            "cycles",
            "latency_ms",
            "energy_mj",
            "edp_mj_ms",
        ],
        &rows,
    )
}

/// Technology-scaling study — the quantitative version of the paper's
/// "Albireo-M sets a target for photonic device engineers".
pub fn scaling_study() -> String {
    use albireo_core::scaling::{
        scaling_curve, uniform_scaling_to_match_energy, ImprovementFactors,
    };
    let chip = ChipConfig::albireo_9();
    let mut out = String::from(
        "Technology scaling: device improvement needed to match electronic energy\n\n",
    );
    for (network, model) in [("AlexNet", zoo::alexnet()), ("VGG16", zoo::vgg16())] {
        for acc in albireo_baselines::reported_accelerators() {
            if let Some(r) = acc.results.get(network) {
                match uniform_scaling_to_match_energy(&chip, &model, r.energy_j) {
                    Some(f) => out.push_str(&format!(
                        "  match {} on {network}: devices must get {} cheaper\n",
                        acc.name,
                        format_ratio(f)
                    )),
                    None => out.push_str(&format!(
                        "  match {} on {network}: unreachable (below the cache floor)\n",
                        acc.name
                    )),
                }
            }
        }
    }
    let m = ImprovementFactors::between(
        TechnologyEstimate::Conservative,
        TechnologyEstimate::Moderate,
    );
    let a = ImprovementFactors::between(
        TechnologyEstimate::Conservative,
        TechnologyEstimate::Aggressive,
    );
    out.push_str(&format!(
        "\nTable I's actual per-device asks (C -> M): MRR {:.1}x, MZM {:.1}x, laser {:.0}x, TIA {:.0}x, ADC {:.0}x, DAC {:.0}x\n",
        m.mrr, m.mzm, m.laser, m.tia, m.adc, m.dac
    ));
    out.push_str(&format!(
        "Table I's actual per-device asks (C -> A): MRR {:.0}x, MZM {:.0}x, laser {:.0}x, TIA {:.0}x, ADC {:.0}x, DAC {:.0}x\n",
        a.mrr, a.mzm, a.laser, a.tia, a.adc, a.dac
    ));
    out.push_str("\nUniform-scaling EDP curve (VGG16):\n");
    let rows: Vec<Vec<String>> =
        scaling_curve(&chip, &zoo::vgg16(), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
            .into_iter()
            .map(|p| {
                vec![
                    format!("{:.0}x", p.factor),
                    format!("{:.2}", p.power_w),
                    format!("{:.2}", p.energy_j * 1e3),
                    format!("{:.1}", p.edp_mj_ms),
                ]
            })
            .collect();
    out.push_str(&format_table(
        &["device scaling", "power (W)", "energy (mJ)", "EDP (mJ·ms)"],
        &rows,
    ));
    out
}

/// Monte-Carlo inference-fidelity study: decision agreement between the
/// analog datapath and the exact digital pipeline across random tiny
/// networks, under each effect configuration.
pub fn inference_fidelity() -> String {
    use albireo_core::analog::{AnalogEngine, AnalogSimConfig};
    use albireo_tensor::conv::{conv2d, fully_connected, max_pool, relu, ConvSpec};
    use albireo_tensor::{Tensor3, Tensor4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let chip = ChipConfig::albireo_9();
    let nets = 8usize;
    let inputs_per_net = 12usize;

    let digital_forward = |c1: &Tensor4, c2: &Tensor4, fc: &[Vec<f64>], im: &Tensor3| {
        let x = relu(&conv2d(im, c1, &ConvSpec::unit()));
        let x = max_pool(&x, 2, 2);
        let x = relu(&conv2d(&x, c2, &ConvSpec::unit()));
        fully_connected(&x.flatten(), fc)
    };
    let argmax = |scores: &[f64]| {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };

    let configs: [(&str, AnalogSimConfig); 4] = [
        ("ideal", AnalogSimConfig::ideal()),
        ("full analog, 8-bit ADC", AnalogSimConfig::default()),
        (
            "with crosstalk compensation",
            AnalogSimConfig {
                crosstalk_compensation: true,
                ..AnalogSimConfig::default()
            },
        ),
        (
            "low laser power (0.25 mW)",
            AnalogSimConfig {
                laser_power_w: 0.25e-3,
                ..AnalogSimConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, cfg) in configs {
        let mut agree = 0usize;
        let mut total = 0usize;
        for net_seed in 0..nets as u64 {
            let mut rng = StdRng::seed_from_u64(9000 + net_seed);
            let c1 = Tensor4::random_gaussian(4, 1, 3, 3, 0.4, &mut rng);
            let c2 = Tensor4::random_gaussian(6, 4, 3, 3, 0.3, &mut rng);
            let fc: Vec<Vec<f64>> = (0..5)
                .map(|_| {
                    (0..54)
                        .map(|_| {
                            use rand::Rng;
                            0.3 * (rng.random::<f64>() - 0.5)
                        })
                        .collect()
                })
                .collect();
            let mut engine = AnalogEngine::new(&chip, cfg);
            for _ in 0..inputs_per_net {
                let im = Tensor3::random_uniform(1, 12, 12, 0.0, 1.0, &mut rng);
                let dig = digital_forward(&c1, &c2, &fc, &im);
                let mut x = engine.conv2d(&im, &c1, &ConvSpec::unit());
                x.relu_inplace();
                let x = max_pool(&x, 2, 2);
                let mut x = engine.conv2d(&x, &c2, &ConvSpec::unit());
                x.relu_inplace();
                let flat = x.flatten();
                let ana: Vec<f64> = fc.iter().map(|row| engine.dot(&flat, row)).collect();
                if argmax(&ana) == argmax(&dig) {
                    agree += 1;
                }
                total += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{agree}/{total}"),
            format!("{:.1}%", 100.0 * agree as f64 / total as f64),
        ]);
    }
    let mut out =
        String::from("Inference fidelity: analog vs digital decisions over random tiny CNNs\n\n");
    out.push_str(&format_table(
        &["configuration", "agreement", "rate"],
        &rows,
    ));
    out.push_str(
        "\nAt the paper's 7-bit analog operating point, classification\n\
         decisions are preserved at high rates; starving the laser power\n\
         (noise floor) degrades them.\n",
    );
    out
}

/// Dataflow-alternatives study: depth-first (the paper) vs
/// weight-stationary — converter updates against partial-sum traffic.
pub fn dataflow_alternatives() -> String {
    use albireo_core::dataflow_alt::{compare_dataflows, dac_update_energy_j};
    let chip = ChipConfig::albireo_9();
    let estimate = TechnologyEstimate::Conservative;
    let mut out =
        String::from("Dataflow alternatives: depth-first (paper) vs weight-stationary\n\n");
    out.push_str(&format!(
        "per-DAC-update energy: {:.1} pJ; per-buffer-byte energy: 0.2 pJ\n\n",
        dac_update_energy_j(estimate) * 1e12
    ));
    let mut rows = Vec::new();
    for model in zoo::all_benchmarks() {
        let (df, ws) = compare_dataflows(&chip, estimate, &model);
        rows.push(vec![
            model.name().to_string(),
            format!("{:.2}", df.weight_dac_updates as f64 / 1e9),
            format!("{:.3}", ws.weight_dac_updates as f64 / 1e9),
            format!("{:.0}", ws.partial_bytes as f64 / 1e6),
            format!("{:.2}", df.energy_j * 1e3),
            format!("{:.2}", ws.energy_j * 1e3),
        ]);
    }
    out.push_str(&format_table(
        &[
            "network",
            "DF weight updates (G)",
            "WS weight updates (G)",
            "WS partial traffic (MB)",
            "DF dyn. energy (mJ)",
            "WS dyn. energy (mJ)",
        ],
        &rows,
    ));
    out.push_str(
        "\nWeight-stationary wins on dynamic converter energy; the paper's\n\
         depth-first choice buys zero partial-sum memory bandwidth and a\n\
         simpler aggregation unit instead — the DACs are provisioned to run\n\
         at line rate either way (Table III).\n",
    );
    out
}

/// Channel-allocation study: contiguous rows (the paper's Fig. 5 layout)
/// vs row-interleaved wavelength assignment.
pub fn allocation_study() -> String {
    use albireo_core::analog::{AnalogEngine, AnalogSimConfig, ChannelAllocation};
    use albireo_tensor::conv::{conv2d, ConvSpec};
    use albireo_tensor::{Tensor3, Tensor4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let chip = ChipConfig::albireo_9();
    let mut rng = StdRng::seed_from_u64(4242);
    let input = Tensor3::random_uniform(6, 12, 12, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(3, 6, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    let reference = conv2d(&input, &kernels, &spec);
    let fs = input.max_abs() * kernels.max_abs() * 27.0;
    let mut rows = Vec::new();
    for (label, allocation) in [
        ("contiguous (paper Fig. 5)", ChannelAllocation::Contiguous),
        (
            "row-interleaved (extension)",
            ChannelAllocation::RowInterleaved,
        ),
    ] {
        let cfg = AnalogSimConfig {
            enable_noise: false,
            adc_bits: 16,
            allocation,
            ..AnalogSimConfig::default()
        };
        let mut engine = AnalogEngine::new(&chip, cfg);
        let err = engine
            .conv2d(&input, &kernels, &spec)
            .max_abs_diff(&reference)
            / fs;
        rows.push(vec![
            label.to_string(),
            format!("{err:.2e}"),
            format!("{:.2}", -err.log2()),
        ]);
    }
    let mut out = String::from("Wavelength allocation: crosstalk error of a 3x3x6 convolution\n\n");
    out.push_str(&format_table(
        &["allocation", "max error (rel FS)", "effective bits"],
        &rows,
    ));
    out.push_str(
        "\nInterleaving rows across the FSR multiplies each ring's\n\
         nearest-neighbour detuning by Wy = 3, buying ~2 extra crosstalk\n\
         bits for free (the AWG routing is passive either way).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_output() {
        for body in [
            fig3_noise_precision(),
            fig4a_spectrum(),
            fig4b_temporal(),
            fig4c_crosstalk_precision(),
            table1_device_powers(),
            table2_optical_params(),
            table3_power_breakdown(),
            fig8_photonic_comparison(),
            fig9_area_breakdown(),
            table4_electronic_comparison(),
            wdm_efficiency(),
            summary_ratios(),
        ] {
            assert!(
                body.lines().count() > 3,
                "experiment output too short: {body}"
            );
        }
    }

    #[test]
    fn fig8_orders_accelerators_correctly() {
        let (a9, a27, pixel, deap) = photonic_comparison_data();
        for i in 0..a9.len() {
            // Paper Fig. 8 shape: PIXEL slowest, Albireo-27 fastest.
            assert!(pixel[i].latency_s > deap[i].latency_s, "{}", a9[i].network);
            assert!(deap[i].latency_s > a27[i].latency_s, "{}", a9[i].network);
            assert!(a9[i].latency_s > a27[i].latency_s);
        }
    }

    #[test]
    fn fig8_ratios_near_paper() {
        let (a9, a27, pixel, deap) = photonic_comparison_data();
        let n = a9.len() as f64;
        let lat9_pixel: f64 = (0..a9.len())
            .map(|i| pixel[i].latency_s / a9[i].latency_s)
            .sum::<f64>()
            / n;
        // Paper: 79.5 X. Accept the same order of magnitude.
        assert!((30.0..200.0).contains(&lat9_pixel), "ratio = {lat9_pixel}");
        let lat27_deap: f64 = (0..a27.len())
            .map(|i| deap[i].latency_s / a27[i].latency_s)
            .sum::<f64>()
            / n;
        // Paper: 4.8 X.
        assert!((2.0..12.0).contains(&lat27_deap), "ratio = {lat27_deap}");
    }

    #[test]
    fn summary_headline_ratios_in_range() {
        let electronic = albireo_baselines::reported_accelerators();
        let albireo = electronic_comparison_data();
        let mut lat_c = Vec::new();
        for (network, evals) in &albireo {
            for acc in &electronic {
                lat_c.push(acc.results[network.as_str()].latency_s / evals[0].latency_s);
            }
        }
        let mean = lat_c.iter().sum::<f64>() / lat_c.len() as f64;
        // Paper: 110 X average latency improvement for Albireo-C.
        assert!((50.0..250.0).contains(&mean), "mean = {mean}");
        // Every electronic accelerator is slower than Albireo-C.
        assert!(lat_c.iter().all(|&r| r > 1.0));
    }

    #[test]
    fn table4_mentions_all_accelerators() {
        let t = table4_electronic_comparison();
        for name in [
            "Eyeriss",
            "ENVISION",
            "UNPU",
            "Albireo-C",
            "Albireo-M",
            "Albireo-A",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn wdm_efficiency_favors_albireo() {
        let (_, a27, pixel, deap) = photonic_comparison_data();
        assert_eq!(
            a27[0].wavelengths,
            ChipConfig::albireo_27().wavelengths_per_plcg()
        );
        for i in 0..a27.len() {
            let albireo = a27[i].energy_per_wavelength();
            assert!(pixel[i].energy_per_wavelength() > albireo);
            assert!(deap[i].energy_per_wavelength() > albireo);
        }
    }

    #[test]
    fn all_experiments_is_complete() {
        let all = all_experiments();
        for title in [
            "TABLE I",
            "TABLE II",
            "FIGURE 3",
            "FIGURE 4a",
            "FIGURE 4b",
            "FIGURE 4c",
            "TABLE III",
            "FIGURE 8",
            "FIGURE 9",
            "TABLE IV",
            "WDM EFFICIENCY",
            "SUMMARY",
        ] {
            assert!(all.contains(title), "missing {title}");
        }
    }
}

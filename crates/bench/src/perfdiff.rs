//! The perf-regression gate behind `albireo perf-diff`.
//!
//! Compares two performance JSON files — `BENCH_*.json` reports or
//! `albireo.profile/v1` phase trees — metric by metric, and flags
//! regressions beyond a relative threshold. Both files are flattened
//! with [`albireo_obs::jsonv::Value::flatten_numbers`], which keys array
//! rows by their `name`/`path`/`label`/`fleet` member, so rows still
//! match when the two files order their entries differently.
//!
//! Only metrics with a known *direction* participate in the gate:
//! wall-clock and latency leaves regress upward, throughput leaves
//! regress downward. Everything else (counts, digests, energy models,
//! configuration echoes) is direction-neutral and ignored — the gate
//! judges measured performance, not simulated physics.

use albireo_obs::jsonv;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Leaf names (the last `.`-separated path segment) where larger is
/// slower: wall-clock phases, latency quantiles, per-call extremes.
const LOWER_IS_BETTER: &[&str] = &[
    "wall_ms",
    "serial_wall_ms",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "p999_ms",
    "mean_latency_ms",
    "mean_wait_ms",
    "total_ns",
    "self_ns",
    "max_ns",
];

/// Leaf names where larger is faster: throughput and speedup figures.
const HIGHER_IS_BETTER: &[&str] = &[
    "speedup",
    "candidates_per_s",
    "requests_per_s",
    "goodput_rps",
];

/// One metric present in both files, with the gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Flattened metric path, e.g. `phases.sim.engine.total_ns`.
    pub metric: String,
    /// Value in the old (baseline) file.
    pub old: f64,
    /// Value in the new (candidate) file.
    pub new: f64,
    /// `new / old` (∞ when old is 0 and new is not).
    pub ratio: f64,
    /// Whether the change crosses the threshold in the slow direction.
    pub regression: bool,
}

/// The comparison of two performance files.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiff {
    /// Every directional metric present in both files, path order.
    pub rows: Vec<DiffRow>,
    /// The relative threshold, percent.
    pub threshold_pct: f64,
    /// Directional metrics only the old file has (renamed or removed).
    pub only_old: Vec<String>,
    /// Directional metrics only the new file has.
    pub only_new: Vec<String>,
}

/// Whether a flattened path names a directional metric, and if so which
/// way it regresses. `Some(true)` means lower is better.
fn direction(path: &str) -> Option<bool> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if LOWER_IS_BETTER.contains(&leaf) {
        Some(true)
    } else if HIGHER_IS_BETTER.contains(&leaf) {
        Some(false)
    } else {
        None
    }
}

fn directional(values: BTreeMap<String, f64>) -> BTreeMap<String, (f64, bool)> {
    values
        .into_iter()
        .filter_map(|(path, v)| direction(&path).map(|lower| (path, (v, lower))))
        .collect()
}

impl PerfDiff {
    /// Parses and compares two performance JSON texts. `threshold_pct`
    /// is the relative slack: a lower-is-better metric regresses when
    /// `new > old * (1 + pct/100)`, a higher-is-better one when
    /// `new < old * (1 - pct/100)`.
    pub fn compare(old: &str, new: &str, threshold_pct: f64) -> Result<PerfDiff, String> {
        if !(threshold_pct.is_finite() && threshold_pct >= 0.0) {
            return Err("threshold must be a non-negative percentage".into());
        }
        let old = jsonv::parse(old).map_err(|e| format!("old file: {e}"))?;
        let new = jsonv::parse(new).map_err(|e| format!("new file: {e}"))?;
        let old = directional(old.flatten_numbers());
        let mut new = directional(new.flatten_numbers());
        let slack = threshold_pct / 100.0;
        let mut rows = Vec::new();
        let mut only_old = Vec::new();
        for (path, (o, lower)) in old {
            let Some((n, _)) = new.remove(&path) else {
                only_old.push(path);
                continue;
            };
            let ratio = if o == 0.0 {
                if n == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                n / o
            };
            let regression = if lower {
                n > o * (1.0 + slack) + f64::EPSILON
            } else {
                n < o * (1.0 - slack) - f64::EPSILON
            };
            rows.push(DiffRow {
                metric: path,
                old: o,
                new: n,
                ratio,
                regression,
            });
        }
        Ok(PerfDiff {
            rows,
            threshold_pct,
            only_old,
            only_new: new.into_keys().collect(),
        })
    }

    /// The rows that crossed the threshold in the slow direction.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regression)
    }

    /// Human-readable verdict: every regression with its ratio, a
    /// summary count line, and any metrics present in only one file.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let regressed: Vec<&DiffRow> = self.regressions().collect();
        for r in &regressed {
            let _ = writeln!(
                s,
                "REGRESSION {}  {:.6} -> {:.6}  ({:+.1}%)",
                r.metric,
                r.old,
                r.new,
                (r.ratio - 1.0) * 100.0
            );
        }
        for path in &self.only_old {
            let _ = writeln!(s, "missing in new: {path}");
        }
        for path in &self.only_new {
            let _ = writeln!(s, "only in new: {path}");
        }
        let _ = writeln!(
            s,
            "{} metric(s) compared, {} regression(s) at threshold {}%",
            self.rows.len(),
            regressed.len(),
            self.threshold_pct
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
        "schema": "albireo.bench.parallel_sweep/v1",
        "rows": [
            {"name": "analog_conv", "wall_ms": 100.0, "speedup": 3.5, "digest": 12345},
            {"name": "gemm", "wall_ms": 50.0, "speedup": 2.0, "digest": 999}
        ],
        "combined_digest": 42
    }"#;

    fn with_wall(name_ms: &[(&str, f64, f64)]) -> String {
        let rows: Vec<String> = name_ms
            .iter()
            .map(|(n, w, s)| {
                format!("{{\"name\": \"{n}\", \"wall_ms\": {w}, \"speedup\": {s}, \"digest\": 1}}")
            })
            .collect();
        format!("{{\"rows\": [{}]}}", rows.join(", "))
    }

    #[test]
    fn identical_inputs_pass() {
        let d = PerfDiff::compare(OLD, OLD, 10.0).unwrap();
        assert_eq!(d.regressions().count(), 0);
        assert_eq!(d.rows.len(), 4, "two directional metrics per row");
        assert!(d.only_old.is_empty() && d.only_new.is_empty());
        assert!(d.render_text().contains("0 regression(s)"));
    }

    #[test]
    fn two_x_slowdown_regresses() {
        let new = with_wall(&[("analog_conv", 200.0, 3.5), ("gemm", 50.0, 2.0)]);
        let d = PerfDiff::compare(OLD, &new, 25.0).unwrap();
        let reg: Vec<&DiffRow> = d.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "rows.analog_conv.wall_ms");
        assert!((reg[0].ratio - 2.0).abs() < 1e-12);
        assert!(d
            .render_text()
            .contains("REGRESSION rows.analog_conv.wall_ms"));
    }

    #[test]
    fn speedup_drop_regresses_downward() {
        let new = with_wall(&[("analog_conv", 100.0, 1.0), ("gemm", 50.0, 2.0)]);
        let d = PerfDiff::compare(OLD, &new, 10.0).unwrap();
        let reg: Vec<&DiffRow> = d.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "rows.analog_conv.speedup");
    }

    #[test]
    fn threshold_gives_slack() {
        let new = with_wall(&[("analog_conv", 108.0, 3.5), ("gemm", 50.0, 2.0)]);
        assert_eq!(
            PerfDiff::compare(OLD, &new, 10.0)
                .unwrap()
                .regressions()
                .count(),
            0
        );
        assert_eq!(
            PerfDiff::compare(OLD, &new, 5.0)
                .unwrap()
                .regressions()
                .count(),
            1
        );
    }

    #[test]
    fn neutral_metrics_are_ignored() {
        // Digest changes are not performance regressions.
        let new = OLD
            .replace("12345", "54321")
            .replace("\"combined_digest\": 42", "\"combined_digest\": 43");
        assert_eq!(
            PerfDiff::compare(OLD, &new, 0.0)
                .unwrap()
                .regressions()
                .count(),
            0
        );
    }

    #[test]
    fn renamed_rows_are_reported_not_gated() {
        let new = with_wall(&[("analog_conv2", 100.0, 3.5), ("gemm", 50.0, 2.0)]);
        let d = PerfDiff::compare(OLD, &new, 10.0).unwrap();
        assert_eq!(d.regressions().count(), 0);
        assert_eq!(
            d.only_old,
            vec![
                "rows.analog_conv.speedup".to_string(),
                "rows.analog_conv.wall_ms".to_string(),
            ]
        );
        assert_eq!(d.only_new.len(), 2);
        assert!(d.render_text().contains("missing in new"));
    }

    #[test]
    fn profile_reports_compare_phase_by_phase() {
        let old = r#"{
            "schema": "albireo.profile/v1",
            "attributed_fraction": 0.97,
            "roots": [{"name": "evaluate", "total_ns": 1000000, "self_ns": 5000, "coverage": 0.99}],
            "phases": [
                {"path": "evaluate", "calls": 1, "total_ns": 1000000, "self_ns": 5000, "min_ns": 1000000, "max_ns": 1000000},
                {"path": "evaluate.tensor.im2col", "calls": 8, "total_ns": 400000, "self_ns": 400000, "min_ns": 10, "max_ns": 90000}
            ]
        }"#;
        let slow = old.replace("\"total_ns\": 400000", "\"total_ns\": 900000");
        let d = PerfDiff::compare(old, &slow, 25.0).unwrap();
        let reg: Vec<&DiffRow> = d.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "phases.evaluate.tensor.im2col.total_ns");
        assert_eq!(
            PerfDiff::compare(old, old, 0.0)
                .unwrap()
                .regressions()
                .count(),
            0
        );
    }

    #[test]
    fn bad_inputs_error() {
        assert!(PerfDiff::compare("not json", OLD, 10.0).is_err());
        assert!(PerfDiff::compare(OLD, "{", 10.0).is_err());
        assert!(PerfDiff::compare(OLD, OLD, -1.0).is_err());
        assert!(PerfDiff::compare(OLD, OLD, f64::NAN).is_err());
    }
}

//! The parallel sweep driver: fans the paper's full evaluation grid plus
//! the Fig. 3/4 device sweeps across threads and reports wall time and
//! speedup versus serial execution, machine-readably.
//!
//! Three workloads are timed, chosen to cover every parallel region of the
//! workspace:
//!
//! * `paper_grid` — the (chip × estimate × network) grid behind
//!   Tables II/IV, fanned per grid point through
//!   [`albireo_core::engine::EvalEngine`];
//! * `device_sweeps` — the Fig. 3 noise-precision and Fig. 4c
//!   crosstalk-precision sweeps, fanned per laser power / per `k²`;
//! * `analog_conv` — a stochastic analog convolution, fanned per output
//!   kernel inside [`albireo_core::analog::AnalogEngine`].
//!
//! Each workload is run once serially and once per requested thread count;
//! every run folds its numeric results into a digest so the report can
//! assert bit-identical output at every thread count (the determinism
//! contract of `albireo-parallel`). Timings are rep-averaged: the rep count
//! is calibrated against a target budget so that short workloads are not
//! measured at the granularity of a single thread-pool spawn.

use std::time::Instant;

use albireo_core::analog::{AnalogEngine, AnalogSimConfig};
use albireo_core::config::ChipConfig;
use albireo_core::engine::{paper_grid, EvalEngine};
use albireo_core::report::json;
use albireo_parallel::Parallelism;
use albireo_photonics::precision::{fig3_noise_sweep, fig4c_crosstalk_sweep, PrecisionModel};
use albireo_photonics::OpticalParams;
use albireo_tensor::conv::ConvSpec;
use albireo_tensor::{Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{FIG3_LASER_POWERS_W, FIG4_K2_VALUES};

/// What to sweep and how long to spend measuring it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Thread counts to benchmark (a serial baseline is always measured;
    /// `1` entries report the baseline itself).
    pub thread_counts: Vec<usize>,
    /// Per-(workload × thread count) measurement budget, ms. Rep counts
    /// are calibrated so each measurement spends roughly this long.
    pub target_ms: f64,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            thread_counts: default_thread_counts(),
            target_ms: 60.0,
        }
    }
}

/// `[1, 2, 4, …, cores]`: powers of two up to the host's core count, plus
/// the core count itself.
pub fn default_thread_counts() -> Vec<usize> {
    let cores = Parallelism::auto().resolved_threads();
    let mut counts = vec![1usize];
    let mut t = 2;
    while t < cores {
        counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        counts.push(cores);
    }
    counts
}

/// One workload measured at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadRun {
    /// Requested worker count.
    pub threads: usize,
    /// Rep-averaged wall time, ms.
    pub wall_ms: f64,
    /// Serial wall time over this run's wall time.
    pub speedup: f64,
    /// Whether the run's result digest matched the serial baseline's.
    pub deterministic: bool,
}

/// One workload's full measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Workload name.
    pub name: String,
    /// Independent work items the workload fans out.
    pub items: usize,
    /// Reps averaged per measurement.
    pub reps: u32,
    /// Serial baseline wall time, ms.
    pub serial_wall_ms: f64,
    /// Per-thread-count measurements.
    pub runs: Vec<ThreadRun>,
}

/// The full sweep report behind `BENCH_parallel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Host core count.
    pub available_parallelism: usize,
    /// Thread counts benchmarked.
    pub thread_counts: Vec<usize>,
    /// Per-workload measurements.
    pub experiments: Vec<ExperimentReport>,
}

impl SweepReport {
    /// Whether every run at every thread count reproduced the serial
    /// digest bit-for-bit.
    pub fn all_deterministic(&self) -> bool {
        self.experiments
            .iter()
            .all(|e| e.runs.iter().all(|r| r.deterministic))
    }

    /// Summed serial wall time across workloads, ms.
    pub fn total_serial_wall_ms(&self) -> f64 {
        self.experiments.iter().map(|e| e.serial_wall_ms).sum()
    }

    /// The best whole-sweep speedup achieved at any benchmarked thread
    /// count (total serial time over total parallel time).
    pub fn best_total_speedup(&self) -> f64 {
        self.thread_counts
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let wall: f64 = self.experiments.iter().map(|e| e.runs[i].wall_ms).sum();
                self.total_serial_wall_ms() / wall.max(f64::MIN_POSITIVE)
            })
            .fold(0.0, f64::max)
    }

    /// Serializes the report as JSON (hand-rolled; the build environment
    /// has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema\": \"albireo.bench.parallel/v1\",\n  \
               \"available_parallelism\": {},\n  \
               \"thread_counts\": {},\n",
            self.available_parallelism,
            json::usize_array(&self.thread_counts)
        ));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"items\": {}, \"reps\": {}, \
                 \"serial_wall_ms\": {},\n     \"runs\": [\n",
                e.name,
                e.items,
                e.reps,
                json::num(e.serial_wall_ms)
            ));
            for (j, r) in e.runs.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"threads\": {}, \"wall_ms\": {}, \"speedup\": {}, \
                     \"deterministic\": {}}}{}\n",
                    r.threads,
                    json::num(r.wall_ms),
                    json::num(r.speedup),
                    r.deterministic,
                    json::sep(j, e.runs.len())
                ));
            }
            out.push_str(&format!(
                "     ]}}{}\n",
                json::sep(i, self.experiments.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"total\": {{\"serial_wall_ms\": {}, \"best_speedup\": {}, \
             \"deterministic\": {}}}\n",
            json::num(self.total_serial_wall_ms()),
            json::num(self.best_total_speedup()),
            self.all_deterministic()
        ));
        out.push_str("}\n");
        out
    }
}

/// Folds one value into a result digest (order-sensitive, so it also
/// catches results landing in the wrong slots).
fn fold(digest: u64, v: f64) -> u64 {
    digest.rotate_left(7) ^ v.to_bits()
}

/// One benchmarkable workload: a name, its fan-out width, and a runner
/// returning a digest of every numeric result it produced.
struct Workload {
    name: &'static str,
    items: usize,
    run: Box<dyn Fn(Parallelism) -> u64 + Sync>,
}

/// Grid replicas per timed run: one (chip × estimate × network) point is
/// microsecond-scale arithmetic, far below the cost of spawning a thread
/// pool, so the four benchmark networks are replicated to give the pool a
/// fan-out wide enough to measure scaling rather than spawn overhead.
const GRID_BATCH: usize = 64;

/// The (chip × estimate × network) evaluation grid (Tables II/IV),
/// replicated [`GRID_BATCH`]× per timed run.
fn grid_workload() -> Workload {
    let (chips, estimates, mut models) = paper_grid();
    let base = models.clone();
    for _ in 1..GRID_BATCH {
        models.extend(base.iter().cloned());
    }
    let items = chips.len() * estimates.len() * models.len();
    Workload {
        name: "paper_grid",
        items,
        run: Box::new(move |par| {
            let grid = EvalEngine::new(par).evaluate_grid(&chips, &estimates, &models);
            let mut d = 0u64;
            for g in &grid {
                d = fold(d, g.evaluation.latency_s);
                d = fold(d, g.evaluation.energy_j);
                d = fold(d, g.evaluation.edp_mj_ms());
                for l in &g.evaluation.per_layer {
                    d = fold(d, l.cycles as f64);
                }
            }
            d
        }),
    }
}

/// The Fig. 3 (noise) and Fig. 4c (crosstalk) precision sweeps, one work
/// item per laser power / per ring coupling.
fn device_sweep_workload() -> Workload {
    let items = FIG3_LASER_POWERS_W.len() + FIG4_K2_VALUES.len();
    Workload {
        name: "device_sweeps",
        items,
        run: Box::new(move |par| {
            let digests = par.map_indexed(items, |i| {
                let model = PrecisionModel::paper();
                let mut d = 0u64;
                if i < FIG3_LASER_POWERS_W.len() {
                    let sweep = &fig3_noise_sweep(&model, &[FIG3_LASER_POWERS_W[i]], 64)[0];
                    for (_, bits) in &sweep.series {
                        d = fold(d, *bits);
                    }
                } else {
                    let params = OpticalParams::paper();
                    let k2 = FIG4_K2_VALUES[i - FIG3_LASER_POWERS_W.len()];
                    let sweep = &fig4c_crosstalk_sweep(&model, &params, &[k2], 64)[0];
                    for (_, bits) in &sweep.series {
                        d = fold(d, *bits);
                    }
                }
                d
            });
            digests
                .into_iter()
                .fold(0u64, |acc, d| acc.rotate_left(13) ^ d)
        }),
    }
}

/// A stochastic analog convolution (noise + crosstalk on), fanned per
/// output kernel inside the analog engine.
fn analog_conv_workload() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let input = Tensor3::random_uniform(6, 20, 20, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(16, 6, 3, 3, 0.3, &mut rng);
    let chip = ChipConfig::albireo_9();
    Workload {
        name: "analog_conv",
        items: 16,
        run: Box::new(move |par| {
            let mut engine = {
                let _setup = albireo_obs::profile::scope("bench.setup");
                AnalogEngine::new(&chip, AnalogSimConfig::default()).with_parallelism(par)
            };
            let out = engine.conv2d(&input, &kernels, &ConvSpec::unit());
            out.as_slice().iter().fold(0u64, |d, &v| fold(d, v))
        }),
    }
}

/// Times `reps` runs of `workload` under `par`, returning the averaged
/// wall time in ms and the (rep-invariant) result digest. Each rep runs
/// under a root profiler scope named after the workload, so `--profile`
/// attributes the sweep's wall time per workload phase tree.
fn measure(workload: &Workload, par: Parallelism, reps: u32) -> (f64, u64) {
    let mut digest = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let _root = albireo_obs::profile::scope(workload.name);
        digest = (workload.run)(par);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    (wall_ms, digest)
}

/// Picks a rep count so `reps × once_ms ≈ target_ms`, clamped to keep
/// both fast machines honest and slow workloads bounded.
fn calibrate_reps(once_ms: f64, target_ms: f64) -> u32 {
    ((target_ms / once_ms.max(1e-6)).ceil() as u32).clamp(2, 2_000)
}

/// Runs the full parallel sweep: every workload at serial and at each
/// requested thread count.
pub fn run_parallel_sweep(options: &SweepOptions) -> SweepReport {
    let workloads = [
        grid_workload(),
        device_sweep_workload(),
        analog_conv_workload(),
    ];
    let experiments = workloads
        .iter()
        .map(|w| {
            let (once_ms, _) = measure(w, Parallelism::serial(), 1);
            let reps = calibrate_reps(once_ms, options.target_ms);
            let (serial_wall_ms, serial_digest) = measure(w, Parallelism::serial(), reps);
            let runs = options
                .thread_counts
                .iter()
                .map(|&threads| {
                    let (wall_ms, digest) = measure(w, Parallelism::with_threads(threads), reps);
                    ThreadRun {
                        threads,
                        wall_ms,
                        speedup: serial_wall_ms / wall_ms.max(f64::MIN_POSITIVE),
                        deterministic: digest == serial_digest,
                    }
                })
                .collect();
            ExperimentReport {
                name: w.name.to_string(),
                items: w.items,
                reps,
                serial_wall_ms,
                runs,
            }
        })
        .collect();
    SweepReport {
        available_parallelism: Parallelism::auto().resolved_threads(),
        thread_counts: options.thread_counts.clone(),
        experiments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            thread_counts: vec![1, 2, 8],
            target_ms: 2.0,
        }
    }

    #[test]
    fn sweep_is_deterministic_at_every_thread_count() {
        let report = run_parallel_sweep(&quick_options());
        assert_eq!(report.experiments.len(), 3);
        for e in &report.experiments {
            assert_eq!(e.runs.len(), 3, "{}", e.name);
            for r in &e.runs {
                assert!(
                    r.deterministic,
                    "{} diverged from serial at {} threads",
                    e.name, r.threads
                );
                assert!(r.wall_ms > 0.0 && r.speedup > 0.0);
            }
        }
        assert!(report.all_deterministic());
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = run_parallel_sweep(&SweepOptions {
            thread_counts: vec![1, 2],
            target_ms: 1.0,
        });
        let json = report.to_json();
        for key in [
            "\"schema\"",
            "\"albireo.bench.parallel/v1\"",
            "\"thread_counts\"",
            "\"experiments\"",
            "\"paper_grid\"",
            "\"device_sweeps\"",
            "\"analog_conv\"",
            "\"wall_ms\"",
            "\"speedup\"",
            "\"deterministic\"",
            "\"total\"",
            "\"best_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("null"));
    }

    #[test]
    fn default_thread_counts_start_at_one() {
        let counts = default_thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.iter().all(|&t| t >= 1));
        let cores = Parallelism::auto().resolved_threads();
        assert_eq!(*counts.last().unwrap(), cores.max(1));
    }
}

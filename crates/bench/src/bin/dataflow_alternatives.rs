//! Regenerates the dataflow alternatives experiment.
fn main() {
    print!("{}", albireo_bench::dataflow_alternatives());
}

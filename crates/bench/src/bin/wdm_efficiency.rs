//! Regenerates the paper's wdm efficiency experiment.
fn main() {
    print!("{}", albireo_bench::wdm_efficiency());
}

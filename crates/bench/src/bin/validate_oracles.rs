//! Validates the reproduction against every number the paper reports,
//! printing a PASS/FAIL checklist (the non-panicking twin of
//! `tests/paper_oracles.rs`). Exits nonzero if any oracle fails, so CI
//! can gate on it.
//!
//! `--tol-scale X` multiplies every relative tolerance by `X`: values
//! above 1 loosen the checklist, values near 0 force failures (used by
//! the exit-code integration test to exercise the failing path against
//! the real oracle set).

use albireo_baselines::{reported_accelerators, Accelerator, DeapCnn, Pixel};
use albireo_core::area::AreaBreakdown;
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::inventory::DeviceInventory;
use albireo_core::power::PowerBreakdown;
use albireo_nn::zoo;
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::OpticalParams;

struct Checklist {
    passed: usize,
    failed: usize,
    tol_scale: f64,
    /// Per-oracle relative errors land here as gauges so tolerance drift
    /// is visible in CI logs long before a check actually flips to FAIL.
    metrics: albireo_obs::metrics::Registry,
}

/// Oracle names become metric names: lowercase, non-alphanumerics
/// collapsed to single underscores.
fn metric_slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

impl Checklist {
    fn new(tol_scale: f64) -> Checklist {
        Checklist {
            passed: 0,
            failed: 0,
            tol_scale,
            metrics: albireo_obs::metrics::Registry::new(),
        }
    }

    fn check(&mut self, name: &str, paper: &str, measured: String, ok: bool) {
        let status = if ok {
            self.passed += 1;
            "PASS"
        } else {
            self.failed += 1;
            "FAIL"
        };
        println!("[{status}] {name}: paper {paper}, measured {measured}");
    }

    fn within(&mut self, name: &str, paper_value: f64, measured: f64, rel_tol: f64, unit: &str) {
        let rel_tol = rel_tol * self.tol_scale;
        let rel_err = (measured - paper_value).abs() / paper_value.abs();
        self.metrics
            .gauge(&format!("oracle.{}.rel_error", metric_slug(name)))
            .set(rel_err);
        let ok = rel_err <= rel_tol;
        self.check(
            name,
            &format!("{paper_value} {unit}"),
            format!("{measured:.4} {unit} (tol {:.0}%)", rel_tol * 100.0),
            ok,
        );
    }
}

fn main() {
    let mut tol_scale = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tol-scale" => {
                tol_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --tol-scale needs a non-negative number");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: validate_oracles [--tol-scale X]");
                std::process::exit(2);
            }
        }
    }
    let mut list = Checklist::new(tol_scale);
    let chip = ChipConfig::albireo_9();
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let model = PrecisionModel::paper();

    // Device physics.
    list.within("Table II FSR", 16.1, ring.fsr() * 1e9, 0.03, "nm");
    list.within(
        "Fig. 3: bits @ 2 mW / 20 λ",
        10.0,
        model.noise_limited_bits(20, 2e-3),
        0.10,
        "bits",
    );
    list.within(
        "§II-C2: crosstalk bits @ k²=0.03 / 20 λ",
        6.0,
        model.crosstalk_limited_bits(&ring, 20),
        0.10,
        "bits",
    );
    let with_rail =
        PrecisionModel::with_negative_rail(model.crosstalk_limited_levels(&ring, 20)).log2();
    list.within(
        "§II-C2: bits with negative rail",
        7.0,
        with_rail,
        0.10,
        "bits",
    );

    // Inventory.
    let inv = DeviceInventory::for_chip(&chip);
    list.check(
        "§V: DAC count",
        "306",
        inv.dacs.to_string(),
        inv.dacs == 306,
    );
    list.check("§V: TIA count", "45", inv.tias.to_string(), inv.tias == 45);

    // Power.
    for (estimate, paper_w) in [
        (TechnologyEstimate::Conservative, 22.7),
        (TechnologyEstimate::Moderate, 6.19),
        (TechnologyEstimate::Aggressive, 1.64),
    ] {
        let total = PowerBreakdown::for_chip(&chip, estimate).total_w();
        list.within(
            &format!("Table III total, Albireo-{}", estimate.suffix()),
            paper_w,
            total,
            0.02,
            "W",
        );
    }
    let p27 = PowerBreakdown::for_chip(&ChipConfig::albireo_27(), TechnologyEstimate::Conservative)
        .total_w();
    list.within("§IV-B: Albireo-27 power", 58.8, p27, 0.02, "W");

    // Area.
    let area = AreaBreakdown::for_chip(&chip);
    list.within("Fig. 9 total area", 124.6, area.total_mm2(), 0.01, "mm²");
    list.within(
        "Fig. 9 AWG share",
        0.72,
        area.awg_m2 / area.total_m2(),
        0.03,
        "",
    );
    list.within(
        "Fig. 9 star coupler share",
        0.17,
        area.star_coupler_m2 / area.total_m2(),
        0.03,
        "",
    );

    // Performance.
    let vgg_c = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
    list.within(
        "Table IV VGG16 latency (C)",
        2.55,
        vgg_c.latency_s * 1e3,
        0.35,
        "ms",
    );
    list.within(
        "Table IV VGG16 energy (C)",
        58.1,
        vgg_c.energy_j * 1e3,
        0.35,
        "mJ",
    );
    let alex_c =
        NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::alexnet());
    list.within(
        "Table IV AlexNet latency (C)",
        0.13,
        alex_c.latency_s * 1e3,
        1.0,
        "ms",
    );

    // Comparisons: orderings.
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    let a27 = ChipConfig::albireo_27();
    let mut ordering_ok = true;
    for network in zoo::all_benchmarks() {
        let p = pixel.cost(&network);
        let d = deap.cost(&network);
        let a = NetworkEvaluation::evaluate(&a27, TechnologyEstimate::Conservative, &network);
        ordering_ok &= p.latency_s > d.latency_s && d.latency_s > a.latency_s;
    }
    list.check(
        "Fig. 8 ordering (PIXEL > DEAP-CNN > Albireo-27)",
        "holds",
        if ordering_ok { "holds" } else { "violated" }.into(),
        ordering_ok,
    );

    let mut beats_all = true;
    for network in [zoo::alexnet(), zoo::vgg16()] {
        let c = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &network);
        for acc in reported_accelerators() {
            beats_all &= c.latency_s < acc.results[network.name()].latency_s;
        }
    }
    list.check(
        "Table IV: Albireo-C beats every electronic latency",
        "yes",
        if beats_all { "yes" } else { "no" }.into(),
        beats_all,
    );

    list.metrics
        .counter("oracle.checks.passed")
        .add(list.passed as u64);
    list.metrics
        .counter("oracle.checks.failed")
        .add(list.failed as u64);
    println!("\nmetrics snapshot ({}):", albireo_obs::SCHEMA);
    println!("{}", list.metrics.snapshot().to_json());
    println!("\n{} passed, {} failed", list.passed, list.failed);
    if list.failed > 0 {
        std::process::exit(1);
    }
}

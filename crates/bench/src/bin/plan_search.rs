//! Runs the capacity-planner studies and writes their two artifacts:
//!
//! * `results/golden_plan_frontier.csv` — the ranked feasible frontier
//!   of the golden planning scenario
//!   ([`albireo_plan::GOLDEN_PLAN_SPEC`]: bursty mixed AlexNet +
//!   MobileNet traffic, static vs elastic Albireo-9 fleets under
//!   `p99<5ms`), compared byte-exactly by `tests/plan_golden.rs`;
//! * `BENCH_plan.json` — planner throughput over a ~200-candidate
//!   search (three chip kinds × fleets up to four chips × three
//!   batching policies × static/elastic provisioning), with
//!   candidates/sec for the pruned and exhaustive passes (schema
//!   `albireo.bench.plan/v1`). Two variants of the search run: the
//!   `wide` one keeps scoring runs short (400 requests), where the
//!   coarse screen exceeds `requests/4` and the planner auto-disables
//!   it — both passes are exhaustive and the speedup sits at ~1.0x by
//!   construction; the `deep` one scores 3200 requests per candidate at
//!   an offered rate that overloads most fleets, where screening pays
//!   and the speedup is real (~2x). Both are recorded so the regression
//!   is visible either way.
//!
//! ```text
//! cargo run --release -p albireo-bench --bin plan_search -- \
//!     [--out-dir results] [--json PATH] [--threads N]
//! ```
//!
//! Both searches are bit-deterministic at any `--threads` value; the
//! digests printed at the end are the values to compare across runs.

use albireo_obs::Obs;
use albireo_parallel::Parallelism;
use albireo_plan::{plan, PlanReport, PlanSpec, GOLDEN_PLAN_SPEC};

/// The throughput scenario: a search wide enough (~200 candidates) that
/// candidates/sec is a stable figure, but with runs short enough that
/// the whole sweep stays in benchmark territory. At 400 requests the
/// 150-request screen fails the `screen * 4 <= requests` worthwhileness
/// test, so the planner auto-disables screening and both timed passes
/// below are exhaustive — that degenerate case is recorded on purpose.
const WIDE_PLAN_SPEC: &str = "rate=12000;requests=400;screen=150;slo=p99<5ms;queue-cap=32;\
     chips=albireo_9:C|albireo_27:C|albireo_9:A;max-chips=4;\
     policies=immediate|size:4|deadline_s:0.0002:8;autoscale=static|elastic:8:0.001:1";

/// A variant tuned so screening genuinely pays: scoring runs are 8× the
/// screen, and the policy/autoscale axes are pinned to immediate/static
/// (batching and elastic scaling would rescue overloaded fleets out of
/// the prune rules). Every chip kind sustains ~15.5k rps, so at
/// 50000 rps all but the 4-chip fleets are under-provisioned and trip
/// the shed-rate prune rule inside the screen window (30 of 34
/// candidates pruned, ~2x measured speedup). No candidate meets the
/// zero-shed SLO at this rate — the deep variant measures search
/// throughput, not a deployable frontier (the golden variant covers
/// that).
const DEEP_PLAN_SPEC: &str = "rate=50000;requests=3200;screen=400;slo=p99<5ms;\
     chips=albireo_9:C|albireo_27:C|albireo_9:A;max-chips=4;\
     policies=immediate;autoscale=static";

struct TimedPlan {
    report: PlanReport,
    wall_ms: f64,
}

fn timed_plan(spec: &PlanSpec, par: Parallelism, exhaustive: bool) -> TimedPlan {
    let t0 = std::time::Instant::now();
    let report = plan(spec, par, &Obs::disabled(), exhaustive).expect("plan runs");
    TimedPlan {
        report,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn candidates_per_s(t: &TimedPlan) -> f64 {
    t.report.candidates_total as f64 / (t.wall_ms / 1e3)
}

/// Runs one throughput variant both ways, asserts the plans agree, and
/// returns `(pruned, exhaustive)`.
fn run_variant(spec_line: &str, par: Parallelism, label: &str) -> (TimedPlan, TimedPlan) {
    let spec = PlanSpec::parse(spec_line).expect("variant spec parses");
    let pruned = timed_plan(&spec, par, false);
    let exhaustive = timed_plan(&spec, par, true);
    assert_eq!(
        pruned.report.to_json(),
        exhaustive.report.to_json(),
        "{label}: pruned and exhaustive searches must emit the same plan"
    );
    (pruned, exhaustive)
}

/// The JSON object for one throughput variant. Field paths under
/// `pruned`/`exhaustive` are consumed by CI's plan-smoke job — keep
/// `pruned.candidates_per_s` and `exhaustive.candidates_per_s` stable.
fn variant_json(pruned: &TimedPlan, exhaustive: &TimedPlan) -> String {
    format!(
        "{{\"spec\": \"{}\", \"candidates\": {}, \"feasible\": {}, \
         \"screen_auto_disabled\": {}, \
         \"pruned\": {{\"pruned\": {}, \"scored\": {}, \"wall_ms\": {:.1}, \
         \"candidates_per_s\": {:.1}}}, \
         \"exhaustive\": {{\"scored\": {}, \"wall_ms\": {:.1}, \"candidates_per_s\": {:.1}}}, \
         \"speedup\": {:.3}, \"digest\": \"{}\"}}",
        pruned.report.spec_line,
        pruned.report.candidates_total,
        pruned.report.frontier.len(),
        pruned.report.screen_auto_disabled,
        pruned.report.pruned,
        pruned.report.scored,
        pruned.wall_ms,
        candidates_per_s(pruned),
        exhaustive.report.scored,
        exhaustive.wall_ms,
        candidates_per_s(exhaustive),
        exhaustive.wall_ms / pruned.wall_ms,
        pruned.report.digest_hex(),
    )
}

fn print_variant(label: &str, pruned: &TimedPlan, exhaustive: &TimedPlan) {
    println!(
        "{label} search: {} candidates — pruned {:.1} ms ({:.1} cand/s, {} pruned / {} scored{}), \
         exhaustive {:.1} ms ({:.1} cand/s), speedup {:.2}x, digest {}",
        pruned.report.candidates_total,
        pruned.wall_ms,
        candidates_per_s(pruned),
        pruned.report.pruned,
        pruned.report.scored,
        if pruned.report.screen_auto_disabled {
            ", screening auto-disabled"
        } else {
            ""
        },
        exhaustive.wall_ms,
        candidates_per_s(exhaustive),
        exhaustive.wall_ms / pruned.wall_ms,
        pruned.report.digest_hex()
    );
}

fn main() {
    let mut out_dir = "results".to_string();
    let mut json_path = "BENCH_plan.json".to_string();
    let mut par = Parallelism::auto();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out-dir" => out_dir = value("--out-dir"),
            "--json" => json_path = value("--json"),
            "--threads" => {
                let threads: usize = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --threads value");
                    std::process::exit(2);
                });
                par = Parallelism::with_threads(threads);
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: plan_search [--out-dir DIR] [--json PATH] [--threads N]");
                std::process::exit(2);
            }
        }
    }

    // The golden scenario: the pinned frontier artifact.
    let golden_spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).expect("golden spec parses");
    let golden = timed_plan(&golden_spec, par, false);

    // The wide search (screen auto-disabled — both passes exhaustive)
    // and the deep search (screening pays), each pruned vs exhaustive.
    let (wide_pruned, wide_exhaustive) = run_variant(WIDE_PLAN_SPEC, par, "wide");
    let (deep_pruned, deep_exhaustive) = run_variant(DEEP_PLAN_SPEC, par, "deep");
    assert!(
        wide_pruned.report.screen_auto_disabled,
        "wide spec is built to trip the screening worthwhileness test"
    );
    assert!(
        !deep_pruned.report.screen_auto_disabled,
        "deep spec is built to keep screening enabled"
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let frontier_csv = format!("{out_dir}/golden_plan_frontier.csv");
    std::fs::write(&frontier_csv, golden.report.to_csv()).expect("write golden_plan_frontier.csv");

    let json = format!(
        "{{\n  \"schema\": \"albireo.bench.plan/v1\",\n  \"golden\": {{\"spec\": \"{}\", \
         \"candidates\": {}, \"feasible\": {}, \"wall_ms\": {:.1}, \"digest\": \"{}\"}},\n  \
         \"wide\": {},\n  \"deep\": {}\n}}\n",
        golden.report.spec_line,
        golden.report.candidates_total,
        golden.report.frontier.len(),
        golden.wall_ms,
        golden.report.digest_hex(),
        variant_json(&wide_pruned, &wide_exhaustive),
        variant_json(&deep_pruned, &deep_exhaustive),
    );
    std::fs::write(&json_path, &json).expect("write BENCH_plan.json");

    println!(
        "golden plan: {} candidates, {} feasible, {:.1} ms, digest {}",
        golden.report.candidates_total,
        golden.report.frontier.len(),
        golden.wall_ms,
        golden.report.digest_hex()
    );
    if let Some(w) = golden.report.winner() {
        println!(
            "  winner: {} ({} chip(s), {}, {}) — {:.3} mJ/req, p99 {:.4} ms",
            w.fleet_label,
            w.chips,
            w.policy_label,
            w.autoscale_label,
            w.energy_per_request_mj(),
            w.p99_ms
        );
    }
    print_variant("wide", &wide_pruned, &wide_exhaustive);
    print_variant("deep", &deep_pruned, &deep_exhaustive);
    println!("wrote {frontier_csv}, {json_path}");
}

//! Runs the capacity-planner studies and writes their two artifacts:
//!
//! * `results/golden_plan_frontier.csv` — the ranked feasible frontier
//!   of the golden planning scenario
//!   ([`albireo_plan::GOLDEN_PLAN_SPEC`]: bursty mixed AlexNet +
//!   MobileNet traffic, static vs elastic Albireo-9 fleets under
//!   `p99<5ms`), compared byte-exactly by `tests/plan_golden.rs`;
//! * `BENCH_plan.json` — planner throughput over a ~200-candidate
//!   search (three chip kinds × fleets up to four chips × three
//!   batching policies × static/elastic provisioning), with
//!   candidates/sec for the pruned and exhaustive passes (schema
//!   `albireo.bench.plan/v1`).
//!
//! ```text
//! cargo run --release -p albireo-bench --bin plan_search -- \
//!     [--out-dir results] [--json PATH] [--threads N]
//! ```
//!
//! Both searches are bit-deterministic at any `--threads` value; the
//! digests printed at the end are the values to compare across runs.

use albireo_obs::Obs;
use albireo_parallel::Parallelism;
use albireo_plan::{plan, PlanReport, PlanSpec, GOLDEN_PLAN_SPEC};

/// The throughput scenario: a search wide enough (~200 candidates) that
/// candidates/sec is a stable figure, but with runs short enough that
/// the whole sweep stays in benchmark territory.
const WIDE_PLAN_SPEC: &str = "rate=12000;requests=400;screen=150;slo=p99<5ms;queue-cap=32;\
     chips=albireo_9:C|albireo_27:C|albireo_9:A;max-chips=4;\
     policies=immediate|size:4|deadline_s:0.0002:8;autoscale=static|elastic:8:0.001:1";

struct TimedPlan {
    report: PlanReport,
    wall_ms: f64,
}

fn timed_plan(spec: &PlanSpec, par: Parallelism, exhaustive: bool) -> TimedPlan {
    let t0 = std::time::Instant::now();
    let report = plan(spec, par, &Obs::disabled(), exhaustive).expect("plan runs");
    TimedPlan {
        report,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn candidates_per_s(t: &TimedPlan) -> f64 {
    t.report.candidates_total as f64 / (t.wall_ms / 1e3)
}

fn main() {
    let mut out_dir = "results".to_string();
    let mut json_path = "BENCH_plan.json".to_string();
    let mut par = Parallelism::auto();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out-dir" => out_dir = value("--out-dir"),
            "--json" => json_path = value("--json"),
            "--threads" => {
                let threads: usize = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --threads value");
                    std::process::exit(2);
                });
                par = Parallelism::with_threads(threads);
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: plan_search [--out-dir DIR] [--json PATH] [--threads N]");
                std::process::exit(2);
            }
        }
    }

    // The golden scenario: the pinned frontier artifact.
    let golden_spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).expect("golden spec parses");
    let golden = timed_plan(&golden_spec, par, false);

    // The wide search: planner throughput, pruned vs exhaustive.
    let wide_spec = PlanSpec::parse(WIDE_PLAN_SPEC).expect("wide spec parses");
    let pruned = timed_plan(&wide_spec, par, false);
    let exhaustive = timed_plan(&wide_spec, par, true);
    assert_eq!(
        pruned.report.to_json(),
        exhaustive.report.to_json(),
        "pruned and exhaustive searches must emit the same plan"
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let frontier_csv = format!("{out_dir}/golden_plan_frontier.csv");
    std::fs::write(&frontier_csv, golden.report.to_csv()).expect("write golden_plan_frontier.csv");

    let json = format!(
        "{{\n  \"schema\": \"albireo.bench.plan/v1\",\n  \"golden\": {{\"spec\": \"{}\", \
         \"candidates\": {}, \"feasible\": {}, \"wall_ms\": {:.1}, \"digest\": \"{}\"}},\n  \
         \"wide\": {{\"spec\": \"{}\", \"candidates\": {}, \"feasible\": {}, \
         \"pruned\": {{\"pruned\": {}, \"scored\": {}, \"wall_ms\": {:.1}, \
         \"candidates_per_s\": {:.1}}}, \
         \"exhaustive\": {{\"scored\": {}, \"wall_ms\": {:.1}, \"candidates_per_s\": {:.1}}}, \
         \"speedup\": {:.3}, \"digest\": \"{}\"}}\n}}\n",
        golden.report.spec_line,
        golden.report.candidates_total,
        golden.report.frontier.len(),
        golden.wall_ms,
        golden.report.digest_hex(),
        pruned.report.spec_line,
        pruned.report.candidates_total,
        pruned.report.frontier.len(),
        pruned.report.pruned,
        pruned.report.scored,
        pruned.wall_ms,
        candidates_per_s(&pruned),
        exhaustive.report.scored,
        exhaustive.wall_ms,
        candidates_per_s(&exhaustive),
        exhaustive.wall_ms / pruned.wall_ms,
        pruned.report.digest_hex(),
    );
    std::fs::write(&json_path, &json).expect("write BENCH_plan.json");

    println!(
        "golden plan: {} candidates, {} feasible, {:.1} ms, digest {}",
        golden.report.candidates_total,
        golden.report.frontier.len(),
        golden.wall_ms,
        golden.report.digest_hex()
    );
    if let Some(w) = golden.report.winner() {
        println!(
            "  winner: {} ({} chip(s), {}, {}) — {:.3} mJ/req, p99 {:.4} ms",
            w.fleet_label,
            w.chips,
            w.policy_label,
            w.autoscale_label,
            w.energy_per_request_mj(),
            w.p99_ms
        );
    }
    println!(
        "wide search: {} candidates — pruned {:.1} ms ({:.1} cand/s, {} pruned / {} scored), \
         exhaustive {:.1} ms ({:.1} cand/s), speedup {:.2}x, digest {}",
        pruned.report.candidates_total,
        pruned.wall_ms,
        candidates_per_s(&pruned),
        pruned.report.pruned,
        pruned.report.scored,
        exhaustive.wall_ms,
        candidates_per_s(&exhaustive),
        exhaustive.wall_ms / pruned.wall_ms,
        pruned.report.digest_hex()
    );
    println!("wrote {frontier_csv}, {json_path}");
}

//! Regenerates the power delivery study experiment.
fn main() {
    print!("{}", albireo_bench::power_delivery_study());
}

//! Regenerates the paper's table4 electronic comparison experiment.
fn main() {
    print!("{}", albireo_bench::table4_electronic_comparison());
}

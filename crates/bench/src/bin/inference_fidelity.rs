//! Regenerates the inference fidelity experiment.
fn main() {
    print!("{}", albireo_bench::inference_fidelity());
}

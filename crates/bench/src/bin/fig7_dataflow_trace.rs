//! Regenerates the fig7 dataflow trace experiment.
fn main() {
    print!("{}", albireo_bench::fig7_dataflow_trace());
}

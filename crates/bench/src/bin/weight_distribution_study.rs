//! Regenerates the weight distribution study experiment.
fn main() {
    print!("{}", albireo_bench::weight_distribution_study());
}

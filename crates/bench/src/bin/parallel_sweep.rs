//! Runs the parallel sweep driver and writes `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p albireo-bench --bin parallel_sweep -- \
//!     [--out PATH] [--threads A,B,C] [--target-ms N]
//! ```

use albireo_bench::sweep::{run_parallel_sweep, SweepOptions};

fn main() {
    let mut options = SweepOptions::default();
    let mut out_path = "BENCH_parallel.json".to_string();
    let mut profile_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--profile" => profile_path = Some(value("--profile")),
            "--threads" => {
                options.thread_counts = value("--threads")
                    .split(',')
                    .map(|piece| {
                        piece.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: bad thread count `{piece}`");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--target-ms" => {
                options.target_ms = value("--target-ms").parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --target-ms value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("error: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    if profile_path.is_some() {
        albireo_obs::profile::reset();
        albireo_obs::profile::set_enabled(true);
    }
    let report = run_parallel_sweep(&options);
    if let Some(path) = &profile_path {
        albireo_obs::profile::set_enabled(false);
        let profile = albireo_obs::profile::take_report();
        if let Err(e) = std::fs::write(path, profile.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "profile: {path} attributes {:.1}% of wall time to named phases",
            profile.attributed_fraction() * 100.0
        );
    }
    if report.available_parallelism <= 1 {
        eprintln!(
            "warning: this machine exposes a single core (available_parallelism = 1); \
             speedups will sit at ~1.0x and the sweep only demonstrates determinism, \
             not scaling — read BENCH_parallel.json's `available_parallelism` field \
             before comparing speedup numbers across machines"
        );
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out_path}: {} workloads, best whole-sweep speedup {:.2}x on {} cores, \
         deterministic: {}",
        report.experiments.len(),
        report.best_total_speedup(),
        report.available_parallelism,
        report.all_deterministic()
    );
}

//! Regenerates the paper's fig4a spectrum experiment.
fn main() {
    print!("{}", albireo_bench::fig4a_spectrum());
}

//! Regenerates the timing closure experiment.
fn main() {
    print!("{}", albireo_bench::timing_closure());
}

//! Regenerates the paper's table3 power breakdown experiment.
fn main() {
    print!("{}", albireo_bench::table3_power_breakdown());
}

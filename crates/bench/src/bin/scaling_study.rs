//! Regenerates the scaling study experiment.
fn main() {
    print!("{}", albireo_bench::scaling_study());
}

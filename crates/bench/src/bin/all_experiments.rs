//! Regenerates every table and figure of the paper's evaluation section.
fn main() {
    print!("{}", albireo_bench::all_experiments());
}

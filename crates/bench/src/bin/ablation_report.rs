//! Regenerates the ablation report experiment.
fn main() {
    print!("{}", albireo_bench::ablation_report());
}

//! Regenerates the paper's table1 device powers experiment.
fn main() {
    print!("{}", albireo_bench::table1_device_powers());
}

//! Regenerates the thermal sensitivity experiment.
fn main() {
    print!("{}", albireo_bench::thermal_sensitivity());
}

//! Runs the serving studies and writes their three artifacts:
//!
//! * `results/serving_study.csv` — one row per (cell × replica), covering
//!   the pinned golden grid ([`StudyOptions::golden`]) followed by the
//!   mixed photonic/electronic grid ([`StudyOptions::heterogeneous`]);
//! * `results/golden_serving_metrics.csv` — the golden grid alone,
//!   compared byte-exactly by `tests/serving_golden.rs`;
//! * `BENCH_serving.json` — the machine-readable study digest over both
//!   grids (schema `albireo.bench.serving_study/v1`).
//!
//! ```text
//! cargo run --release -p albireo-bench --bin serving_study -- \
//!     [--out-dir results] [--json PATH] [--threads N]
//! ```
//!
//! The study is bit-deterministic at any `--threads` value; the combined
//! digest printed at the end is the value to compare across runs.

use albireo_obs::Obs;
use albireo_parallel::Parallelism;
use albireo_runtime::{
    run_serving_study, simulate, simulate_observed, ArrivalProcess, FaultScenario, FaultSpec,
    ServeConfig, StudyOptions, Workload,
};

/// Wall-clock medians for one serving scenario run with observability
/// disabled (the default path — one relaxed atomic load per site) and
/// fully enabled (spans + metrics recorded).
struct ObsOverhead {
    reps: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    trace_events: usize,
}

impl ObsOverhead {
    fn ratio(&self) -> f64 {
        self.enabled_ms / self.disabled_ms
    }
}

/// Times the golden grid's heaviest cell (paper fleet, top offered rate,
/// deadline batching) with instrumentation off and on. Medians over odd
/// `reps` keep scheduler noise out of the row.
fn measure_obs_overhead(options: &StudyOptions) -> ObsOverhead {
    let fleet = &options.fleets[0];
    let cfg = ServeConfig {
        workload: Workload {
            process: ArrivalProcess::Poisson {
                rate_rps: options.rates_rps.iter().copied().fold(0.0, f64::max),
            },
            mix: options.mix.clone(),
            classes: Vec::new(),
        },
        requests: options.requests,
        seed: options.base_seed,
        policy: *options.policies.last().expect("golden grid has policies"),
        admission: options.admission,
        faults: FaultScenario::none(),
        record_cap: usize::MAX,
        autoscale: albireo_runtime::AutoscalePolicy::None,
        alert: albireo_runtime::AlertPolicy::standard(),
    };
    let reps = 9;
    let median = |mut xs: Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let time_ms = |f: &dyn Fn()| {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1e3
    };
    let disabled_ms = median(
        (0..reps)
            .map(|_| time_ms(&|| drop(simulate(fleet, &cfg))))
            .collect(),
    );
    let obs = Obs::enabled();
    let enabled_ms = median(
        (0..reps)
            .map(|_| time_ms(&|| drop(simulate_observed(fleet, &cfg, &obs))))
            .collect(),
    );
    let trace_events = obs.drain_events().len() / reps;
    ObsOverhead {
        reps,
        disabled_ms,
        enabled_ms,
        trace_events,
    }
}

/// One million-request run on the paper fleet, proving the streamed
/// engine's scale contract: bounded event-queue depth, O(1)-memory
/// percentiles, and a wall clock in seconds.
struct ServingScale {
    requests: usize,
    completed: u64,
    shed: u64,
    wall_ms: f64,
    sim_requests_per_s: f64,
    peak_event_queue: usize,
    sketch_buckets: usize,
    p50_ms: f64,
    p999_ms: f64,
    digest_hex: String,
}

fn measure_serving_scale(options: &StudyOptions) -> ServingScale {
    let fleet = &options.fleets[0];
    let mut cfg = ServeConfig::poisson(4000.0, 1_000_000, options.base_seed, 0);
    cfg.workload.mix = options.mix.clone();
    cfg.record_cap = 0;
    let t0 = std::time::Instant::now();
    let report = simulate(fleet, &cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ServingScale {
        requests: cfg.requests,
        completed: report.completed,
        shed: report.shed,
        wall_ms,
        sim_requests_per_s: cfg.requests as f64 / (wall_ms / 1e3),
        peak_event_queue: report.peak_event_queue,
        sketch_buckets: report.sketch_buckets,
        p50_ms: report.p50_ms,
        p999_ms: report.p999_ms,
        digest_hex: report.digest_hex(),
    }
}

/// The correlated-fault scenario the fault-scale row runs under: a rack
/// outage at t=30 s, a thermal epoch halving chip throughput over
/// t=60..90 s, and two repair crews with a 20 s mean time-to-repair.
/// Ranges are written generously and clipped to the fleet at compile
/// time, so the clause string is fleet-size independent.
const FAULT_SCALE_SPEC: &str = "rack:0-0@30,thermal:0-3@60-90:2,crews:2:20:11";

/// One million requests through the correlated-fault scenario above —
/// the availability row: what fraction of offered load completes when
/// chips fail and recover mid-run, and what the tail looks like while
/// the fleet is degraded. The offered rate is one the healthy fleet can
/// sustain (unlike the throughput-oriented scale row, which runs into
/// overload on purpose), so the availability loss here is attributable
/// to the fault scenario; the healthy run at the same rate is reported
/// alongside as the baseline. Memory stays bounded exactly as in the
/// healthy scale row (the event queue also carries the fault events,
/// whose count is fixed up front).
struct FaultScale {
    requests: usize,
    rate_rps: f64,
    fault_events: usize,
    completed: u64,
    shed: u64,
    availability: f64,
    healthy_availability: f64,
    wall_ms: f64,
    peak_event_queue: usize,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    healthy_p99_ms: f64,
    digest_hex: String,
}

fn measure_fault_scale(options: &StudyOptions) -> FaultScale {
    let fleet = &options.fleets[0];
    let rate_rps = 2000.0;
    let mut cfg = ServeConfig::poisson(rate_rps, 1_000_000, options.base_seed, 0);
    cfg.workload.mix = options.mix.clone();
    cfg.record_cap = 0;
    let healthy = simulate(fleet, &cfg);
    let spec = FaultSpec::parse(FAULT_SCALE_SPEC).expect("fault-scale spec parses");
    cfg.faults = spec.compile(fleet.chips.len());
    let fault_events = cfg.faults.events().len();
    let t0 = std::time::Instant::now();
    let report = simulate(fleet, &cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    FaultScale {
        requests: cfg.requests,
        rate_rps,
        fault_events,
        completed: report.completed,
        shed: report.shed,
        availability: report.completed as f64 / cfg.requests as f64,
        healthy_availability: healthy.completed as f64 / cfg.requests as f64,
        wall_ms,
        peak_event_queue: report.peak_event_queue,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        p999_ms: report.p999_ms,
        healthy_p99_ms: healthy.p99_ms,
        digest_hex: report.digest_hex(),
    }
}

fn main() {
    let mut out_dir = "results".to_string();
    let mut json_path = "BENCH_serving.json".to_string();
    let mut par = Parallelism::auto();
    let mut profile_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out-dir" => out_dir = value("--out-dir"),
            "--json" => json_path = value("--json"),
            "--profile" => profile_path = Some(value("--profile")),
            "--threads" => {
                let threads: usize = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --threads value");
                    std::process::exit(2);
                });
                par = Parallelism::with_threads(threads);
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: serving_study [--out-dir DIR] [--json PATH] [--threads N] \
                     [--profile PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if profile_path.is_some() {
        albireo_obs::profile::reset();
        albireo_obs::profile::set_enabled(true);
    }

    let golden_options = StudyOptions::golden();
    let golden = run_serving_study(&golden_options, par);
    let hetero_options = StudyOptions::heterogeneous();
    let hetero = run_serving_study(&hetero_options, par);

    // The combined report: golden rows first (so the pinned artifact is a
    // prefix of the full study), then the mixed-backend rows.
    let mut runs = golden.runs.clone();
    runs.extend(hetero.runs.iter().cloned());
    let study = albireo_runtime::ServingStudyReport {
        replicas: golden.replicas,
        runs,
    };

    // The before/after instrumentation row: disabled observability is the
    // default serve path, enabled adds span/metric recording on top.
    let overhead = measure_obs_overhead(&golden_options);

    // The scale row: one million requests through the streamed engine.
    let scale = measure_serving_scale(&golden_options);

    // The availability row: the same million requests under correlated
    // faults with repair crews.
    let fault_scale = measure_fault_scale(&golden_options);

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let study_csv = format!("{out_dir}/serving_study.csv");
    let golden_csv = format!("{out_dir}/golden_serving_metrics.csv");
    std::fs::write(&study_csv, study.to_csv()).expect("write serving_study.csv");
    std::fs::write(&golden_csv, golden.to_csv()).expect("write golden_serving_metrics.csv");
    let mut json = study.to_json();
    let at = json
        .rfind("  \"combined_digest\"")
        .expect("study JSON has a combined digest");
    json.insert_str(
        at,
        &format!(
            "  \"obs_overhead\": {{\"reps\": {}, \"disabled_ms\": {:.3}, \
             \"enabled_ms\": {:.3}, \"enabled_over_disabled\": {:.4}, \
             \"trace_events_per_run\": {}}},\n",
            overhead.reps,
            overhead.disabled_ms,
            overhead.enabled_ms,
            overhead.ratio(),
            overhead.trace_events
        ),
    );
    let at = json
        .rfind("  \"combined_digest\"")
        .expect("study JSON has a combined digest");
    json.insert_str(
        at,
        &format!(
            "  \"serving_scale\": {{\"requests\": {}, \"completed\": {}, \"shed\": {}, \
             \"wall_ms\": {:.1}, \"sim_requests_per_s\": {:.0}, \"peak_event_queue\": {}, \
             \"sketch_buckets\": {}, \"p50_ms\": {:.4}, \"p999_ms\": {:.4}, \
             \"digest\": \"{}\"}},\n",
            scale.requests,
            scale.completed,
            scale.shed,
            scale.wall_ms,
            scale.sim_requests_per_s,
            scale.peak_event_queue,
            scale.sketch_buckets,
            scale.p50_ms,
            scale.p999_ms,
            scale.digest_hex
        ),
    );
    let at = json
        .rfind("  \"combined_digest\"")
        .expect("study JSON has a combined digest");
    json.insert_str(
        at,
        &format!(
            "  \"fault_scale\": {{\"requests\": {}, \"rate_rps\": {}, \"faults\": \"{}\", \
             \"fault_events\": {}, \"completed\": {}, \"shed\": {}, \
             \"availability\": {:.6}, \"healthy_availability\": {:.6}, \
             \"wall_ms\": {:.1}, \"peak_event_queue\": {}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \
             \"healthy_p99_ms\": {:.4}, \"digest\": \"{}\"}},\n",
            fault_scale.requests,
            fault_scale.rate_rps,
            FAULT_SCALE_SPEC,
            fault_scale.fault_events,
            fault_scale.completed,
            fault_scale.shed,
            fault_scale.availability,
            fault_scale.healthy_availability,
            fault_scale.wall_ms,
            fault_scale.peak_event_queue,
            fault_scale.p50_ms,
            fault_scale.p99_ms,
            fault_scale.p999_ms,
            fault_scale.healthy_p99_ms,
            fault_scale.digest_hex
        ),
    );
    std::fs::write(&json_path, json).expect("write BENCH_serving.json");

    if let Some(path) = &profile_path {
        albireo_obs::profile::set_enabled(false);
        let profile = albireo_obs::profile::take_report();
        std::fs::write(path, profile.to_json()).expect("write profile report");
        eprintln!(
            "profile: {path} attributes {:.1}% of wall time to named phases",
            profile.attributed_fraction() * 100.0
        );
    }

    println!(
        "serving study: {} golden + {} heterogeneous runs = {} total",
        golden.runs.len(),
        hetero.runs.len(),
        study.runs.len()
    );
    for run in &study.runs {
        let r = &run.report;
        println!(
            "  {:<28} {:>6.0} rps {:<16} replica {}  p50 {:.4} ms  p99 {:.4} ms  shed {:.1}%  {:.3} mJ/req",
            r.fleet_label,
            r.offered_rate_rps,
            r.policy_label,
            run.replica,
            r.p50_ms,
            r.p99_ms,
            r.shed_rate * 100.0,
            r.energy_per_request_j * 1e3
        );
    }
    println!(
        "obs overhead: disabled {:.3} ms, enabled {:.3} ms ({:.2}x, {} trace events/run, median of {})",
        overhead.disabled_ms,
        overhead.enabled_ms,
        overhead.ratio(),
        overhead.trace_events,
        overhead.reps
    );
    println!(
        "serving scale: {} requests in {:.1} ms ({:.0} req/s sim), peak event queue {}, \
         sketch buckets {}, digest {}",
        scale.requests,
        scale.wall_ms,
        scale.sim_requests_per_s,
        scale.peak_event_queue,
        scale.sketch_buckets,
        scale.digest_hex
    );
    println!(
        "fault scale: {} requests at {} rps under `{}` ({} fault events) in {:.1} ms — \
         availability {:.4} (healthy {:.4}), shed {}, p99 {:.4} ms (healthy {:.4}), \
         peak event queue {}, digest {}",
        fault_scale.requests,
        fault_scale.rate_rps,
        FAULT_SCALE_SPEC,
        fault_scale.fault_events,
        fault_scale.wall_ms,
        fault_scale.availability,
        fault_scale.healthy_availability,
        fault_scale.shed,
        fault_scale.p99_ms,
        fault_scale.healthy_p99_ms,
        fault_scale.peak_event_queue,
        fault_scale.digest_hex
    );
    println!("wrote {study_csv}, {golden_csv}, {json_path}");
    println!("combined digest {}", study.combined_digest_hex());
}

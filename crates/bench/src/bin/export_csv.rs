//! Writes machine-readable CSV series for every figure to ./results.
fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new("results");
    let files = albireo_bench::export_csv(dir)?;
    println!("wrote {} files:", files.len());
    for f in files {
        println!("  {}", f.display());
    }
    Ok(())
}

//! Regenerates the paper's fig4b temporal experiment.
fn main() {
    print!("{}", albireo_bench::fig4b_temporal());
}

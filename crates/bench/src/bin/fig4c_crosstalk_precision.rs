//! Regenerates the paper's fig4c crosstalk precision experiment.
fn main() {
    print!("{}", albireo_bench::fig4c_crosstalk_precision());
}

//! Regenerates the paper's summary ratios experiment.
fn main() {
    print!("{}", albireo_bench::summary_ratios());
}

//! Regenerates the paper's fig8 photonic comparison experiment.
fn main() {
    print!("{}", albireo_bench::fig8_photonic_comparison());
}

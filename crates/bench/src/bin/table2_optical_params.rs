//! Regenerates the paper's table2 optical params experiment.
fn main() {
    print!("{}", albireo_bench::table2_optical_params());
}

//! Regenerates the paper's fig9 area breakdown experiment.
fn main() {
    print!("{}", albireo_bench::fig9_area_breakdown());
}

//! Regenerates the paper's fig3 noise precision experiment.
fn main() {
    print!("{}", albireo_bench::fig3_noise_precision());
}

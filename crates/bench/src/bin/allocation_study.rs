//! Regenerates the allocation study experiment.
fn main() {
    print!("{}", albireo_bench::allocation_study());
}

//! Criterion benches — one group per paper experiment, measuring the
//! simulator kernels that regenerate each table/figure.

use albireo_baselines::{Accelerator, DeapCnn, Pixel};
use albireo_core::analog::{AnalogEngine, AnalogSimConfig};
use albireo_core::area::AreaBreakdown;
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::energy::NetworkEvaluation;
use albireo_core::power::PowerBreakdown;
use albireo_core::sched::total_cycles;
use albireo_nn::zoo;
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::OpticalParams;
use albireo_tensor::conv::{conv2d, ConvSpec};
use albireo_tensor::{Tensor3, Tensor4};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Fig. 3 kernel: noise-limited precision integral.
fn bench_noise_precision(c: &mut Criterion) {
    let model = PrecisionModel::paper();
    c.bench_function("fig3/noise_limited_bits_20wl_2mW", |b| {
        b.iter(|| model.noise_limited_bits(black_box(20), black_box(2e-3)))
    });
}

/// Fig. 4 kernels: spectrum, temporal response, crosstalk precision.
fn bench_mrr_models(c: &mut Criterion) {
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let model = PrecisionModel::paper();
    c.bench_function("fig4a/drop_spectrum_1001pts", |b| {
        b.iter(|| ring.drop_spectrum(black_box(ring.fsr() / 4.0), 1001))
    });
    c.bench_function("fig4b/step_response", |b| {
        b.iter(|| ring.step_response(black_box(50e-12)))
    });
    c.bench_function("fig4c/crosstalk_limited_bits_64wl", |b| {
        b.iter(|| model.crosstalk_limited_bits(black_box(&ring), black_box(64)))
    });
}

/// Table III / Fig. 9 kernels: power and area derivation.
fn bench_power_area(c: &mut Criterion) {
    let chip = ChipConfig::albireo_9();
    c.bench_function("table3/power_breakdown", |b| {
        b.iter(|| PowerBreakdown::for_chip(black_box(&chip), TechnologyEstimate::Conservative))
    });
    c.bench_function("fig9/area_breakdown", |b| {
        b.iter(|| AreaBreakdown::for_chip(black_box(&chip)))
    });
}

/// Fig. 8 / Table IV kernels: full-network evaluation on Albireo and the
/// photonic baselines.
fn bench_network_evaluation(c: &mut Criterion) {
    let chip = ChipConfig::albireo_9();
    let vgg = zoo::vgg16();
    let mobilenet = zoo::mobilenet();
    c.bench_function("table4/evaluate_vgg16_albireo9", |b| {
        b.iter(|| {
            NetworkEvaluation::evaluate(
                black_box(&chip),
                TechnologyEstimate::Conservative,
                black_box(&vgg),
            )
        })
    });
    c.bench_function("fig8/schedule_mobilenet_cycles", |b| {
        b.iter(|| total_cycles(black_box(&chip), black_box(&mobilenet)))
    });
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    c.bench_function("fig8/pixel_vgg16", |b| {
        b.iter(|| pixel.cost(black_box(&vgg)))
    });
    c.bench_function("fig8/deap_vgg16", |b| b.iter(|| deap.cost(black_box(&vgg))));
}

/// Analog-simulation kernels: the functional photonic conv vs the digital
/// golden model.
fn bench_analog(c: &mut Criterion) {
    let chip = ChipConfig::albireo_9();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let input = Tensor3::random_uniform(6, 12, 12, 0.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(4, 6, 3, 3, 0.3, &mut rng);
    let spec = ConvSpec::unit();
    c.bench_function("analog/digital_reference_conv", |b| {
        b.iter(|| conv2d(black_box(&input), black_box(&kernels), &spec))
    });
    c.bench_function("analog/photonic_conv", |b| {
        b.iter(|| {
            let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::default());
            engine.conv2d(black_box(&input), black_box(&kernels), &spec)
        })
    });
}

/// Extension-study kernels: thermal drift, timing closure, power
/// delivery, dataflow tracing.
fn bench_extensions(c: &mut Criterion) {
    use albireo_core::power_delivery::PowerDelivery;
    use albireo_core::timing::analyze;
    use albireo_core::trace::trace_kernel;
    use albireo_photonics::thermal::ThermalModel;
    let chip = ChipConfig::albireo_9();
    let params = OpticalParams::paper();
    let ring = Microring::from_params(&params);
    let thermal = ThermalModel::silicon();
    let model = PrecisionModel::paper();
    c.bench_function("thermal/drifted_precision", |b| {
        b.iter(|| {
            model.crosstalk_limited_levels_with_drift(
                black_box(&ring),
                21,
                black_box(thermal.drift(1.0)),
            )
        })
    });
    c.bench_function("timing/analyze_5ghz", |b| {
        b.iter(|| {
            analyze(
                black_box(&chip),
                TechnologyEstimate::Conservative,
                black_box(0.03),
            )
        })
    });
    let delivery = PowerDelivery::new(&chip);
    c.bench_function("power_delivery/min_laser_bisection", |b| {
        b.iter(|| delivery.min_laser_power_for_noise_bits(black_box(8.0)))
    });
    c.bench_function("fig7/trace_56x56x64", |b| {
        b.iter(|| trace_kernel(black_box(&chip), 0, 56, 56, 64))
    });
}

criterion_group!(
    benches,
    bench_noise_precision,
    bench_mrr_models,
    bench_power_area,
    bench_network_evaluation,
    bench_analog,
    bench_extensions
);
criterion_main!(benches);

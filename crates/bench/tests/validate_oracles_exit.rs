//! Exit-code contract of the `validate_oracles` binary: zero when every
//! paper oracle passes, nonzero as soon as any oracle fails. CI gates on
//! this, so the contract gets its own process-level test.

use std::process::Command;

fn run(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_validate_oracles"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn healthy_checklist_exits_zero() {
    let (stdout, ok) = run(&[]);
    assert!(
        ok,
        "validate_oracles must exit 0 when all oracles pass:\n{stdout}"
    );
    assert!(stdout.contains("PASS"));
    assert!(stdout.contains(", 0 failed"), "{stdout}");
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
}

#[test]
fn forced_failures_exit_nonzero() {
    // Shrinking every tolerance to one millionth forces the relative
    // checks to fail against the real measured values — the genuine
    // failing path, not a mocked one.
    let (stdout, ok) = run(&["--tol-scale", "1e-6"]);
    assert!(
        !ok,
        "validate_oracles must exit nonzero when oracles fail:\n{stdout}"
    );
    assert!(stdout.contains("[FAIL]"), "{stdout}");
}

#[test]
fn loose_tolerances_still_pass() {
    let (stdout, ok) = run(&["--tol-scale", "10"]);
    assert!(ok, "{stdout}");
}

#[test]
fn bad_arguments_exit_with_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_validate_oracles"))
        .args(["--frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_validate_oracles"))
        .args(["--tol-scale", "lots"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

//! Golden-value regression for the alternative operating modes: the
//! committed `results/golden_modes_metrics.csv` pins the direct Albireo
//! dataflow next to the Winograd F(2×2,3×3) and incoherent-GEMM modes —
//! all costed through the shared [`Accelerator`] trait — byte for byte.
//! Any change to a mode's analytic model (or to the trait plumbing the
//! serving simulator and planner share) fails here before it silently
//! shifts fleet decisions. Regenerate with:
//!
//! ```text
//! cargo run --release -p albireo-bench --bin export_csv
//! ```

use albireo_bench::golden_modes_metrics_csv;
use std::collections::HashMap;
use std::path::PathBuf;

fn golden_csv() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("golden_modes_metrics.csv");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Parses the committed golden rows into (network, accelerator) -> row
/// fields, so the headline-claim assertions read the same artifact the
/// byte-exactness test pins.
fn rows_by_key(csv: &str) -> HashMap<(String, String), Vec<String>> {
    csv.lines()
        .skip(1)
        .map(|line| {
            let fields: Vec<String> = line.split(',').map(str::to_string).collect();
            ((fields[0].clone(), fields[1].clone()), fields)
        })
        .collect()
}

#[test]
fn golden_modes_metrics_reproduce_byte_exactly() {
    assert_eq!(
        golden_modes_metrics_csv(),
        golden_csv(),
        "operating-mode costs diverged from results/golden_modes_metrics.csv; \
         if the change is intentional, regenerate with \
         `cargo run --release -p albireo-bench --bin export_csv`"
    );
}

#[test]
fn winograd_reduces_macs_and_latency_on_vgg_class_nets() {
    let rows = rows_by_key(&golden_csv());
    for network in ["VGG16", "AlexNet", "ResNet18"] {
        let direct = &rows[&(network.to_string(), "albireo_9".to_string())];
        let wino = &rows[&(network.to_string(), "winograd_9".to_string())];
        let (d_macs, w_macs): (f64, f64) = (direct[3].parse().unwrap(), wino[3].parse().unwrap());
        let (d_lat, w_lat): (f64, f64) = (direct[4].parse().unwrap(), wino[4].parse().unwrap());
        assert!(
            w_macs < d_macs,
            "{network}: Winograd should cut MAC count ({w_macs} vs {d_macs})"
        );
        assert!(
            w_lat < d_lat,
            "{network}: Winograd should cut latency ({w_lat} vs {d_lat})"
        );
    }
    // VGG16 is dominated by stride-1 3×3 convs: the transform-domain
    // schedule must shift the frontier, not shave an epsilon.
    let direct = &rows[&("VGG16".to_string(), "albireo_9".to_string())];
    let wino = &rows[&("VGG16".to_string(), "winograd_9".to_string())];
    let ratio: f64 = wino[4].parse::<f64>().unwrap() / direct[4].parse::<f64>().unwrap();
    assert!(
        ratio < 0.6,
        "VGG16 Winograd latency ratio {ratio:.3} >= 0.6"
    );
}

#[test]
fn winograd_leaves_mobilenet_untouched() {
    // MobileNet has no stride-1 3×3 standard conv, so every layer takes
    // the direct fallback: cycles, MACs, and latency are identical.
    let rows = rows_by_key(&golden_csv());
    let direct = &rows[&("MobileNet".to_string(), "albireo_9".to_string())];
    let wino = &rows[&("MobileNet".to_string(), "winograd_9".to_string())];
    assert_eq!(direct[2], wino[2], "cycles differ");
    assert_eq!(direct[3], wino[3], "MACs differ");
    assert_eq!(direct[4], wino[4], "latency differs");
}

#[test]
fn gemm_rows_exist_only_for_dense_networks() {
    let rows = rows_by_key(&golden_csv());
    for dense in ["MLP-Mixer", "Transformer-Enc"] {
        assert!(
            rows.contains_key(&(dense.to_string(), "gemm_9".to_string())),
            "missing gemm_9 row for {dense}"
        );
    }
    for cnn in ["AlexNet", "VGG16", "ResNet18", "MobileNet"] {
        assert!(
            !rows.contains_key(&(cnn.to_string(), "gemm_9".to_string())),
            "gemm_9 must not cost spatial CNN {cnn}"
        );
    }
}

#[test]
fn gemm_beats_direct_on_dense_workloads() {
    let rows = rows_by_key(&golden_csv());
    for dense in ["MLP-Mixer", "Transformer-Enc"] {
        let direct = &rows[&(dense.to_string(), "albireo_9".to_string())];
        let gemm = &rows[&(dense.to_string(), "gemm_9".to_string())];
        let (d_lat, g_lat): (f64, f64) = (direct[4].parse().unwrap(), gemm[4].parse().unwrap());
        assert!(
            g_lat < d_lat,
            "{dense}: GEMM mode should beat the direct schedule ({g_lat} vs {d_lat})"
        );
    }
}

//! Golden-value regression for the baseline cost models: the committed
//! `results/golden_baseline_metrics.csv` pins PIXEL, DEAP-CNN, and the
//! reported electronic accelerators — costed through the shared
//! [`Accelerator`] trait — byte for byte. Any change to a baseline's
//! analytic model (or to the trait plumbing that feeds the serving
//! simulator) fails here before it silently shifts comparisons.
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p albireo-bench --bin export_csv
//! ```

use albireo_baselines::{reported_accelerators, Accelerator, DeapCnn, Pixel};
use albireo_bench::golden_baseline_metrics_csv;
use albireo_nn::zoo;
use std::path::PathBuf;

fn golden_csv() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("golden_baseline_metrics.csv");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn golden_baseline_metrics_reproduce_byte_exactly() {
    assert_eq!(
        golden_baseline_metrics_csv(),
        golden_csv(),
        "baseline costs diverged from results/golden_baseline_metrics.csv; \
         if the change is intentional, regenerate with \
         `cargo run --release -p albireo-bench --bin export_csv`"
    );
}

#[test]
fn golden_covers_every_baseline_and_supported_network() {
    let committed = golden_csv();
    for name in ["PIXEL", "DEAP-CNN", "Eyeriss", "ENVISION", "UNPU"] {
        assert!(committed.contains(name), "golden CSV lost {name}");
    }
    // Photonic baselines cost all four benchmarks; reported electronic
    // designs only the two they publish numbers for.
    let rows = committed.lines().count() - 1;
    let photonic = 2 * zoo::all_benchmarks().len();
    let reported: usize = reported_accelerators()
        .iter()
        .map(|a| {
            zoo::all_benchmarks()
                .iter()
                .filter(|m| a.supports(m))
                .count()
        })
        .sum();
    assert_eq!(rows, photonic + reported);
}

#[test]
fn trait_costs_match_bespoke_constructors() {
    // The trait path must agree with direct construction — `cost` is the
    // same arithmetic regardless of whether the caller holds a concrete
    // type or a `dyn Accelerator`.
    let vgg = zoo::vgg16();
    let pixel = Pixel::paper_60w();
    let deap = DeapCnn::paper_60w();
    let dyn_pixel: &dyn Accelerator = &pixel;
    let dyn_deap: &dyn Accelerator = &deap;
    assert_eq!(pixel.cost(&vgg), dyn_pixel.cost(&vgg));
    assert_eq!(deap.cost(&vgg), dyn_deap.cost(&vgg));
    assert_eq!(dyn_pixel.cost(&vgg).accelerator, "PIXEL");
    assert_eq!(dyn_deap.cost(&vgg).accelerator, "DEAP-CNN");
}

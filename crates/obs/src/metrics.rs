//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! log-scale histograms with exact merge.
//!
//! Every metric is designed around the workspace's determinism contract:
//!
//! * **Counters** are monotonic `u64` sums. Parallel increments commute
//!   exactly (integer addition), so the final value is a function of the
//!   work performed, never of thread interleaving. Quantities that are
//!   physically fractional (energy, time) are recorded in fixed integer
//!   units (nanojoules, nanoseconds) for the same reason.
//! * **Gauges** are last-writer-wins `f64` values, only written from
//!   deterministic (serial or per-run) code paths.
//! * **Histograms** use a *fixed* bucket layout — one bucket per binary
//!   order of magnitude, `[2^e, 2^(e+1))` for `e ∈ [-64, 63]` — so two
//!   histograms always share boundaries and [`HistogramData::merge`] is
//!   exact: bucket counts add, min/max take extrema, nothing is
//!   re-binned. Merge is associative and commutative by construction
//!   (property-tested in `tests/proptest_obs.rs`).
//!
//! Snapshots ([`MetricsSnapshot`]) order every metric by name, so their
//! JSON rendering and digest are byte-stable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log-scale buckets: one per binary exponent in `[-64, 63]`.
pub const HISTOGRAM_BUCKETS: usize = 128;

/// Smallest binary exponent with its own bucket; values below
/// `2^MIN_EXP` land in bucket 0.
pub const HISTOGRAM_MIN_EXP: i32 = -64;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins `f64` gauge (stored as IEEE-754 bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The binary exponent of a positive finite `f64`, clamped to the
/// histogram's bucket range. Subnormals all clamp to the bottom bucket.
fn bucket_exp(v: f64) -> i32 {
    debug_assert!(v > 0.0 && v.is_finite());
    let biased = ((v.to_bits() >> 52) & 0x7FF) as i32;
    let exp = if biased == 0 { -1023 } else { biased - 1023 };
    exp.clamp(
        HISTOGRAM_MIN_EXP,
        HISTOGRAM_MIN_EXP + HISTOGRAM_BUCKETS as i32 - 1,
    )
}

/// The bucket index a positive finite value lands in.
pub fn bucket_index(v: f64) -> usize {
    (bucket_exp(v) - HISTOGRAM_MIN_EXP) as usize
}

/// The inclusive lower bound of bucket `i` (`2^(MIN_EXP + i)`).
pub fn bucket_lower_bound(i: usize) -> f64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    (2.0f64).powi(HISTOGRAM_MIN_EXP + i as i32)
}

/// A fixed-bucket log-scale histogram of non-negative values.
///
/// Thread-safe recording; zero and non-finite/negative values are
/// counted separately so the bucketed population is exactly the positive
/// finite one.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    zeros: AtomicU64,
    invalid: AtomicU64,
    /// Min over valid (non-negative finite) samples, as bits;
    /// `u64::MAX` = empty. Bit order equals numeric order for
    /// non-negative floats.
    min_bits: AtomicU64,
    /// Max over valid samples, as bits; meaningful only when non-empty.
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            zeros: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            min_bits: AtomicU64::new(u64::MAX),
            max_bits: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if v == 0.0 {
            self.zeros.fetch_add(1, Ordering::Relaxed);
        } else {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Folds a previously captured [`HistogramData`] into this histogram
    /// — the write-side half of exact merge, used when a resumed run
    /// restores a snapshot into a live registry. Counts add and extrema
    /// take extrema, so absorbing a snapshot and then recording the
    /// remaining samples yields the same state as one uninterrupted run.
    pub fn absorb(&self, data: &HistogramData) {
        for (bucket, &c) in self.buckets.iter().zip(&data.buckets) {
            if c > 0 {
                bucket.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.zeros.fetch_add(data.zeros, Ordering::Relaxed);
        self.invalid.fetch_add(data.invalid, Ordering::Relaxed);
        self.min_bits.fetch_min(data.min_bits, Ordering::Relaxed);
        self.max_bits.fetch_max(data.max_bits, Ordering::Relaxed);
    }

    /// A plain, mergeable copy of the current state.
    pub fn data(&self) -> HistogramData {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramData {
            buckets,
            zeros: self.zeros.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            min_bits: self.min_bits.load(Ordering::Relaxed),
            max_bits: self.max_bits.load(Ordering::Relaxed),
        }
    }
}

/// A plain histogram state: the unit of exact merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket counts (bucket `i` covers `[2^(MIN_EXP+i), 2^(MIN_EXP+i+1))`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Samples exactly zero.
    pub zeros: u64,
    /// Rejected samples (negative or non-finite).
    pub invalid: u64,
    /// Min of valid samples as bits (`u64::MAX` = empty).
    pub min_bits: u64,
    /// Max of valid samples as bits (0 when empty).
    pub max_bits: u64,
}

impl Default for HistogramData {
    fn default() -> HistogramData {
        HistogramData {
            buckets: [0; HISTOGRAM_BUCKETS],
            zeros: 0,
            invalid: 0,
            min_bits: u64::MAX,
            max_bits: 0,
        }
    }
}

impl HistogramData {
    /// Valid (non-negative finite) samples recorded.
    pub fn count(&self) -> u64 {
        self.zeros + self.buckets.iter().sum::<u64>()
    }

    /// Minimum valid sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.min_bits))
    }

    /// Maximum valid sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.max_bits))
    }

    /// Exact merge: counts add, extrema take extrema. Associative and
    /// commutative because every term is.
    pub fn merge(&self, other: &HistogramData) -> HistogramData {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i] + other.buckets[i];
        }
        HistogramData {
            buckets,
            zeros: self.zeros + other.zeros,
            invalid: self.invalid + other.invalid,
            min_bits: self.min_bits.min(other.min_bits),
            max_bits: self.max_bits.max(other.max_bits),
        }
    }

    /// Geometric-midpoint estimate of the mean over positive samples
    /// (zeros contribute zero). Deterministic function of the counts.
    pub fn mean_estimate(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = bucket_lower_bound(i);
                c as f64 * lo * std::f64::consts::SQRT_2
            })
            .sum();
        sum / count as f64
    }

    /// `(exponent, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(i32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (HISTOGRAM_MIN_EXP + i as i32, c))
            .collect()
    }
}

/// A registry-resident [`QuantileSketch`](crate::sketch::QuantileSketch) behind a lock: the sketch's
/// state is a sparse map, so unlike counters/histograms it cannot be
/// updated with lone atomics. Recording sites are expected to build a
/// local sketch and [`SketchCell::merge_from`] it once (merge is exact,
/// so sharding does not change the state).
#[derive(Debug, Default)]
pub struct SketchCell {
    inner: Mutex<crate::sketch::QuantileSketch>,
}

impl SketchCell {
    /// Records one sample.
    pub fn observe(&self, v: f64) {
        self.inner.lock().expect("sketch lock").observe(v);
    }

    /// Merges a locally-built sketch into the cell (exact, commutative).
    pub fn merge_from(&self, other: &crate::sketch::QuantileSketch) {
        self.inner.lock().expect("sketch lock").merge_from(other);
    }

    /// A plain copy of the current state.
    pub fn data(&self) -> crate::sketch::QuantileSketch {
        self.inner.lock().expect("sketch lock").clone()
    }
}

/// The named-metric registry. Lookup is by name; snapshots iterate in
/// name order, so renderings and digests are byte-stable.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sketches: Mutex<BTreeMap<String, Arc<SketchCell>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The quantile sketch named `name`, created on first use.
    pub fn sketch(&self, name: &str) -> Arc<SketchCell> {
        let mut map = self.sketches.lock().expect("registry lock");
        if let Some(s) = map.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(SketchCell::default());
        map.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// A point-in-time snapshot of every metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.data()))
            .collect();
        let sketches = self
            .sketches
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, s)| (name.clone(), s.data()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            sketches,
        }
    }

    /// Folds a previously captured snapshot into the live registry:
    /// counters add, gauges overwrite (last-writer-wins, matching
    /// [`Gauge::set`]), histograms and sketches merge exactly. Absorbing
    /// a checkpoint's snapshot and then recording the rest of the run
    /// produces the same final snapshot as one uninterrupted run —
    /// every operation is the metric's own exact-merge monoid.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        for (name, v) in &snapshot.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snapshot.gauges {
            self.gauge(name).set(*v);
        }
        for (name, data) in &snapshot.histograms {
            self.histogram(name).absorb(data);
        }
        for (name, sketch) in &snapshot.sketches {
            self.sketch(name).merge_from(sketch);
        }
    }
}

/// A point-in-time view of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, data)` for every histogram.
    pub histograms: Vec<(String, HistogramData)>,
    /// `(name, state)` for every quantile sketch.
    pub sketches: Vec<(String, crate::sketch::QuantileSketch)>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }

    /// Exact merge of two snapshots: counters add, gauges take `other`'s
    /// value when present (`other` is the later shard), histograms and
    /// sketches merge per their own monoids. Metric names union; the
    /// result stays name-ordered, so its JSON and digest are stable.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        fn merge_by_name<T: Clone>(
            a: &[(String, T)],
            b: &[(String, T)],
            combine: impl Fn(&T, &T) -> T,
        ) -> Vec<(String, T)> {
            let mut out: BTreeMap<String, T> =
                a.iter().map(|(n, v)| (n.clone(), v.clone())).collect();
            for (name, v) in b {
                match out.get_mut(name) {
                    Some(existing) => *existing = combine(existing, v),
                    None => {
                        out.insert(name.clone(), v.clone());
                    }
                }
            }
            out.into_iter().collect()
        }
        MetricsSnapshot {
            counters: merge_by_name(&self.counters, &other.counters, |a, b| a + b),
            gauges: merge_by_name(&self.gauges, &other.gauges, |_, b| *b),
            histograms: merge_by_name(&self.histograms, &other.histograms, |a, b| a.merge(b)),
            sketches: merge_by_name(&self.sketches, &other.sketches, |a, b| a.merge(b)),
        }
    }

    /// Order-sensitive digest over every metric, with the workspace's
    /// `rotate_left(7) ^ bits` fold.
    pub fn digest(&self) -> u64 {
        let mut d = 0x0B5E_0B5Eu64;
        for (name, v) in &self.counters {
            d = crate::fold(d, crate::fnv1a(name.as_bytes()));
            d = crate::fold(d, *v);
        }
        for (name, v) in &self.gauges {
            d = crate::fold(d, crate::fnv1a(name.as_bytes()));
            d = crate::fold(d, v.to_bits());
        }
        for (name, h) in &self.histograms {
            d = crate::fold(d, crate::fnv1a(name.as_bytes()));
            d = crate::fold(d, h.count());
            d = crate::fold(d, h.zeros);
            d = crate::fold(d, h.invalid);
            d = crate::fold(d, h.min_bits);
            d = crate::fold(d, h.max_bits);
            for (exp, c) in h.nonzero_buckets() {
                d = crate::fold(d, exp as u64);
                d = crate::fold(d, c);
            }
        }
        for (name, s) in &self.sketches {
            d = crate::fold(d, crate::fnv1a(name.as_bytes()));
            d = crate::fold(d, s.digest());
        }
        d
    }

    /// Hand-rolled JSON under the `albireo.obs/v1` schema. Counters are
    /// integers; gauges use scientific notation (oracle relative errors
    /// span many decades); histograms list only non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", crate::SCHEMA));
        s.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            s.push_str(&format!(
                "\n    \"{}\": {v}{}",
                crate::export::json_escape(name),
                sep(i, self.counters.len())
            ));
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            s.push_str(&format!(
                "\n    \"{}\": {}{}",
                crate::export::json_escape(name),
                sci(*v),
                sep(i, self.gauges.len())
            ));
        }
        s.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"zeros\": {}, \"invalid\": {}, \
                 \"min\": {}, \"max\": {}, \"mean_est\": {}, \"buckets\": [{}]}}{}",
                crate::export::json_escape(name),
                h.count(),
                h.zeros,
                h.invalid,
                sci(h.min().unwrap_or(0.0)),
                sci(h.max().unwrap_or(0.0)),
                sci(h.mean_estimate()),
                h.nonzero_buckets()
                    .iter()
                    .map(|(e, c)| format!("[{e}, {c}]"))
                    .collect::<Vec<String>>()
                    .join(", "),
                sep(i, self.histograms.len())
            ));
        }
        s.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"sketches\": {");
        for (i, (name, sk)) in self.sketches.iter().enumerate() {
            s.push_str(&format!(
                "\n    \"{}\": {}{}",
                crate::export::json_escape(name),
                sk.to_json_fragment(),
                sep(i, self.sketches.len())
            ));
        }
        s.push_str(if self.sketches.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str(&format!("  \"digest\": \"{:016x}\"\n", self.digest()));
        s.push('}');
        s
    }
}

/// JSON float in deterministic scientific notation (`null` if non-finite).
fn sci(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_string()
    }
}

/// `","` between elements, nothing after the last.
fn sep(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        r.gauge("g").set(1.25);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 7)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 1.25)]);
    }

    #[test]
    fn bucket_layout_is_binary_log() {
        assert_eq!(bucket_index(1.0), 64);
        assert_eq!(bucket_index(1.5), 64);
        assert_eq!(bucket_index(2.0), 65);
        assert_eq!(bucket_index(0.5), 63);
        assert_eq!(bucket_lower_bound(64), 1.0);
        assert_eq!(bucket_lower_bound(65), 2.0);
        // Extremes clamp instead of overflowing.
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0);
        assert_eq!(bucket_index(f64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_extrema() {
        let h = Histogram::default();
        for v in [0.0, 1e-6, 3.0, 4.0, f64::NAN, -1.0] {
            h.observe(v);
        }
        let d = h.data();
        assert_eq!(d.count(), 4);
        assert_eq!(d.zeros, 1);
        assert_eq!(d.invalid, 2);
        assert_eq!(d.min(), Some(0.0));
        assert_eq!(d.max(), Some(4.0));
        assert!(d.mean_estimate() > 0.0);
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for (i, v) in [1e-9, 0.25, 7.0, 1e12, 0.0].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v)
            } else {
                b.observe(*v)
            }
            all.observe(*v);
        }
        assert_eq!(a.data().merge(&b.data()), all.data());
        assert_eq!(b.data().merge(&a.data()), all.data());
    }

    #[test]
    fn snapshot_json_is_schema_versioned_and_stable() {
        let r = Registry::new();
        r.counter("ops").add(42);
        r.gauge("err").set(1.5e-4);
        r.histogram("wait_s").observe(0.001);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"albireo.obs/v1\""));
        assert!(json.contains("\"ops\": 42"));
        assert!(json.contains("1.500000e-4"));
        assert_eq!(json, r.snapshot().to_json());
        assert_eq!(snap.digest(), r.snapshot().digest());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let json = Registry::new().snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"sketches\": {}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn absorbing_a_snapshot_equals_an_uninterrupted_run() {
        // Record half the samples, snapshot, absorb into a fresh
        // registry, record the other half: the final snapshot must equal
        // one registry that saw everything.
        let samples = [0.0, 1e-6, 0.25, 3.0, 4.0, 7.5, 1e3];
        let record = |r: &Registry, v: f64| {
            r.counter("ops").add(1);
            r.histogram("h").observe(v);
            r.sketch("s").observe(v);
            r.gauge("g").set(v);
        };
        let full = Registry::new();
        let first = Registry::new();
        for &v in &samples {
            record(&full, v);
        }
        for &v in &samples[..3] {
            record(&first, v);
        }
        // Resume: a fresh registry absorbs the checkpointed state, then
        // the remaining samples land on it.
        let resumed = Registry::new();
        resumed.absorb(&first.snapshot());
        for &v in &samples[3..] {
            record(&resumed, v);
        }
        assert_eq!(resumed.snapshot().digest(), full.snapshot().digest());
        assert_eq!(resumed.snapshot().to_json(), full.snapshot().to_json());
    }

    #[test]
    fn snapshot_merge_unions_names_and_adds_counts() {
        let a = Registry::new();
        a.counter("shared").add(2);
        a.counter("only_a").add(1);
        a.histogram("h").observe(1.0);
        let b = Registry::new();
        b.counter("shared").add(3);
        b.gauge("g").set(9.0);
        b.histogram("h").observe(4.0);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(
            merged.counters,
            vec![("only_a".to_string(), 1), ("shared".to_string(), 5)]
        );
        assert_eq!(merged.gauges, vec![("g".to_string(), 9.0)]);
        let h = &merged.histograms[0].1;
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(4.0));
        // Identity and commutativity of the count-carrying parts.
        let empty = MetricsSnapshot::default();
        assert_eq!(a.snapshot().merge(&empty), a.snapshot());
        assert_eq!(merged.counters, b.snapshot().merge(&a.snapshot()).counters);
    }

    #[test]
    fn sketch_cells_round_trip_and_render() {
        let r = Registry::new();
        r.sketch("latency_ms").observe(1.25);
        r.sketch("latency_ms").observe(2.5);
        let mut local = crate::sketch::QuantileSketch::new();
        local.observe(10.0);
        r.sketch("latency_ms").merge_from(&local);
        let snap = r.snapshot();
        assert_eq!(snap.sketches.len(), 1);
        assert_eq!(snap.sketches[0].1.count(), 3);
        let json = snap.to_json();
        assert!(json.contains("\"latency_ms\": {\"count\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Registering a sketch changes the digest; an empty section does
        // not (existing digests stay stable).
        assert_ne!(snap.digest(), Registry::new().snapshot().digest());
    }
}

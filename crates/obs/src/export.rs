//! Trace exporters: JSONL event stream and Chrome/Perfetto
//! `trace_event` JSON.
//!
//! Both exporters consume a stream already drained via
//! [`crate::span::TraceBuffer::drain_sorted`], so their output order —
//! and therefore their bytes — is deterministic under a fixed seed.
//!
//! The Chrome format is the object form
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` accepted by both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
//! Virtual seconds are scaled to microseconds (the unit the format
//! mandates) and rendered with a fixed `{:.3}` precision so equal
//! virtual timestamps stay equal on disk.

use crate::span::{Event, Phase};

/// Microseconds per virtual second in the Chrome export.
const US_PER_S: f64 = 1.0e6;

/// Escapes a string for embedding inside a JSON string literal. ASCII
/// printables pass through; controls use the short escapes or `\uXXXX`;
/// non-ASCII is `\uXXXX`-escaped (surrogate pairs beyond the BMP) so
/// every exporter emits pure-ASCII, valid JSON regardless of what a
/// span, counter, or class name contains.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c if (c as u32) > 0x7E => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{:04x}", unit));
                }
            }
            c => out.push(c),
        }
    }
    out
}

fn args_json(e: &Event) -> String {
    let mut parts: Vec<String> = e
        .args
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v.to_json()))
        .collect();
    if let Some(ns) = e.wall_ns {
        parts.push(format!("\"wall_ns\": {ns}"));
    }
    format!("{{{}}}", parts.join(", "))
}

/// One JSONL line per event: `{"ts": ..., "track": ..., "phase": ...,
/// "name": ..., "args": {...}}`. Timestamps keep full virtual-second
/// precision (`{:.9}`).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let phase = match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        };
        out.push_str(&format!(
            "{{\"ts\": {:.9}, \"track\": {}, \"phase\": \"{}\", \"name\": \"{}\", \"args\": {}}}\n",
            e.ts_s,
            e.track,
            phase,
            json_escape(&e.name),
            args_json(e),
        ));
    }
    out
}

/// Chrome/Perfetto `trace_event` JSON.
///
/// Begin/End pairs are matched per `(track, name)` stack and emitted as
/// complete (`ph: "X"`) events; instants become `ph: "i"` with thread
/// scope; counters become `ph: "C"`. `track_names` adds
/// `thread_name` metadata records so viewers label each track.
pub fn to_chrome_trace(events: &[Event], track_names: &[(u32, String)]) -> String {
    let mut records: Vec<String> = Vec::new();
    for (track, name) in track_names {
        records.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {track}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            json_escape(name)
        ));
    }
    // Open-span stacks keyed by (track, name); keys ordered for determinism
    // although input order already fixes the output.
    let mut open: std::collections::BTreeMap<(u32, String), Vec<&Event>> =
        std::collections::BTreeMap::new();
    for e in events {
        match e.phase {
            Phase::Begin => {
                open.entry((e.track, e.name.clone())).or_default().push(e);
            }
            Phase::End => {
                let begin = open.get_mut(&(e.track, e.name.clone())).and_then(Vec::pop);
                if let Some(b) = begin {
                    let ts_us = b.ts_s * US_PER_S;
                    let dur_us = (e.ts_s - b.ts_s).max(0.0) * US_PER_S;
                    records.push(format!(
                        "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \
                         \"dur\": {:.3}, \"name\": \"{}\", \"args\": {}}}",
                        b.track,
                        ts_us,
                        dur_us,
                        json_escape(&b.name),
                        args_json(b),
                    ));
                }
            }
            Phase::Instant => {
                records.push(format!(
                    "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"s\": \"t\", \
                     \"name\": \"{}\", \"args\": {}}}",
                    e.track,
                    e.ts_s * US_PER_S,
                    json_escape(&e.name),
                    args_json(e),
                ));
            }
            Phase::Counter => {
                records.push(format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \
                     \"name\": \"{}\", \"args\": {}}}",
                    e.track,
                    e.ts_s * US_PER_S,
                    json_escape(&e.name),
                    args_json(e),
                ));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&records.join(",\n"));
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ArgValue, TraceBuffer};

    fn sample_events() -> Vec<Event> {
        let buf = TraceBuffer::default();
        buf.record(
            0,
            0.001,
            Phase::Begin,
            "layer",
            vec![("idx", ArgValue::U64(0))],
            None,
        );
        buf.record(0, 0.002, Phase::End, "layer", Vec::new(), None);
        buf.record(1, 0.0015, Phase::Instant, "shed", Vec::new(), None);
        buf.record(
            1,
            0.0015,
            Phase::Counter,
            "queue_depth",
            vec![("depth", ArgValue::U64(3))],
            None,
        );
        buf.drain_sorted()
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let text = to_jsonl(&sample_events());
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"phase\": \"B\""));
        assert!(text.contains("\"name\": \"shed\""));
    }

    #[test]
    fn chrome_trace_pairs_spans_into_complete_events() {
        let events = sample_events();
        let trace = to_chrome_trace(&events, &[(0, "chip0".to_string())]);
        assert!(trace.starts_with("{\"traceEvents\": ["));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"dur\": 1000.000"));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ph\": \"i\""));
        assert!(trace.contains("\"ph\": \"C\""));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let buf = TraceBuffer::default();
        buf.record(0, 1.0, Phase::End, "stray", Vec::new(), None);
        let trace = to_chrome_trace(&buf.drain_sorted(), &[]);
        assert!(!trace.contains("\"ph\": \"X\""));
    }

    #[test]
    fn escapes_strings() {
        let buf = TraceBuffer::default();
        buf.record(0, 1.0, Phase::Instant, "a\"b", Vec::new(), None);
        let trace = to_chrome_trace(&buf.drain_sorted(), &[]);
        assert!(trace.contains("a\\\"b"));
    }

    #[test]
    fn hostile_names_round_trip_through_valid_json() {
        // Quotes, backslashes, newlines, and non-ASCII in span/counter
        // names must all come back intact through a real JSON parse.
        let names = [
            "plain",
            "has\"quote",
            "back\\slash",
            "new\nline",
            "unicode µs → latency 😀",
        ];
        let buf = TraceBuffer::default();
        for (i, name) in names.iter().enumerate() {
            buf.record(0, i as f64, Phase::Instant, name, Vec::new(), None);
            buf.record(
                1,
                i as f64,
                Phase::Counter,
                name,
                vec![("value", ArgValue::U64(i as u64))],
                None,
            );
        }
        let events = buf.drain_sorted();

        for line in to_jsonl(&events).lines() {
            let v = crate::jsonv::parse(line).expect("JSONL line parses");
            let got = v.get("name").unwrap().as_str().unwrap();
            assert!(names.contains(&got), "name mangled: {got:?}");
        }

        let trace = to_chrome_trace(&events, &[(0, "träck \"0\"".to_string())]);
        assert!(trace.is_ascii(), "chrome trace must be ASCII-safe");
        let v = crate::jsonv::parse(&trace).expect("chrome trace parses");
        let records = v.get("traceEvents").unwrap().as_arr().unwrap();
        // One metadata record + one record per instant/counter event.
        assert_eq!(records.len(), 1 + events.len());
        let parsed_names: Vec<&str> = records
            .iter()
            .skip(1)
            .map(|r| r.get("name").unwrap().as_str().unwrap())
            .collect();
        for name in names {
            assert!(parsed_names.contains(&name), "missing {name:?}");
        }
        assert_eq!(
            records[0]
                .get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("träck \"0\"")
        );
    }

    #[test]
    fn metrics_snapshot_with_hostile_names_parses() {
        let r = crate::Registry::new();
        r.counter("ops \"quoted\"").add(1);
        r.gauge("g\\err").set(0.5);
        r.histogram("hist µ").observe(1.0);
        r.sketch("sk\new").observe(2.0);
        let json = r.snapshot().to_json();
        assert!(json.is_ascii());
        let v = crate::jsonv::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("ops \"quoted\"")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert!(v.get("histograms").unwrap().get("hist µ").is_some());
        assert!(v.get("sketches").unwrap().get("sk\new").is_some());
    }
}

//! A minimal JSON reader for the workspace's own artifacts.
//!
//! The workspace writes all JSON by hand (no serde); `perf-diff` and
//! the exporter round-trip tests need to *read* it back. This is a
//! strict recursive-descent parser over the JSON grammar — objects,
//! arrays, strings (with `\uXXXX` escapes and surrogate pairs),
//! numbers, booleans, null — with object key order preserved so
//! re-rendering comparisons stay stable. It is a validator too: CI
//! smoke jobs accept a file iff [`parse`] does.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order (duplicate keys rejected).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Flattens every numeric leaf to `path → value`, joining object
    /// keys with `.` and indexing arrays — except that an array element
    /// carrying a string member named `name`, `path`, `label`, or
    /// `fleet` is keyed by that member's value instead of its index, so
    /// rows match across files whose orderings differ. Used by
    /// `perf-diff`.
    pub fn flatten_numbers(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut BTreeMap<String, f64>) {
        match self {
            Value::Num(n) => {
                out.insert(prefix.to_string(), *n);
            }
            Value::Obj(members) => {
                for (k, v) in members {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    v.flatten_into(&path, out);
                }
            }
            Value::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    let key = ["name", "path", "label", "fleet"]
                        .iter()
                        .find_map(|k| v.get(k).and_then(Value::as_str))
                        .map(str::to_string)
                        .unwrap_or_else(|| i.to_string());
                    let path = if prefix.is_empty() {
                        key
                    } else {
                        format!("{prefix}.{key}")
                    };
                    v.flatten_into(&path, out);
                }
            }
            Value::Null | Value::Bool(_) | Value::Str(_) => {}
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this
                    // slice boundary is always valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": 1, "b": [true, null, -2.5e3], "s": "x\ny", "nested": {"k": "v"}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_f64(), Some(-2500.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(
            v.get("nested").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
    }

    #[test]
    fn unescapes_unicode_including_surrogate_pairs() {
        let v = parse(r#""café 😀 \"q\\""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀 \"q\\"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\": 1} extra",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "01e",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn flatten_prefers_name_keys_over_indices() {
        let v = parse(
            r#"{"experiments": [
                {"name": "grid", "runs": [{"threads": 1, "wall_ms": 10.5}]},
                {"name": "analog_conv", "serial_wall_ms": 7.25}
            ], "total": {"best_speedup": 3.5}}"#,
        )
        .unwrap();
        let flat = v.flatten_numbers();
        assert_eq!(flat["experiments.grid.runs.0.wall_ms"], 10.5);
        assert_eq!(flat["experiments.analog_conv.serial_wall_ms"], 7.25);
        assert_eq!(flat["total.best_speedup"], 3.5);
    }

    #[test]
    fn round_trips_workspace_artifacts() {
        // The obs snapshot JSON and profile report must parse.
        let reg = crate::Registry::new();
        reg.counter("ops").add(3);
        reg.gauge("g").set(1.5e-4);
        reg.histogram("h").observe(0.125);
        reg.sketch("s").observe(2.0);
        let snap_json = reg.snapshot().to_json();
        let v = parse(&snap_json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters").unwrap().get("ops").unwrap().as_f64(),
            Some(3.0)
        );
    }
}

//! Span tracing: structured events in a bounded, lock-sharded ring
//! buffer.
//!
//! Events carry **virtual** timestamps — the DES clock in
//! `albireo-runtime` or the cumulative-latency clock in the core
//! engine — so a fixed seed reproduces the trace byte-for-byte at any
//! thread count. Wall-clock nanoseconds are an opt-in side channel
//! ([`Event::wall_ns`]) that never participates in digests or in the
//! deterministic drain order.
//!
//! The buffer is sharded by track (one mutexed ring per shard) to keep
//! recording cheap under concurrency; each shard is bounded and drops
//! its oldest events when full, counting the drops. [`TraceBuffer::drain_sorted`]
//! merges the shards into one totally ordered stream keyed by
//! `(ts_bits, track, phase rank, seq)` — ends before begins at equal
//! timestamps, so zero-gap adjacent spans nest correctly in viewers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default per-shard capacity (events) of the ring buffer.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 14;

/// Number of shards in the ring buffer.
pub const SHARDS: usize = 8;

/// Event kind, mirroring the Chrome `trace_event` phases we export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Start of a span (`ph: "B"` semantics; exported paired as `"X"`).
    Begin,
    /// End of a span.
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

impl Phase {
    /// Sort rank at equal timestamps: ends drain before begins so that
    /// back-to-back spans on one track close before the next opens.
    pub fn rank(self) -> u8 {
        match self {
            Phase::End => 0,
            Phase::Counter => 1,
            Phase::Instant => 2,
            Phase::Begin => 3,
        }
    }

    /// Stable numeric tag folded into digests.
    pub fn tag(self) -> u64 {
        match self {
            Phase::Begin => 1,
            Phase::End => 2,
            Phase::Instant => 3,
            Phase::Counter => 4,
        }
    }
}

/// A structured argument value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
}

impl ArgValue {
    /// Stable bit pattern folded into digests.
    pub fn bits(self) -> u64 {
        match self {
            ArgValue::U64(v) => v,
            ArgValue::I64(v) => v as u64,
            ArgValue::F64(v) => v.to_bits(),
        }
    }

    /// JSON rendering (floats via `{:.6}`-free shortest-stable form is
    /// avoided; deterministic `{:.9}` keeps virtual quantities exact
    /// enough and byte-stable).
    pub fn to_json(self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v:.9}")
                } else {
                    "null".to_string()
                }
            }
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> ArgValue {
        ArgValue::U64(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical track (exported as the Chrome `tid`): a chip index, a
    /// worker, or one of the reserved tracks in `crate::track`.
    pub track: u32,
    /// Global record sequence number (tie-breaker of last resort).
    pub seq: u64,
    /// Virtual timestamp in seconds.
    pub ts_s: f64,
    /// Event kind.
    pub phase: Phase,
    /// Event (or counter) name.
    pub name: String,
    /// Structured arguments, in recording order.
    pub args: Vec<(&'static str, ArgValue)>,
    /// Opt-in wall-clock nanoseconds since the `Obs` epoch. Excluded
    /// from digests and ordering.
    pub wall_ns: Option<u64>,
}

impl Event {
    /// Sort key for the deterministic total order.
    fn key(&self) -> (u64, u32, u8, u64) {
        (self.ts_s.to_bits(), self.track, self.phase.rank(), self.seq)
    }
}

/// Bounded, lock-sharded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct TraceBuffer {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    events: std::collections::VecDeque<Event>,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::with_capacity(DEFAULT_SHARD_CAPACITY)
    }
}

impl TraceBuffer {
    /// A buffer holding up to `capacity_per_shard` events in each of
    /// [`SHARDS`] shards.
    pub fn with_capacity(capacity_per_shard: usize) -> TraceBuffer {
        TraceBuffer {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one event, dropping the shard's oldest if full.
    pub fn record(
        &self,
        track: u32,
        ts_s: f64,
        phase: Phase,
        name: &str,
        args: Vec<(&'static str, ArgValue)>,
        wall_ns: Option<u64>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            track,
            seq,
            ts_s,
            phase,
            name: name.to_string(),
            args,
            wall_ns,
        };
        let shard = &self.shards[track as usize % SHARDS];
        let mut guard = shard.lock().expect("trace shard lock");
        if guard.events.len() >= self.capacity_per_shard {
            guard.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        guard.events.push_back(event);
    }

    /// Events recorded and still buffered.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("trace shard lock").events.len())
            .sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to ring-buffer bounds so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns every buffered event in the deterministic
    /// total order `(ts_bits, track, phase rank, seq)`.
    pub fn drain_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.lock().expect("trace shard lock");
            all.extend(guard.events.drain(..));
        }
        all.sort_by_key(Event::key);
        all
    }
}

/// Order-sensitive digest of a drained event stream, using the
/// workspace fold convention. Wall-clock fields are excluded so traces
/// digest identically with and without `--wall-clock`.
pub fn events_digest(events: &[Event]) -> u64 {
    let mut d = 0x0B5E_7ACEu64;
    for e in events {
        d = crate::fold(d, crate::fnv1a(e.name.as_bytes()));
        d = crate::fold(d, e.ts_s.to_bits());
        d = crate::fold(d, u64::from(e.track));
        d = crate::fold(d, e.phase.tag());
        for (k, v) in &e.args {
            d = crate::fold(d, crate::fnv1a(k.as_bytes()));
            d = crate::fold(d, v.bits());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(buf: &TraceBuffer, track: u32, ts: f64, phase: Phase, name: &str) {
        buf.record(track, ts, phase, name, Vec::new(), None);
    }

    #[test]
    fn drain_orders_by_time_then_track_then_phase() {
        let buf = TraceBuffer::default();
        ev(&buf, 1, 2.0, Phase::Begin, "b");
        ev(&buf, 0, 1.0, Phase::Begin, "a");
        ev(&buf, 0, 2.0, Phase::End, "a");
        let drained = buf.drain_sorted();
        let keys: Vec<(f64, &str)> = drained.iter().map(|e| (e.ts_s, e.name.as_str())).collect();
        assert_eq!(keys, vec![(1.0, "a"), (2.0, "a"), (2.0, "b")]);
        // End ranks before Begin at the same instant.
        assert_eq!(drained[1].phase, Phase::End);
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_bound_drops_oldest_and_counts() {
        let buf = TraceBuffer::with_capacity(2);
        for i in 0..5 {
            ev(&buf, 0, i as f64, Phase::Instant, "x");
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let drained = buf.drain_sorted();
        assert_eq!(drained[0].ts_s, 3.0);
        assert_eq!(drained[1].ts_s, 4.0);
    }

    #[test]
    fn digest_ignores_wall_clock() {
        let a = TraceBuffer::default();
        let b = TraceBuffer::default();
        a.record(
            0,
            1.0,
            Phase::Instant,
            "x",
            vec![("k", ArgValue::U64(7))],
            None,
        );
        b.record(
            0,
            1.0,
            Phase::Instant,
            "x",
            vec![("k", ArgValue::U64(7))],
            Some(123),
        );
        assert_eq!(
            events_digest(&a.drain_sorted()),
            events_digest(&b.drain_sorted())
        );
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mk = |ts: f64, name: &str| Event {
            track: 0,
            seq: 0,
            ts_s: ts,
            phase: Phase::Instant,
            name: name.to_string(),
            args: Vec::new(),
            wall_ns: None,
        };
        let ab = [mk(1.0, "a"), mk(2.0, "b")];
        let ba = [mk(2.0, "b"), mk(1.0, "a")];
        assert_ne!(events_digest(&ab), events_digest(&ba));
    }
}

//! # albireo-obs — deterministic instrumentation layer
//!
//! Metrics (counters, gauges, exactly-mergeable log-scale histograms)
//! and span tracing for the Albireo workspace, with zero external
//! dependencies.
//!
//! ## Determinism contract
//!
//! Everything that reaches an exporter or a digest is a function of the
//! run's inputs, never of wall time or thread interleaving:
//!
//! * Timestamps are **virtual** — the DES clock in `albireo-runtime`
//!   or the cumulative-latency clock in the core engine. Wall-clock
//!   nanoseconds are opt-in ([`Obs::set_wall_clock`]) and excluded
//!   from digests and event ordering. The second clock lives in
//!   [`profile`]: an opt-in wall-clock phase profiler whose output is
//!   likewise never folded into a digest (DESIGN.md §15).
//! * The trace buffer drains in a total order keyed by
//!   `(ts_bits, track, phase rank, seq)`; counters commute; snapshots
//!   iterate by name. Same seed ⇒ byte-identical exports at any
//!   thread count.
//! * Digests use the workspace fold convention
//!   `d.rotate_left(7) ^ bits` (see [`fold`]), matching
//!   `runtime::report`.
//!
//! ## Cost when disabled
//!
//! An [`Obs`] starts life either enabled or disabled; every recording
//! path is guarded by [`Obs::is_enabled`], a single relaxed atomic
//! load, so instrumented hot loops pay ≤ one branch when observability
//! is off. The process-wide [`global`] handle is **disabled** by
//! default and is only used for ambient counters (e.g. the parallel
//! crate's per-worker op counts); traces always go through an explicit
//! per-run `Obs` so concurrent runs never interleave events.
//!
//! ## Example
//!
//! ```
//! use albireo_obs::Obs;
//!
//! let obs = Obs::enabled();
//! obs.counter("engine.ops").add(10);
//! albireo_obs::span!(obs, track = 0, begin = 0.0, end = 0.5e-3, "layer",
//!     idx = 0usize);
//! let events = obs.drain_events();
//! assert_eq!(events.len(), 2);
//! let digest = albireo_obs::events_digest(&events);
//! assert_ne!(digest, 0);
//! ```

pub mod export;
pub mod jsonv;
pub mod metrics;
pub mod openmetrics;
pub mod profile;
pub mod sketch;
pub mod span;

pub use export::{json_escape, to_chrome_trace, to_jsonl};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramData, MetricsSnapshot, Registry, SketchCell,
};
pub use profile::{PhaseStat, ProfileReport, PROFILE_SCHEMA};
pub use sketch::{QuantileSketch, RELATIVE_ERROR_BOUND};
pub use span::{events_digest, ArgValue, Event, Phase, TraceBuffer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Schema identifier stamped on every obs JSON export.
pub const SCHEMA: &str = "albireo.obs/v1";

/// The workspace's order-sensitive digest fold:
/// `digest.rotate_left(7) ^ bits` (same convention as
/// `runtime::report`).
pub fn fold(digest: u64, bits: u64) -> u64 {
    digest.rotate_left(7) ^ bits
}

/// FNV-1a hash of a byte string, used to fold names into digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reserved trace tracks. Chip and worker tracks start at
/// [`track::CHIP_BASE`] / [`track::WORKER_BASE`]; the low tracks carry
/// cross-cutting streams.
pub mod track {
    /// Dispatcher / scheduler control events (batch formation, sheds,
    /// faults, queue-depth samples).
    pub const DISPATCH: u32 = 0;
    /// Core engine per-layer spans.
    pub const ENGINE: u32 = 1;
    /// First per-chip track: chip `i` records on `CHIP_BASE + i`.
    pub const CHIP_BASE: u32 = 16;
    /// First per-worker track for the parallel crate.
    pub const WORKER_BASE: u32 = 1024;
}

/// Handle bundling a metrics [`Registry`] and a [`TraceBuffer`] behind
/// a cheap enabled check.
#[derive(Debug)]
pub struct Obs {
    enabled: AtomicBool,
    wall_clock: AtomicBool,
    epoch: Instant,
    registry: Registry,
    tracer: TraceBuffer,
}

impl Obs {
    /// A new handle in the given state.
    pub fn new(enabled: bool) -> Obs {
        Obs {
            enabled: AtomicBool::new(enabled),
            wall_clock: AtomicBool::new(false),
            epoch: Instant::now(),
            registry: Registry::new(),
            tracer: TraceBuffer::default(),
        }
    }

    /// An enabled handle.
    pub fn enabled() -> Obs {
        Obs::new(true)
    }

    /// A disabled handle: every record call is a single branch.
    pub fn disabled() -> Obs {
        Obs::new(false)
    }

    /// Whether recording is on. Inline-cheap; instrument hot paths as
    /// `if obs.is_enabled() { ... }`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opts events into carrying wall-clock nanoseconds (diagnostic
    /// only; never part of digests or ordering).
    pub fn set_wall_clock(&self, on: bool) {
        self.wall_clock.store(on, Ordering::Relaxed);
    }

    /// Whether wall-clock stamping is on.
    pub fn wall_clock(&self) -> bool {
        self.wall_clock.load(Ordering::Relaxed)
    }

    fn wall_ns(&self) -> Option<u64> {
        if self.wall_clock() {
            Some(self.epoch.elapsed().as_nanos() as u64)
        } else {
            None
        }
    }

    /// The counter named `name` (always usable; callers guard the hot
    /// path with [`Obs::is_enabled`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// The quantile sketch named `name`.
    pub fn sketch(&self, name: &str) -> Arc<SketchCell> {
        self.registry.sketch(name)
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Records a complete span `[begin_s, end_s]` on `track` as a
    /// Begin/End pair (no-op when disabled).
    pub fn record_span(
        &self,
        track: u32,
        begin_s: f64,
        end_s: f64,
        name: &str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let wall = self.wall_ns();
        self.tracer
            .record(track, begin_s, Phase::Begin, name, args, wall);
        self.tracer
            .record(track, end_s, Phase::End, name, Vec::new(), wall);
    }

    /// Records a point event (no-op when disabled).
    pub fn record_instant(
        &self,
        track: u32,
        ts_s: f64,
        name: &str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let wall = self.wall_ns();
        self.tracer
            .record(track, ts_s, Phase::Instant, name, args, wall);
    }

    /// Records a sampled counter value (Chrome `ph: "C"`) — e.g. the
    /// serving queue depth over virtual time (no-op when disabled).
    pub fn record_counter_sample(&self, track: u32, ts_s: f64, name: &str, value: ArgValue) {
        if !self.is_enabled() {
            return;
        }
        let wall = self.wall_ns();
        self.tracer.record(
            track,
            ts_s,
            Phase::Counter,
            name,
            vec![("value", value)],
            wall,
        );
    }

    /// Drains every buffered event in the deterministic total order.
    pub fn drain_events(&self) -> Vec<Event> {
        self.tracer.drain_sorted()
    }

    /// Events dropped to ring-buffer bounds so far.
    pub fn dropped_events(&self) -> u64 {
        self.tracer.dropped()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::disabled()
    }
}

/// The process-wide handle: disabled by default, used for ambient
/// counters (parallel-crate op counts). Enable explicitly via
/// `global().set_enabled(true)`.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::disabled)
}

/// Records a complete span with explicit virtual begin/end timestamps:
///
/// ```
/// # let obs = albireo_obs::Obs::enabled();
/// albireo_obs::span!(obs, track = 3, begin = 0.0, end = 1.0e-3,
///     "plcg_dispatch", chip = 3usize, batch = 8usize);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, track = $track:expr, begin = $begin:expr, end = $end:expr,
     $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $obs.record_span(
            $track,
            $begin,
            $end,
            $name,
            vec![$((stringify!($key), $crate::ArgValue::from($value))),*],
        )
    };
}

/// Records a point event at a virtual timestamp:
///
/// ```
/// # let obs = albireo_obs::Obs::enabled();
/// albireo_obs::instant!(obs, track = 0, ts = 0.5, "shed", queue = 4usize);
/// ```
#[macro_export]
macro_rules! instant {
    ($obs:expr, track = $track:expr, ts = $ts:expr,
     $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $obs.record_instant(
            $track,
            $ts,
            $name,
            vec![$((stringify!($key), $crate::ArgValue::from($value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        span!(obs, track = 0, begin = 0.0, end = 1.0, "s");
        instant!(obs, track = 0, ts = 0.5, "i");
        obs.record_counter_sample(0, 0.5, "q", ArgValue::U64(1));
        assert!(obs.drain_events().is_empty());
    }

    #[test]
    fn span_macro_records_begin_end_pair_with_args() {
        let obs = Obs::enabled();
        span!(
            obs,
            track = 2,
            begin = 1.0,
            end = 2.0,
            "layer",
            idx = 4usize,
            macs = 100u64
        );
        let events = obs.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[0].args[0], ("idx", ArgValue::U64(4)));
        assert_eq!(events[0].args[1], ("macs", ArgValue::U64(100)));
        assert_eq!(events[1].phase, Phase::End);
    }

    #[test]
    fn wall_clock_opt_in_does_not_change_digest() {
        let run = |wall: bool| {
            let obs = Obs::enabled();
            obs.set_wall_clock(wall);
            span!(obs, track = 0, begin = 0.0, end = 1.0, "s", k = 1u64);
            let events = obs.drain_events();
            assert_eq!(events[0].wall_ns.is_some(), wall);
            events_digest(&events)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn global_is_disabled_by_default() {
        assert!(!global().is_enabled());
    }

    #[test]
    fn fold_matches_runtime_convention() {
        assert_eq!(fold(0, 5), 5);
        assert_eq!(fold(1, 0), 1u64.rotate_left(7));
    }
}

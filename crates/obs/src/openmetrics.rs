//! OpenMetrics / Prometheus text exposition for the metrics registry.
//!
//! Renders a [`MetricsSnapshot`] — counters, gauges, log-bucket
//! histograms, and quantile sketches — in the OpenMetrics text format,
//! so a run's metrics can be scraped, diffed, or loaded into any
//! Prometheus-compatible tooling:
//!
//! * counters become `<name>_total` samples of type `counter`;
//! * gauges stay plain samples of type `gauge`;
//! * histograms expose their non-empty log-scale buckets as cumulative
//!   `le`-labelled `_bucket` samples plus `+Inf`, `_count`, and a
//!   `_sum` from the geometric-midpoint mean estimate;
//! * quantile sketches become `summary` families with
//!   `quantile="0.5|0.95|0.99|0.999"` samples, `_count`, and a
//!   bucket-midpoint `_sum` estimate.
//!
//! [`render_series`] takes `(virtual_seconds, snapshot)` points — one
//! per checkpoint boundary of a long `serve --checkpoint-every` run —
//! and emits every point as a timestamped sample under a single
//! `# TYPE` header per family, leaving a scrape-able time series in one
//! file. Metric names are sanitized to the OpenMetrics charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`; the registry's `.` separators become
//! `_`). Output is a pure function of the snapshots: byte-identical
//! across thread counts and across interrupt+resume.

use crate::metrics::{HistogramData, MetricsSnapshot};
use crate::sketch::{bucket_bounds, QuantileSketch};

/// Quantiles exposed for each sketch family (matches
/// [`QuantileSketch::to_json_fragment`]).
pub const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

/// A registry metric name, folded into the OpenMetrics charset.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Deterministic sample-value rendering: integers stay integral,
/// everything else uses Rust's shortest round-trip float form.
fn num(v: f64) -> String {
    if !v.is_finite() {
        if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn ts_suffix(ts: Option<f64>) -> String {
    match ts {
        Some(t) => format!(" {t:.3}"),
        None => String::new(),
    }
}

/// Geometric-midpoint estimate of the sum over a sketch's samples
/// (zeros contribute zero), for the summary `_sum` line.
fn sketch_sum_estimate(s: &QuantileSketch) -> f64 {
    s.nonzero_buckets()
        .iter()
        .map(|&(i, c)| {
            let (lo, hi) = bucket_bounds(i);
            c as f64 * (lo * hi).sqrt()
        })
        .sum()
}

fn histogram_sum_estimate(h: &HistogramData) -> f64 {
    h.mean_estimate() * h.count() as f64
}

struct Writer {
    out: String,
}

impl Writer {
    fn family(&mut self, name: &str, kind: &str) {
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &str, value: &str, ts: Option<f64>) {
        self.out
            .push_str(&format!("{name}{labels} {value}{}\n", ts_suffix(ts)));
    }
}

fn union_names<'a, T>(
    points: &'a [(Option<f64>, &MetricsSnapshot)],
    pick: impl Fn(&'a MetricsSnapshot) -> &'a [(String, T)],
) -> Vec<&'a str>
where
    T: 'a,
{
    let mut names: Vec<&str> = Vec::new();
    for (_, snap) in points {
        for (name, _) in pick(snap) {
            if !names.contains(&name.as_str()) {
                names.push(name);
            }
        }
    }
    names.sort_unstable();
    names
}

fn lookup<'a, T>(list: &'a [(String, T)], name: &str) -> Option<&'a T> {
    list.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn render_points(points: &[(Option<f64>, &MetricsSnapshot)]) -> String {
    let mut w = Writer { out: String::new() };
    for name in union_names(points, |s| s.counters.as_slice()) {
        let m = sanitize_name(name);
        w.family(&m, "counter");
        for (ts, snap) in points {
            if let Some(v) = lookup(&snap.counters, name) {
                w.sample(&format!("{m}_total"), "", &v.to_string(), *ts);
            }
        }
    }
    for name in union_names(points, |s| s.gauges.as_slice()) {
        let m = sanitize_name(name);
        w.family(&m, "gauge");
        for (ts, snap) in points {
            if let Some(v) = lookup(&snap.gauges, name) {
                w.sample(&m, "", &num(*v), *ts);
            }
        }
    }
    for name in union_names(points, |s| s.histograms.as_slice()) {
        let m = sanitize_name(name);
        w.family(&m, "histogram");
        for (ts, snap) in points {
            let Some(h) = lookup(&snap.histograms, name) else {
                continue;
            };
            let mut cumulative = h.zeros;
            for (exp, count) in h.nonzero_buckets() {
                cumulative += count;
                // Bucket [2^exp, 2^(exp+1)) — upper bound is exclusive
                // in the registry but the off-by-one mass at the exact
                // boundary is zero-width for `le` purposes.
                let le = (2.0f64).powi(exp + 1);
                w.sample(
                    &format!("{m}_bucket"),
                    &format!("{{le=\"{}\"}}", num(le)),
                    &cumulative.to_string(),
                    *ts,
                );
            }
            w.sample(
                &format!("{m}_bucket"),
                "{le=\"+Inf\"}",
                &h.count().to_string(),
                *ts,
            );
            w.sample(&format!("{m}_count"), "", &h.count().to_string(), *ts);
            w.sample(
                &format!("{m}_sum"),
                "",
                &num(histogram_sum_estimate(h)),
                *ts,
            );
        }
    }
    for name in union_names(points, |s| s.sketches.as_slice()) {
        let m = sanitize_name(name);
        w.family(&m, "summary");
        for (ts, snap) in points {
            let Some(s) = lookup(&snap.sketches, name) else {
                continue;
            };
            for q in SUMMARY_QUANTILES {
                w.sample(
                    &m,
                    &format!("{{quantile=\"{}\"}}", num(q)),
                    &num(s.quantile(q)),
                    *ts,
                );
            }
            w.sample(&format!("{m}_count"), "", &s.count().to_string(), *ts);
            w.sample(&format!("{m}_sum"), "", &num(sketch_sum_estimate(s)), *ts);
        }
    }
    w.out.push_str("# EOF\n");
    w.out
}

/// One snapshot, no timestamps.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    render_points(&[(None, snapshot)])
}

/// A time series of `(virtual_seconds, snapshot)` points — typically
/// one per checkpoint boundary, last point the end of run. Each family
/// gets one `# TYPE` header and one timestamped sample per point.
pub fn render_series(points: &[(f64, MetricsSnapshot)]) -> String {
    let refs: Vec<(Option<f64>, &MetricsSnapshot)> =
        points.iter().map(|(t, s)| (Some(*t), s)).collect();
    render_points(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("serve.offered").add(100);
        r.counter("serve.shed").add(3);
        r.gauge("fleet.chips").set(4.0);
        r.histogram("batch.wait_s").observe(0.5);
        r.histogram("batch.wait_s").observe(0.001);
        r.histogram("batch.wait_s").observe(0.0);
        r.sketch("latency_ms").observe(1.0);
        r.sketch("latency_ms").observe(8.0);
        r
    }

    #[test]
    fn renders_all_four_kinds_with_eof() {
        let text = render(&sample_registry().snapshot());
        assert!(text.contains("# TYPE batch_wait_s histogram\n"));
        assert!(text.contains("# TYPE serve_offered counter\n"));
        assert!(text.contains("serve_offered_total 100\n"));
        assert!(text.contains("# TYPE fleet_chips gauge\n"));
        assert!(text.contains("fleet_chips 4\n"));
        assert!(text.contains("# TYPE latency_ms summary\n"));
        assert!(text.contains("latency_ms{quantile=\"0.5\"}"));
        assert!(text.contains("latency_ms_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render(&sample_registry().snapshot());
        // 0.001 → [2^-10, 2^-9) le=2^-9; 0.5 → le=1; zeros fold into
        // the first cumulative count.
        assert!(text.contains("batch_wait_s_bucket{le=\"0.001953125\"} 2"));
        assert!(text.contains("batch_wait_s_bucket{le=\"1\"} 3"));
        assert!(text.contains("batch_wait_s_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("batch_wait_s_count 3\n"));
        let inf_at = text.find("{le=\"+Inf\"}").unwrap();
        let first_bucket = text.find("_bucket{le=").unwrap();
        assert!(first_bucket < inf_at);
    }

    #[test]
    fn series_emits_one_header_and_timestamped_samples() {
        let r = Registry::new();
        r.counter("reqs").add(10);
        let early = r.snapshot();
        r.counter("reqs").add(5);
        let late = r.snapshot();
        let text = render_series(&[(60.0, early), (120.0, late)]);
        assert_eq!(text.matches("# TYPE reqs counter").count(), 1);
        assert!(text.contains("reqs_total 10 60.000\n"));
        assert!(text.contains("reqs_total 15 120.000\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn names_are_sanitized_to_the_openmetrics_charset() {
        assert_eq!(sanitize_name("serve.class[a].p99"), "serve_class_a__p99");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_name("µops"), "_ops");
        let r = Registry::new();
        r.counter("weird.name with spaces").add(1);
        let text = render(&r.snapshot());
        assert!(text.contains("weird_name_with_spaces_total 1\n"));
    }

    #[test]
    fn empty_snapshot_renders_bare_eof() {
        assert_eq!(render(&MetricsSnapshot::default()), "# EOF\n");
    }

    #[test]
    fn output_is_deterministic() {
        let a = render(&sample_registry().snapshot());
        let b = render(&sample_registry().snapshot());
        assert_eq!(a, b);
    }
}

//! Wall-clock phase profiler: the second clock of the two-clock
//! observability model.
//!
//! Everything else in `albireo-obs` runs on **virtual** time so that
//! exports and digests are deterministic. This module is the deliberate
//! exception: it measures where the *real* CPU time goes, so ROADMAP
//! item 2 ("make the parallel engine actually fast") can be worked with
//! measurements instead of guesses. Like the `--wall-clock` span
//! opt-in, profile data is excluded from every determinism digest — a
//! run with profiling on produces byte-identical reports, goldens, and
//! digests to a run with it off.
//!
//! ## Model
//!
//! A profile is a forest of named phases. [`scope`] pushes a phase onto
//! the calling thread's stack and the returned guard pops it on drop,
//! crediting the elapsed nanoseconds to the phase *path* (names joined
//! with `/`, e.g. `analog_conv/analog.conv2d/parallel.join`). Each
//! path accumulates an exact-merge [`PhaseStat`]: call count, total
//! (inclusive) time, self (exclusive) time, and min/max per call.
//!
//! Accumulation is per-thread with zero synchronization on the hot
//! path; a thread's stats are folded into a process-global map when the
//! thread exits (every worker in this workspace is `thread::scope`d, so
//! workers flush before their spawner resumes) or when [`take_report`]
//! runs on the thread itself. Merging is exact — counts add, extrema
//! take extrema — so the aggregate is independent of how work was
//! sharded, even though the measured nanoseconds themselves are not.
//!
//! Worker-thread phases root at the worker's outermost scope (e.g.
//! `parallel.chunk`), not under the spawning thread's stack: wall time
//! on concurrent threads overlaps, so nesting it under the caller would
//! double-count the join wait that the caller already measures.
//!
//! ## Cost
//!
//! Disabled (the default), [`scope`] is one relaxed atomic load.
//! Enabled, a scope costs two `Instant::now` calls and a thread-local
//! map probe (~100 ns) — instrument at batch granularity, not per
//! element.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema identifier stamped on profile JSON reports.
pub const PROFILE_SCHEMA: &str = "albireo.profile/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is on (one relaxed load; the entire disabled-path
/// cost of [`scope`]).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off process-wide. Toggling mid-scope is safe:
/// a guard created while enabled always pops its own frame.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Exact-merge per-phase statistics (all times wall-clock nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Completed calls.
    pub calls: u64,
    /// Inclusive time: child scopes count.
    pub total_ns: u64,
    /// Exclusive time: `total_ns` minus time inside named child scopes.
    pub self_ns: u64,
    /// Shortest single call (`u64::MAX` when `calls == 0`).
    pub min_ns: u64,
    /// Longest single call.
    pub max_ns: u64,
}

impl PhaseStat {
    /// The merge identity.
    pub const EMPTY: PhaseStat = PhaseStat {
        calls: 0,
        total_ns: 0,
        self_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
    };

    fn record(&mut self, elapsed_ns: u64, child_ns: u64) {
        self.calls += 1;
        self.total_ns += elapsed_ns;
        self.self_ns += elapsed_ns.saturating_sub(child_ns);
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }

    /// Exact merge: counts and times add, extrema take extrema.
    /// Associative and commutative, so flush order never changes the
    /// aggregate.
    pub fn merge_from(&mut self, other: &PhaseStat) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

struct Node {
    name: &'static str,
    parent: Option<usize>,
    children: Vec<usize>,
    stat: PhaseStat,
}

struct Frame {
    node: usize,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadProfile {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<Frame>,
}

impl ThreadProfile {
    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().map(|f| f.node);
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let node = match siblings.iter().find(|&&i| self.nodes[i].name == name) {
            Some(&i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    parent,
                    children: Vec::new(),
                    stat: PhaseStat::EMPTY,
                });
                match parent {
                    Some(p) => self.nodes[p].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.stack.push(Frame {
            node,
            start: Instant::now(),
            child_ns: 0,
        });
    }

    fn exit(&mut self) {
        let frame = self.stack.pop().expect("profile scope stack underflow");
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        self.nodes[frame.node].stat.record(elapsed, frame.child_ns);
        match self.stack.last_mut() {
            Some(parent) => parent.child_ns += elapsed,
            // Outermost scope closed: publish eagerly. `thread::scope`
            // unblocks when a worker's closure returns, which can be
            // *before* the worker's TLS destructors run, so waiting for
            // the thread-exit flush would race the spawner's
            // `take_report`.
            None => self.flush(),
        }
    }

    fn path(&self, node: usize) -> String {
        let mut names = vec![self.nodes[node].name];
        let mut cur = self.nodes[node].parent;
        while let Some(p) = cur {
            names.push(self.nodes[p].name);
            cur = self.nodes[p].parent;
        }
        names.reverse();
        names.join("/")
    }

    /// Folds every completed call into the global map and zeroes the
    /// local stats (tree shape and any open frames are kept, so a
    /// mid-run flush on the owning thread is safe).
    fn flush(&mut self) {
        if self.nodes.iter().all(|n| n.stat.calls == 0) {
            return;
        }
        let mut global = flushed().lock().expect("profile flush lock");
        for i in 0..self.nodes.len() {
            if self.nodes[i].stat.calls == 0 {
                continue;
            }
            let path = self.path(i);
            global
                .entry(path)
                .or_insert(PhaseStat::EMPTY)
                .merge_from(&self.nodes[i].stat);
            self.nodes[i].stat = PhaseStat::EMPTY;
        }
    }
}

fn flushed() -> &'static Mutex<BTreeMap<String, PhaseStat>> {
    static FLUSHED: OnceLock<Mutex<BTreeMap<String, PhaseStat>>> = OnceLock::new();
    FLUSHED.get_or_init(|| Mutex::new(BTreeMap::new()))
}

struct LocalProfile(RefCell<ThreadProfile>);

impl Drop for LocalProfile {
    fn drop(&mut self) {
        self.0.get_mut().flush();
    }
}

thread_local! {
    static LOCAL: LocalProfile = LocalProfile(RefCell::new(ThreadProfile::default()));
}

/// RAII guard for one phase; created by [`scope`], credits the elapsed
/// wall time on drop.
#[must_use = "a profile scope measures until dropped"]
pub struct Scope {
    armed: bool,
}

/// Opens the named phase on the calling thread (no-op guard when
/// profiling is disabled). `name` must not contain `/` — paths join
/// names with it.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope { armed: false };
    }
    debug_assert!(!name.contains('/'), "phase names must not contain '/'");
    LOCAL.with(|local| local.0.borrow_mut().enter(name));
    Scope { armed: true }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.armed {
            LOCAL.with(|local| local.0.borrow_mut().exit());
        }
    }
}

/// Clears all accumulated profile state: the global map and the calling
/// thread's local tree. Other live threads' unflushed stats survive in
/// their thread-locals; in this workspace workers are `thread::scope`d
/// and have exited by the time a driver resets.
pub fn reset() {
    LOCAL.with(|local| {
        let mut tp = local.0.borrow_mut();
        let open = tp.stack.len();
        assert_eq!(open, 0, "profile::reset with {open} open scopes");
        *tp = ThreadProfile::default();
    });
    flushed().lock().expect("profile flush lock").clear();
}

/// Flushes the calling thread and drains the global aggregate into a
/// [`ProfileReport`], leaving the profiler empty for the next run.
pub fn take_report() -> ProfileReport {
    LOCAL.with(|local| local.0.borrow_mut().flush());
    let mut global = flushed().lock().expect("profile flush lock");
    let phases: Vec<(String, PhaseStat)> = std::mem::take(&mut *global).into_iter().collect();
    ProfileReport { phases }
}

/// An aggregated wall-clock profile: one [`PhaseStat`] per phase path,
/// path-ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// `(path, stat)` per phase, sorted by path.
    pub phases: Vec<(String, PhaseStat)>,
}

impl ProfileReport {
    /// The stat recorded under `path`, if any.
    pub fn get(&self, path: &str) -> Option<&PhaseStat> {
        self.phases
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| &self.phases[i].1)
    }

    /// Root phases: paths without a `/`.
    pub fn roots(&self) -> impl Iterator<Item = &(String, PhaseStat)> {
        self.phases.iter().filter(|(p, _)| !p.contains('/'))
    }

    /// Fraction of a root's inclusive time spent inside *named child
    /// phases*: `1 - self/total`. `None` if the root is absent or
    /// recorded no time.
    pub fn coverage(&self, root: &str) -> Option<f64> {
        let stat = self.get(root)?;
        (stat.total_ns > 0).then(|| 1.0 - stat.self_ns as f64 / stat.total_ns as f64)
    }

    /// Overall attribution: across every root phase, the fraction of
    /// measured wall time credited to a more specific named phase
    /// (`1 - Σ root self / Σ root total`). The acceptance metric for
    /// "≥90% of wall time lands in named phases".
    pub fn attributed_fraction(&self) -> f64 {
        let (mut total, mut own) = (0u64, 0u64);
        for (_, stat) in self.roots() {
            total += stat.total_ns;
            own += stat.self_ns;
        }
        if total == 0 {
            0.0
        } else {
            1.0 - own as f64 / total as f64
        }
    }

    /// Hand-rolled `albireo.profile/v1` JSON: a root summary with
    /// per-root coverage, then the flat path-keyed phase table
    /// (`perf-diff` matches phases by `path`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{PROFILE_SCHEMA}\",\n"));
        s.push_str(&format!(
            "  \"attributed_fraction\": {:.6},\n",
            self.attributed_fraction()
        ));
        let roots: Vec<&(String, PhaseStat)> = self.roots().collect();
        s.push_str("  \"roots\": [");
        for (i, (path, stat)) in roots.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"total_ns\": {}, \"self_ns\": {}, \
                 \"coverage\": {:.6}}}{}",
                crate::export::json_escape(path),
                stat.total_ns,
                stat.self_ns,
                self.coverage(path).unwrap_or(0.0),
                if i + 1 < roots.len() { "," } else { "" }
            ));
        }
        s.push_str(if roots.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"phases\": [");
        for (i, (path, stat)) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"calls\": {}, \"total_ns\": {}, \
                 \"self_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}",
                crate::export::json_escape(path),
                stat.calls,
                stat.total_ns,
                stat.self_ns,
                if stat.calls == 0 { 0 } else { stat.min_ns },
                stat.max_ns,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        s.push_str(if self.phases.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The profiler is process-global state; tests that enable it must
    /// serialize (same pattern as the parallel crate's obs tests).
    fn profile_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn spin_ns(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _guard = profile_lock();
        reset();
        {
            let _s = scope("off");
        }
        assert!(take_report().phases.is_empty());
    }

    #[test]
    fn nested_scopes_split_self_and_total() {
        let _guard = profile_lock();
        reset();
        set_enabled(true);
        {
            let _outer = scope("outer");
            spin_ns(200_000);
            for _ in 0..2 {
                let _inner = scope("inner");
                spin_ns(200_000);
            }
        }
        set_enabled(false);
        let report = take_report();
        let outer = report.get("outer").expect("outer phase");
        let inner = report.get("outer/inner").expect("inner phase");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 2);
        assert!(inner.total_ns >= 400_000);
        assert!(outer.total_ns >= inner.total_ns);
        // Outer self time excludes the inner scopes but keeps its spin.
        assert!(outer.self_ns >= 150_000);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 100_000);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(report.coverage("outer").unwrap() > 0.0);
    }

    #[test]
    fn worker_threads_flush_on_exit_and_merge_exactly() {
        let _guard = profile_lock();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _c = scope("chunk");
                    spin_ns(50_000);
                });
            }
        });
        set_enabled(false);
        let report = take_report();
        let chunk = report.get("chunk").expect("chunk phase");
        assert_eq!(chunk.calls, 4);
        assert!(chunk.total_ns >= 4 * 50_000);
        assert!(chunk.min_ns <= chunk.max_ns);
        assert!(chunk.max_ns <= chunk.total_ns);
    }

    #[test]
    fn attribution_counts_child_coverage_per_root() {
        let _guard = profile_lock();
        reset();
        set_enabled(true);
        {
            let _root = scope("root");
            let _child = scope("child");
            spin_ns(500_000);
        }
        set_enabled(false);
        let report = take_report();
        // Nearly all of root's time is inside the named child.
        assert!(report.attributed_fraction() > 0.9);
        assert_eq!(report.roots().count(), 1);
    }

    #[test]
    fn merge_is_exact_and_identity_holds() {
        let mut a = PhaseStat::EMPTY;
        a.record(100, 40);
        let mut b = PhaseStat::EMPTY;
        b.record(50, 0);
        let mut ab = a;
        ab.merge_from(&b);
        let mut ba = b;
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.calls, 2);
        assert_eq!(ab.total_ns, 150);
        assert_eq!(ab.self_ns, 110);
        assert_eq!(ab.min_ns, 50);
        assert_eq!(ab.max_ns, 100);
        let mut with_empty = a;
        with_empty.merge_from(&PhaseStat::EMPTY);
        assert_eq!(with_empty, a);
    }

    #[test]
    fn report_json_is_schema_versioned_and_balanced() {
        let _guard = profile_lock();
        reset();
        set_enabled(true);
        {
            let _s = scope("solo");
            spin_ns(10_000);
        }
        set_enabled(false);
        let json = take_report().to_json();
        assert!(json.contains("\"schema\": \"albireo.profile/v1\""));
        assert!(json.contains("\"path\": \"solo\""));
        assert!(json.contains("\"attributed_fraction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Empty report still renders valid JSON.
        let empty = take_report().to_json();
        assert!(empty.contains("\"phases\": []"));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }
}

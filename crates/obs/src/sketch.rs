//! Streaming quantile sketches: O(1)-memory percentiles with exact,
//! order-independent merge.
//!
//! [`QuantileSketch`] is a log-linear bucket sketch (the HDR-histogram
//! layout): every positive finite sample is binned by its binary
//! exponent plus the top [`SUBBUCKET_BITS`] mantissa bits, read straight
//! from the IEEE-754 bit pattern — no float arithmetic, no rounding, no
//! platform dependence. With 5 mantissa bits each octave splits into 32
//! sub-buckets, so adjacent bucket boundaries are at most a factor of
//! 33/32 apart and any quantile estimate (the geometric midpoint of the
//! bucket holding the target rank, clamped to the observed `[min, max]`)
//! is within [`RELATIVE_ERROR_BOUND`] ≈ 1.6 % of the exact nearest-rank
//! value — at *any* stream length, for *any* distribution.
//!
//! The state is a sparse map of bucket counts plus exact `count`/`zeros`
//! /`invalid`/`min`/`max`, so the sketch obeys the same **exact abelian
//! monoid** discipline as [`crate::metrics::HistogramData`]: counts add,
//! extrema take extrema, nothing is re-binned. Merge is associative and
//! commutative by construction, the identity is the empty sketch, and
//! two states built from the same multiset of samples are `Eq` — hence
//! digest-stable — no matter how the samples were sharded or in which
//! order the shards were merged (property-tested in
//! `tests/proptest_sketch.rs`).
//!
//! Memory is bounded by the bucket space, not the stream: at most
//! [`MAX_BUCKETS`] (4096) occupied buckets cover the full positive
//! `f64` range, and a real latency distribution spanning six decades
//! touches a few hundred. A `Vec<f64>` of 10⁷ latency samples costs
//! 80 MB and O(n log n) to sort; the sketch costs a few KB and O(1)
//! per observation.

use std::collections::BTreeMap;

/// Mantissa bits used for sub-bucketing (32 sub-buckets per octave).
pub const SUBBUCKET_BITS: u32 = 5;

/// Sub-buckets per binary order of magnitude.
pub const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS;

/// Smallest binary exponent with its own octave; values below
/// `2^MIN_EXP` clamp into bucket 0. Matches the metrics histogram range.
pub const MIN_EXP: i32 = -64;

/// Octaves covered (exponents `MIN_EXP ..= MIN_EXP + OCTAVES - 1`).
pub const OCTAVES: i32 = 128;

/// Total bucket space: 128 octaves × 32 sub-buckets.
pub const MAX_BUCKETS: usize = (OCTAVES as usize) * (SUBBUCKETS as usize);

/// Guaranteed bound on the relative error of [`QuantileSketch::quantile`]
/// versus the exact nearest-rank quantile of the observed samples:
/// `sqrt(33/32) - 1` ≈ 0.0155. The estimate is the geometric midpoint of
/// a bucket whose boundary ratio is at most `33/32`, and the exact value
/// lies in the same bucket.
pub const RELATIVE_ERROR_BOUND: f64 = 0.015_505; // sqrt(33/32) - 1, rounded up

/// The bucket a positive finite value lands in: binary exponent (clamped
/// to the sketch range) concatenated with the top mantissa bits.
/// Subnormals clamp into bucket 0.
pub fn bucket_index(v: f64) -> u16 {
    debug_assert!(v > 0.0 && v.is_finite());
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7FF) as i32;
    if biased == 0 {
        return 0; // subnormal: below 2^-1022, far under 2^MIN_EXP
    }
    let exp = biased - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp >= MIN_EXP + OCTAVES {
        return (MAX_BUCKETS - 1) as u16;
    }
    let sub = (bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS - 1);
    (((exp - MIN_EXP) as u64 * SUBBUCKETS) + sub) as u16
}

/// The half-open value range `[lo, hi)` bucket `i` covers.
pub fn bucket_bounds(i: u16) -> (f64, f64) {
    assert!((i as usize) < MAX_BUCKETS, "bucket index out of range");
    let exp = MIN_EXP + (i as i32) / (SUBBUCKETS as i32);
    let sub = (i as u64) % SUBBUCKETS;
    let base = (2.0f64).powi(exp);
    let lo = base * (1.0 + sub as f64 / SUBBUCKETS as f64);
    let hi = base * (1.0 + (sub + 1) as f64 / SUBBUCKETS as f64);
    (lo, hi)
}

/// A mergeable streaming quantile sketch of non-negative samples.
///
/// Zeros are counted exactly in their own slot; negative and non-finite
/// samples are rejected into `invalid` (mirroring
/// [`crate::metrics::Histogram`]), so the bucketed population is exactly
/// the positive finite one and quantiles are taken over the valid
/// (zero + positive) population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: BTreeMap<u16, u64>,
    zeros: u64,
    invalid: u64,
    /// Min over valid samples as bits (`u64::MAX` = empty); bit order
    /// equals numeric order for non-negative floats.
    min_bits: u64,
    /// Max over valid samples as bits (0 when empty).
    max_bits: u64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch {
            buckets: BTreeMap::new(),
            zeros: 0,
            invalid: 0,
            min_bits: u64::MAX,
            max_bits: 0,
        }
    }
}

impl QuantileSketch {
    /// The empty sketch (the monoid identity).
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// Records one sample. O(log occupied-buckets), O(1) amortized
    /// memory (bucket space is capped at [`MAX_BUCKETS`]).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.invalid += 1;
            return;
        }
        if v == 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
        let bits = v.to_bits();
        self.min_bits = self.min_bits.min(bits);
        self.max_bits = self.max_bits.max(bits);
    }

    /// Valid (non-negative finite) samples recorded.
    pub fn count(&self) -> u64 {
        self.zeros + self.buckets.values().sum::<u64>()
    }

    /// Samples exactly zero.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Rejected samples (negative or non-finite).
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// Minimum valid sample, if any (exact).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.min_bits))
    }

    /// Maximum valid sample, if any (exact).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.max_bits))
    }

    /// Occupied buckets — the sketch's resident size, bounded by
    /// [`MAX_BUCKETS`] regardless of stream length.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The nearest-rank `q`-quantile estimate (`q ∈ [0, 1]`), within
    /// [`RELATIVE_ERROR_BOUND`] of the exact nearest-rank value.
    ///
    /// Edge cases are exact: an empty sketch returns 0.0, a rank inside
    /// the zero population returns 0.0, and clamping to the observed
    /// `[min, max]` makes single-sample (and single-bucket-extremum)
    /// quantiles exact rather than interpolated.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
        if rank <= self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (&idx, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let mid = (lo * hi).sqrt();
                let min = f64::from_bits(self.min_bits);
                let max = f64::from_bits(self.max_bits);
                return mid.clamp(min, max);
            }
        }
        // Unreachable: cum == count >= rank by the clamp above.
        f64::from_bits(self.max_bits)
    }

    /// Exact merge: bucket counts add, extrema take extrema.
    /// Associative and commutative because every term is; the empty
    /// sketch is the identity.
    pub fn merge(&self, other: &QuantileSketch) -> QuantileSketch {
        let mut out = self.clone();
        out.merge_from(other);
        out
    }

    /// In-place [`QuantileSketch::merge`].
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zeros += other.zeros;
        self.invalid += other.invalid;
        self.min_bits = self.min_bits.min(other.min_bits);
        self.max_bits = self.max_bits.max(other.max_bits);
    }

    /// `(bucket index, count)` for every occupied bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u16, u64)> {
        self.buckets.iter().map(|(&i, &c)| (i, c)).collect()
    }

    /// Min over valid samples as IEEE-754 bits (`u64::MAX` = empty).
    /// Together with [`QuantileSketch::from_parts`] this exposes the
    /// sketch's exact state for snapshot serialization.
    pub fn min_bits(&self) -> u64 {
        self.min_bits
    }

    /// Max over valid samples as IEEE-754 bits (0 when empty).
    pub fn max_bits(&self) -> u64 {
        self.max_bits
    }

    /// Rebuilds a sketch from previously captured state — the exact
    /// inverse of reading [`QuantileSketch::nonzero_buckets`], `zeros`,
    /// `invalid`, [`min_bits`](QuantileSketch::min_bits), and
    /// [`max_bits`](QuantileSketch::max_bits). A sketch round-tripped
    /// through its parts is `Eq` to the original, so quantiles, digests,
    /// and merges continue byte-identically.
    pub fn from_parts(
        buckets: &[(u16, u64)],
        zeros: u64,
        invalid: u64,
        min_bits: u64,
        max_bits: u64,
    ) -> QuantileSketch {
        let mut map = BTreeMap::new();
        for &(idx, c) in buckets {
            assert!((idx as usize) < MAX_BUCKETS, "bucket index out of range");
            if c > 0 {
                map.insert(idx, c);
            }
        }
        QuantileSketch {
            buckets: map,
            zeros,
            invalid,
            min_bits,
            max_bits,
        }
    }

    /// Order-sensitive digest over the canonical (name-ordered) state,
    /// with the workspace fold convention. Two sketches digest equal iff
    /// they hold the same state — regardless of observation sharding or
    /// merge order.
    pub fn digest(&self) -> u64 {
        let mut d = 0x5CE7_C4A1u64;
        d = crate::fold(d, self.zeros);
        d = crate::fold(d, self.invalid);
        d = crate::fold(d, self.min_bits);
        d = crate::fold(d, self.max_bits);
        for (&idx, &c) in &self.buckets {
            d = crate::fold(d, idx as u64);
            d = crate::fold(d, c);
        }
        d
    }

    /// One-line JSON fragment (an object, no trailing newline) used by
    /// [`crate::MetricsSnapshot::to_json`].
    pub fn to_json_fragment(&self) -> String {
        format!(
            "{{\"count\": {}, \"zeros\": {}, \"invalid\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [{}]}}",
            self.count(),
            self.zeros,
            self.invalid,
            sci(self.min().unwrap_or(0.0)),
            sci(self.max().unwrap_or(0.0)),
            sci(self.quantile(0.50)),
            sci(self.quantile(0.95)),
            sci(self.quantile(0.99)),
            sci(self.quantile(0.999)),
            self.buckets
                .iter()
                .map(|(i, c)| format!("[{i}, {c}]"))
                .collect::<Vec<String>>()
                .join(", "),
        )
    }
}

/// JSON float in deterministic scientific notation (`null` if non-finite).
fn sci(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_layout_is_log_linear() {
        // 1.0 = 2^0 × (1 + 0/32) → octave 64, sub-bucket 0.
        assert_eq!(bucket_index(1.0), 64 * SUBBUCKETS as u16);
        // Within one octave the sub-bucket advances with the mantissa.
        assert_eq!(bucket_index(1.0 + 1.0 / 32.0), 64 * SUBBUCKETS as u16 + 1);
        assert!(bucket_index(1.999) > bucket_index(1.001));
        assert_eq!(bucket_index(2.0), 65 * SUBBUCKETS as u16);
        // Bounds invert the index.
        for v in [1e-9, 0.37, 1.0, 1.5, 42.0, 9.9e11] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            assert!(hi / lo <= 33.0 / 32.0 + 1e-12);
        }
        // Extremes clamp instead of overflowing.
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0);
        assert_eq!(bucket_index(f64::MAX), (MAX_BUCKETS - 1) as u16);
    }

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.occupied_buckets(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut s = QuantileSketch::new();
        s.observe(3.7);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 3.7, "q={q}");
        }
    }

    #[test]
    fn quantiles_meet_the_relative_error_bound() {
        let mut s = QuantileSketch::new();
        let mut samples: Vec<f64> = (0..5000)
            .map(|i| 1e-4 * (1.0031f64).powi(i % 2500) + i as f64 * 1e-9)
            .collect();
        for &v in &samples {
            s.observe(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = exact_nearest_rank(&samples, q);
            let est = s.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= RELATIVE_ERROR_BOUND,
                "q={q}: {est} vs {exact} ({rel})"
            );
        }
    }

    #[test]
    fn zeros_and_invalid_are_segregated() {
        let mut s = QuantileSketch::new();
        for v in [0.0, 0.0, 5.0, f64::NAN, -1.0, f64::INFINITY] {
            s.observe(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.zeros(), 2);
        assert_eq!(s.invalid(), 3);
        assert_eq!(s.quantile(0.5), 0.0); // rank 2 of 3 lands in the zeros
        assert_eq!(s.quantile(1.0), 5.0);
    }

    #[test]
    fn merge_equals_union_and_commutes() {
        let (mut a, mut b, mut all) = (
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        );
        for (i, v) in [1e-9, 0.25, 7.0, 1e12, 0.0, 3.3].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            all.observe(*v);
        }
        assert_eq!(a.merge(&b), all);
        assert_eq!(b.merge(&a), all);
        assert_eq!(a.merge(&b).digest(), all.digest());
        assert_eq!(a.merge(&QuantileSketch::new()), a);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut s = QuantileSketch::new();
        for i in 0..1000 {
            s.observe(0.1 + (i as f64) * 0.013);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut s = QuantileSketch::new();
        for v in [0.0, 1e-9, 0.25, 7.0, 1e12, f64::NAN, -3.0] {
            s.observe(v);
        }
        let rebuilt = QuantileSketch::from_parts(
            &s.nonzero_buckets(),
            s.zeros(),
            s.invalid(),
            s.min_bits(),
            s.max_bits(),
        );
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.digest(), s.digest());
        assert_eq!(rebuilt.quantile(0.99), s.quantile(0.99));
        // The empty sketch round-trips to the identity.
        let empty = QuantileSketch::new();
        assert_eq!(QuantileSketch::from_parts(&[], 0, 0, u64::MAX, 0), empty);
    }

    #[test]
    fn json_fragment_is_balanced_and_carries_percentiles() {
        let mut s = QuantileSketch::new();
        s.observe(1.5);
        s.observe(2.5);
        let j = s.to_json_fragment();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"p99\""));
        assert!(j.contains("\"count\": 2"));
    }
}

//! Property tests for the quantile sketch's load-bearing claims: the
//! merge is an exact abelian monoid (so million-request runs can shard
//! observation and combine in any grouping, and the digest cannot tell
//! the difference), and every quantile estimate stays within the
//! documented relative-error bound of the exact nearest-rank value
//! computed from a full sort.

use albireo_obs::{QuantileSketch, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// Builds a sketch from raw samples.
fn observed(samples: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in samples {
        s.observe(v);
    }
    s
}

/// Arbitrary sample sets: positive magnitudes across many decades plus
/// the special cases the sketch must segregate (zero, negatives,
/// non-finite).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => 1e-12f64..1e12,
            1 => Just(0.0f64),
            1 => -1e6f64..0.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
        ],
        0..80,
    )
}

/// The exact nearest-rank quantile over the valid population (zeros and
/// positives), matching the sketch's population definition.
fn exact_nearest_rank(samples: &[f64], q: f64) -> Option<f64> {
    let mut valid: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .collect();
    if valid.is_empty() {
        return None;
    }
    valid.sort_by(f64::total_cmp);
    let rank = ((valid.len() as f64 * q).ceil() as usize).clamp(1, valid.len());
    Some(valid[rank - 1])
}

proptest! {
    /// Merge is commutative: shard order must not matter.
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (sa, sb) = (observed(&a), observed(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    /// Merge is associative: the reduction tree shape must not matter.
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (sa, sb, sc) = (observed(&a), observed(&b), observed(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// The empty sketch is the identity element.
    #[test]
    fn empty_is_identity(a in samples()) {
        let sa = observed(&a);
        let empty = QuantileSketch::new();
        prop_assert_eq!(sa.merge(&empty), sa.clone());
        prop_assert_eq!(empty.merge(&sa), sa);
    }

    /// Any sharding of one stream rebuilds the same state — and the same
    /// digest — as observing it whole, no matter where the split lands or
    /// in which order the shards merge.
    #[test]
    fn sharding_is_invisible_to_state_and_digest(
        a in samples(),
        split in 0.0f64..1.0,
    ) {
        let cut = (a.len() as f64 * split) as usize;
        let whole = observed(&a);
        let (lo, hi) = (observed(&a[..cut]), observed(&a[cut..]));
        prop_assert_eq!(lo.merge(&hi), whole.clone());
        prop_assert_eq!(lo.merge(&hi).digest(), whole.digest());
        prop_assert_eq!(hi.merge(&lo).digest(), whole.digest());
    }

    /// Merging preserves the exact population counts and extrema.
    #[test]
    fn merge_preserves_counts_and_extrema(a in samples(), b in samples()) {
        let merged = observed(&a).merge(&observed(&b));
        let valid: Vec<f64> = a.iter().chain(&b).copied()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .collect();
        prop_assert_eq!(merged.count(), valid.len() as u64);
        prop_assert_eq!(
            merged.invalid(),
            (a.len() + b.len()) as u64 - valid.len() as u64
        );
        match (merged.min(), merged.max()) {
            (Some(lo), Some(hi)) => {
                prop_assert_eq!(lo, valid.iter().copied().fold(f64::INFINITY, f64::min));
                prop_assert_eq!(hi, valid.iter().copied().fold(0.0f64, f64::max));
            }
            _ => prop_assert!(valid.is_empty()),
        }
    }

    /// Every quantile estimate lands within the documented relative-error
    /// bound of the exact nearest-rank value (exactly 0.0 when the rank
    /// falls in the zero population).
    #[test]
    fn quantiles_meet_the_error_bound(a in samples(), q in 0.0f64..=1.0) {
        let s = observed(&a);
        match exact_nearest_rank(&a, q) {
            None => prop_assert_eq!(s.quantile(q), 0.0),
            Some(exact) => {
                let est = s.quantile(q);
                if exact == 0.0 {
                    prop_assert_eq!(est, 0.0);
                } else {
                    let rel = (est - exact).abs() / exact;
                    prop_assert!(
                        rel <= RELATIVE_ERROR_BOUND,
                        "q={q}: estimate {est} vs exact {exact} (rel {rel})"
                    );
                }
            }
        }
    }

    /// Quantiles are monotone in q and clamped to the observed extrema.
    #[test]
    fn quantiles_are_monotone_and_clamped(a in samples()) {
        let s = observed(&a);
        let qs: Vec<f64> = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{:?}", qs);
        if let (Some(min), Some(max)) = (s.min(), s.max()) {
            prop_assert!(qs.iter().all(|&v| (0.0..=max).contains(&v)));
            prop_assert!(s.quantile(1.0) <= max);
            prop_assert!(s.quantile(1.0) >= min || s.zeros() > 0);
        }
    }

    /// The `record_cap` contract from the serving runtime, stated at the
    /// sketch level: the per-request record list is truncated at the cap
    /// but the sketch observes *every* sample, as the capped prefix
    /// merged with the overflow suffix. That split must be invisible —
    /// same state, same digest, bitwise-identical quantiles — wherever
    /// the cap lands (including 0 and past the end).
    #[test]
    fn record_cap_truncation_is_invisible_to_the_sketch(
        a in samples(),
        cap in 0usize..100,
    ) {
        let cap = cap.min(a.len());
        let whole = observed(&a);
        let kept = observed(&a[..cap]);
        let overflow = observed(&a[cap..]);
        let rebuilt = kept.merge(&overflow);
        prop_assert_eq!(&rebuilt, &whole);
        prop_assert_eq!(rebuilt.digest(), whole.digest());
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            prop_assert!(
                rebuilt.quantile(q).to_bits() == whole.quantile(q).to_bits(),
                "quantile {} differs under cap {}", q, cap
            );
        }
        prop_assert_eq!(rebuilt.to_json_fragment(), whole.to_json_fragment());
    }

    /// Subnormal and zero observations are valid sketch samples:
    /// subnormals clamp into bucket 0 (never `invalid`), zeros stay in
    /// their exact slot, and extrema remain exact.
    #[test]
    fn subnormals_and_zeros_are_valid_samples(
        bits in 1u64..(1u64 << 52),
        zeros in 0usize..4,
    ) {
        let v = f64::from_bits(bits); // all such patterns are subnormal
        let mut s = QuantileSketch::new();
        s.observe(v);
        for _ in 0..zeros {
            s.observe(0.0);
        }
        prop_assert_eq!(s.count(), 1 + zeros as u64);
        prop_assert_eq!(s.zeros(), zeros as u64);
        prop_assert_eq!(s.invalid(), 0);
        prop_assert_eq!(s.max(), Some(v));
        prop_assert_eq!(s.min(), Some(if zeros > 0 { 0.0 } else { v }));
        prop_assert_eq!(albireo_obs::sketch::bucket_index(v), 0);
        // The monoid laws hold on the edge population too.
        let doubled = s.merge(&s);
        prop_assert_eq!(doubled.count(), 2 * s.count());
        prop_assert_eq!(doubled.min(), s.min());
        prop_assert_eq!(s.merge(&QuantileSketch::new()), s.clone());
    }
}

//! Property tests for the observability invariants everything downstream
//! leans on: histogram merge must behave like an exact abelian monoid
//! (so parallel workers can combine shards in any grouping and order),
//! and the span layer must hand every consumer a balanced, time-ordered
//! event stream no matter how events were interleaved when recorded.

use albireo_obs::metrics::{bucket_index, bucket_lower_bound, Histogram, HistogramData};
use albireo_obs::span::Phase;
use albireo_obs::Obs;
use proptest::prelude::*;

/// Builds a histogram data block from raw samples (including zeros,
/// negatives, and non-finite values — `observe` must sort them itself).
fn observed(samples: &[f64]) -> HistogramData {
    let h = Histogram::default();
    for &s in samples {
        h.observe(s);
    }
    h.data()
}

/// Arbitrary sample sets: finite magnitudes across the full bucket range
/// plus the special cases (zero, subnormals, negatives, NaN, infinity).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => 1e-18f64..1e18,
            1 => Just(0.0f64),
            1 => -1e9f64..0.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => (1u64..(1u64 << 52)).prop_map(f64::from_bits),
        ],
        0..64,
    )
}

proptest! {
    /// Merging preserves the total count exactly: every observation lands
    /// in exactly one of buckets / zeros / invalid, and merge adds them.
    #[test]
    fn merge_preserves_counts(a in samples(), b in samples()) {
        let (da, db) = (observed(&a), observed(&b));
        let merged = da.merge(&db);
        prop_assert_eq!(merged.count(), da.count() + db.count());
        prop_assert_eq!(merged.zeros, da.zeros + db.zeros);
        prop_assert_eq!(merged.invalid, da.invalid + db.invalid);
        // Valid = finite and non-negative (zeros count; negatives and
        // non-finite land in `invalid`).
        let valid = |v: &&f64| v.is_finite() && **v >= 0.0;
        let expected: u64 =
            a.iter().filter(valid).count() as u64 + b.iter().filter(valid).count() as u64;
        prop_assert_eq!(merged.count(), expected);
        let invalid_expected =
            (a.len() as u64 - a.iter().filter(valid).count() as u64)
                + (b.len() as u64 - b.iter().filter(valid).count() as u64);
        prop_assert_eq!(merged.invalid, invalid_expected);
    }

    /// Merge is commutative: shard order must not matter.
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let (da, db) = (observed(&a), observed(&b));
        prop_assert_eq!(da.merge(&db), db.merge(&da));
    }

    /// Merge is associative: the reduction tree shape must not matter.
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (da, db, dc) = (observed(&a), observed(&b), observed(&c));
        prop_assert_eq!(da.merge(&db).merge(&dc), da.merge(&db.merge(&dc)));
    }

    /// The empty histogram is the identity element.
    #[test]
    fn empty_is_identity(a in samples()) {
        let da = observed(&a);
        let empty = HistogramData::default();
        prop_assert_eq!(da.merge(&empty), da.clone());
        prop_assert_eq!(empty.merge(&da), da);
    }

    /// Merged extrema equal the extrema of the union of samples.
    #[test]
    fn merge_tracks_extrema(a in samples(), b in samples()) {
        let merged = observed(&a).merge(&observed(&b));
        let valid: Vec<f64> = a.iter().chain(&b).copied()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .collect();
        match (merged.min(), merged.max()) {
            (Some(lo), Some(hi)) => {
                let want_lo = valid.iter().copied().fold(f64::INFINITY, f64::min);
                let want_hi = valid.iter().copied().fold(0.0f64, f64::max);
                prop_assert_eq!(lo, want_lo);
                prop_assert_eq!(hi, want_hi);
            }
            _ => prop_assert!(valid.is_empty()),
        }
    }

    /// Bucket boundaries are monotonically increasing, and every sample
    /// lands in a bucket whose range actually contains it (away from the
    /// clamped ends of the exponent range).
    #[test]
    fn buckets_are_monotone_and_contain_their_samples(v in 1e-15f64..1e15) {
        let idx = bucket_index(v);
        let lo = bucket_lower_bound(idx);
        let hi = bucket_lower_bound(idx + 1);
        prop_assert!(hi > lo, "bucket bounds not increasing at {idx}");
        prop_assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi}) at bucket {idx}");
    }

    /// Spans drained from an Obs are balanced per track (every Begin has
    /// a matching later End) with non-decreasing virtual timestamps in
    /// the drained order, regardless of recording interleavings.
    /// Durations are strictly positive: at equal timestamps Ends sort
    /// before Begins (so back-to-back spans nest cleanly), which makes a
    /// zero-width span degenerate by design.
    #[test]
    fn spans_drain_balanced_and_time_ordered(
        spans in prop::collection::vec(
            (0u32..6, 0.0f64..100.0, 1e-6f64..10.0),
            0..40,
        ),
    ) {
        let obs = Obs::enabled();
        for &(track, begin, dur) in &spans {
            obs.record_span(track, begin, begin + dur, "work", Vec::new());
        }
        let events = obs.drain_events();
        prop_assert_eq!(events.len(), spans.len() * 2);
        let mut depth = std::collections::BTreeMap::new();
        let mut last_ts = f64::NEG_INFINITY;
        for ev in &events {
            prop_assert!(ev.ts_s >= last_ts, "timestamps went backwards");
            last_ts = ev.ts_s;
            let d = depth.entry(ev.track).or_insert(0i64);
            match ev.phase {
                Phase::Begin => *d += 1,
                Phase::End => {
                    *d -= 1;
                    prop_assert!(*d >= 0, "End before Begin on track {}", ev.track);
                }
                _ => {}
            }
        }
        for (track, d) in depth {
            prop_assert!(d == 0, "unbalanced spans on track {}", track);
        }
    }

    /// Subnormal observations are *valid* samples: they clamp into the
    /// bottom bucket (never `invalid`, never `zeros`) and set exact
    /// extrema, so a duration of a few femtoseconds cannot silently
    /// vanish from a histogram.
    #[test]
    fn subnormal_observations_land_in_the_bottom_bucket(
        bits in 1u64..(1u64 << 52),
    ) {
        let v = f64::from_bits(bits); // every such pattern is subnormal
        prop_assert!(v > 0.0 && !v.is_normal());
        let h = Histogram::default();
        h.observe(v);
        let d = h.data();
        prop_assert_eq!(d.count(), 1);
        prop_assert_eq!(d.zeros, 0);
        prop_assert_eq!(d.invalid, 0);
        prop_assert_eq!(bucket_index(v), 0);
        prop_assert_eq!(d.buckets[0], 1);
        prop_assert_eq!(d.min(), Some(v));
        prop_assert_eq!(d.max(), Some(v));
        prop_assert!(d.mean_estimate() > 0.0 && d.mean_estimate().is_finite());
    }

    /// Zero-duration observations count in `zeros` (not any bucket) and
    /// participate in extrema; negative durations land in `invalid` and
    /// must not poison count, extrema, or the mean estimate.
    #[test]
    fn zeros_and_negative_durations_stay_segregated(
        zeros in 0usize..5,
        negatives in prop::collection::vec(-1e12f64..0.0, 0..5),
        positives in prop::collection::vec(1e-9f64..1e9, 0..5),
    ) {
        let h = Histogram::default();
        for _ in 0..zeros {
            h.observe(0.0);
        }
        for &v in negatives.iter().chain(&positives) {
            h.observe(v);
        }
        let d = h.data();
        prop_assert_eq!(d.zeros, zeros as u64);
        prop_assert_eq!(d.invalid, negatives.len() as u64);
        prop_assert_eq!(d.count(), (zeros + positives.len()) as u64);
        prop_assert!(d.buckets.iter().sum::<u64>() == positives.len() as u64);
        if zeros > 0 {
            prop_assert_eq!(d.min(), Some(0.0));
        } else if let Some(min) = d.min() {
            // Negatives never become the minimum.
            prop_assert!(min > 0.0);
        }
        if let Some(max) = d.max() {
            prop_assert!(max >= 0.0);
        }
        let mean = d.mean_estimate();
        prop_assert!(mean.is_finite() && mean >= 0.0);
        // A histogram of only zeros and rejects reports a zero mean.
        if positives.is_empty() {
            prop_assert_eq!(mean, 0.0);
        }
    }
}

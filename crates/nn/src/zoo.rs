//! The benchmark networks of the Albireo evaluation (paper §IV-A):
//! AlexNet, VGG16, ResNet18, and MobileNet v1.
//!
//! Geometries are the standard published ones. Two notes on shape
//! conventions:
//!
//! * The paper's output-extent formula (Eq. 1) uses a ceiling where most
//!   frameworks use a floor; where a stride-2 layer's division is inexact
//!   the zoo uses the padding choice that makes the division land on the
//!   standard extent (e.g. ResNet18's stride-2 3×3 convolutions use the
//!   `P = 0` form so that `56 → 28 → 14 → 7` exactly).
//! * AlexNet uses its original 227×227 input (the dimension that makes the
//!   classic `55 → 27 → 13 → 6` chain exact) and the original two-group
//!   convolutions for conv2/4/5.

use crate::layer::{LayerKind, VolumeShape};
use crate::model::Model;

/// AlexNet (paper ref. \[31\]) with grouped convolutions.
pub fn alexnet() -> Model {
    let mut b = Model::builder("AlexNet", VolumeShape::new(3, 227, 227));
    b.push("conv1", LayerKind::conv(96, 11, 4, 0))
        .and_then(|b| {
            b.push(
                "pool1",
                LayerKind::MaxPool {
                    window: 3,
                    stride: 2,
                },
            )
        })
        .and_then(|b| b.push("conv2", LayerKind::conv_grouped(256, 5, 1, 2, 2)))
        .and_then(|b| {
            b.push(
                "pool2",
                LayerKind::MaxPool {
                    window: 3,
                    stride: 2,
                },
            )
        })
        .and_then(|b| b.push("conv3", LayerKind::conv(384, 3, 1, 1)))
        .and_then(|b| b.push("conv4", LayerKind::conv_grouped(384, 3, 1, 1, 2)))
        .and_then(|b| b.push("conv5", LayerKind::conv_grouped(256, 3, 1, 1, 2)))
        .and_then(|b| {
            b.push(
                "pool5",
                LayerKind::MaxPool {
                    window: 3,
                    stride: 2,
                },
            )
        })
        .and_then(|b| b.push("fc6", LayerKind::FullyConnected { outputs: 4096 }))
        .and_then(|b| b.push("fc7", LayerKind::FullyConnected { outputs: 4096 }))
        .and_then(|b| b.push("fc8", LayerKind::FullyConnected { outputs: 1000 }))
        .expect("AlexNet geometry is valid");
    b.build().expect("AlexNet builds")
}

/// VGG16 (paper ref. \[53\]): thirteen 3×3 convolutions and three FC layers.
pub fn vgg16() -> Model {
    let mut b = Model::builder("VGG16", VolumeShape::new(3, 224, 224));
    let blocks: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut idx = 1;
    for (block, &(channels, convs)) in blocks.iter().enumerate() {
        for c in 0..convs {
            b.push(
                format!("conv{}_{}", block + 1, c + 1),
                LayerKind::conv(channels, 3, 1, 1),
            )
            .expect("VGG16 conv geometry is valid");
            idx += 1;
        }
        b.push(
            format!("pool{}", block + 1),
            LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
        )
        .expect("VGG16 pool geometry is valid");
    }
    let _ = idx;
    b.push("fc6", LayerKind::FullyConnected { outputs: 4096 })
        .and_then(|b| b.push("fc7", LayerKind::FullyConnected { outputs: 4096 }))
        .and_then(|b| b.push("fc8", LayerKind::FullyConnected { outputs: 1000 }))
        .expect("VGG16 FC geometry is valid");
    b.build().expect("VGG16 builds")
}

/// ResNet18 (paper ref. \[24\]): the 2-2-2-2 basic-block residual network,
/// with projection shortcuts modelled as branch layers.
pub fn resnet18() -> Model {
    let mut b = Model::builder("ResNet18", VolumeShape::new(3, 224, 224));
    b.push("conv1", LayerKind::conv(64, 7, 2, 2))
        .and_then(|b| {
            b.push(
                "pool1",
                LayerKind::MaxPool {
                    window: 3,
                    stride: 2,
                },
            )
        })
        .expect("ResNet18 stem geometry is valid");

    // Stage 1: two basic blocks at 56×56, 64 channels.
    for block in 0..2 {
        for conv in 0..2 {
            b.push(
                format!("layer1.{block}.conv{}", conv + 1),
                LayerKind::conv(64, 3, 1, 1),
            )
            .expect("ResNet18 stage-1 geometry is valid");
        }
    }

    // Stages 2–4: first block downsamples (stride-2, exact-division padding)
    // with a 1×1 projection branch.
    for (stage, channels) in [(2, 128), (3, 256), (4, 512)] {
        let stage_input = b.trunk_shape();
        b.push(
            format!("layer{stage}.0.conv1"),
            LayerKind::conv(channels, 3, 2, 0),
        )
        .and_then(|b| {
            b.push(
                format!("layer{stage}.0.conv2"),
                LayerKind::conv(channels, 3, 1, 1),
            )
        })
        .expect("ResNet18 downsample geometry is valid");
        b.push_branch(
            format!("layer{stage}.0.proj"),
            LayerKind::conv(channels, 1, 2, 0),
            stage_input,
        )
        .expect("ResNet18 projection geometry is valid");
        for conv in 0..2 {
            b.push(
                format!("layer{stage}.1.conv{}", conv + 1),
                LayerKind::conv(channels, 3, 1, 1),
            )
            .expect("ResNet18 stage geometry is valid");
        }
    }

    b.push(
        "avgpool",
        LayerKind::AvgPool {
            window: 7,
            stride: 7,
        },
    )
    .and_then(|b| b.push("fc", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("ResNet18 head geometry is valid");
    b.build().expect("ResNet18 builds")
}

/// MobileNet v1 (paper ref. \[26\]): depthwise-separable convolutions.
pub fn mobilenet() -> Model {
    let mut b = Model::builder("MobileNet", VolumeShape::new(3, 224, 224));
    b.push("conv1", LayerKind::conv(32, 3, 2, 0))
        .expect("MobileNet stem geometry is valid");

    // (output channels of the pointwise, depthwise stride)
    let blocks: &[(usize, usize)] = &[
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(out_ch, stride)) in blocks.iter().enumerate() {
        let padding = if stride == 1 { 1 } else { 0 };
        b.push(
            format!("dw{}", i + 1),
            LayerKind::Depthwise {
                kernel: 3,
                stride,
                padding,
            },
        )
        .and_then(|b| {
            b.push(
                format!("pw{}", i + 1),
                LayerKind::Pointwise { kernels: out_ch },
            )
        })
        .expect("MobileNet block geometry is valid");
    }

    b.push(
        "avgpool",
        LayerKind::AvgPool {
            window: 7,
            stride: 7,
        },
    )
    .and_then(|b| b.push("fc", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("MobileNet head geometry is valid");
    b.build().expect("MobileNet builds")
}

/// All four benchmark networks, in the order the paper plots them.
pub fn all_benchmarks() -> Vec<Model> {
    vec![alexnet(), vgg16(), resnet18(), mobilenet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_standard_shapes() {
        let m = alexnet();
        let by_name = |n: &str| {
            m.layers()
                .iter()
                .find(|l| l.name == n)
                .unwrap_or_else(|| panic!("layer {n}"))
        };
        assert_eq!(by_name("conv1").output, VolumeShape::new(96, 55, 55));
        assert_eq!(by_name("conv2").output, VolumeShape::new(256, 27, 27));
        assert_eq!(by_name("conv5").output, VolumeShape::new(256, 13, 13));
        assert_eq!(by_name("fc6").input.elements(), 9216);
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
    }

    #[test]
    fn alexnet_macs_match_published() {
        // Grouped AlexNet ≈ 0.72 GMACs.
        let g = alexnet().total_macs() as f64 / 1e9;
        assert!((0.65..0.80).contains(&g), "gmacs = {g}");
    }

    #[test]
    fn vgg16_shapes_and_macs() {
        let m = vgg16();
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        // 13 convs + 5 pools + 3 FCs = 21 layers.
        assert_eq!(m.layers().len(), 21);
        let g = m.total_macs() as f64 / 1e9;
        assert!((15.2..15.8).contains(&g), "gmacs = {g}");
        // ~138 M params.
        let p = m.total_params() as f64 / 1e6;
        assert!((130.0..145.0).contains(&p), "params = {p}");
    }

    #[test]
    fn resnet18_shapes_and_macs() {
        let m = resnet18();
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        // Trunk spatial chain 112 → 56 → 28 → 14 → 7.
        let l4 = m
            .layers()
            .iter()
            .find(|l| l.name == "layer4.1.conv2")
            .unwrap();
        assert_eq!(l4.output, VolumeShape::new(512, 7, 7));
        let g = m.total_macs() as f64 / 1e9;
        // Published ≈ 1.82 GMACs.
        assert!((1.6..2.0).contains(&g), "gmacs = {g}");
    }

    #[test]
    fn resnet18_has_three_projection_branches() {
        let m = resnet18();
        let branches: Vec<_> = m.layers().iter().filter(|l| l.is_branch).collect();
        assert_eq!(branches.len(), 3);
        for b in branches {
            assert!(b.name.ends_with(".proj"));
        }
    }

    #[test]
    fn mobilenet_shapes_and_macs() {
        let m = mobilenet();
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        let g = m.total_macs() as f64 / 1e9;
        // Published ≈ 0.57 GMACs.
        assert!((0.5..0.65).contains(&g), "gmacs = {g}");
        // ~4.2 M params.
        let p = m.total_params() as f64 / 1e6;
        assert!((3.8..4.6).contains(&p), "params = {p}");
    }

    #[test]
    fn mobilenet_alternates_depthwise_pointwise() {
        let m = mobilenet();
        let dw = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Depthwise { .. }))
            .count();
        let pw = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Pointwise { .. }))
            .count();
        assert_eq!(dw, 13);
        assert_eq!(pw, 13);
    }

    #[test]
    fn mobilenet_spatial_chain() {
        let m = mobilenet();
        let last_dw = m.layers().iter().rev().find(|l| l.name.starts_with("dw"));
        assert_eq!(last_dw.unwrap().output.y, 7);
    }

    #[test]
    fn all_benchmarks_has_four_networks() {
        let names: Vec<String> = all_benchmarks()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(names, vec!["AlexNet", "VGG16", "ResNet18", "MobileNet"]);
    }

    #[test]
    fn fc_dominates_alexnet_params_but_not_macs() {
        let m = alexnet();
        let fc_params: u64 = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::FullyConnected { .. }))
            .map(|l| l.params())
            .sum();
        let fc_macs: u64 = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::FullyConnected { .. }))
            .map(|l| l.macs())
            .sum();
        assert!(fc_params * 2 > m.total_params(), "FC params dominate");
        assert!(fc_macs * 2 < m.total_macs(), "conv MACs dominate");
    }
}

// --- Extension networks beyond the paper's four benchmarks -------------
// The paper evaluates AlexNet/VGG16/ResNet18/MobileNet; the following are
// provided for users extending the study to related families.

/// VGG19 (extension): VGG16 with one extra 3×3 convolution in each of the
/// last three blocks.
pub fn vgg19() -> Model {
    let mut b = Model::builder("VGG19", VolumeShape::new(3, 224, 224));
    let blocks: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];
    for (block, &(channels, convs)) in blocks.iter().enumerate() {
        for c in 0..convs {
            b.push(
                format!("conv{}_{}", block + 1, c + 1),
                LayerKind::conv(channels, 3, 1, 1),
            )
            .expect("VGG19 conv geometry is valid");
        }
        b.push(
            format!("pool{}", block + 1),
            LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
        )
        .expect("VGG19 pool geometry is valid");
    }
    b.push("fc6", LayerKind::FullyConnected { outputs: 4096 })
        .and_then(|b| b.push("fc7", LayerKind::FullyConnected { outputs: 4096 }))
        .and_then(|b| b.push("fc8", LayerKind::FullyConnected { outputs: 1000 }))
        .expect("VGG19 FC geometry is valid");
    b.build().expect("VGG19 builds")
}

/// ResNet34 (extension): the 3-4-6-3 basic-block residual network, using
/// the same exact-division stride handling as [`resnet18`].
pub fn resnet34() -> Model {
    let mut b = Model::builder("ResNet34", VolumeShape::new(3, 224, 224));
    b.push("conv1", LayerKind::conv(64, 7, 2, 2))
        .and_then(|b| {
            b.push(
                "pool1",
                LayerKind::MaxPool {
                    window: 3,
                    stride: 2,
                },
            )
        })
        .expect("ResNet34 stem geometry is valid");
    for block in 0..3 {
        for conv in 0..2 {
            b.push(
                format!("layer1.{block}.conv{}", conv + 1),
                LayerKind::conv(64, 3, 1, 1),
            )
            .expect("ResNet34 stage-1 geometry is valid");
        }
    }
    for (stage, channels, blocks) in [(2usize, 128usize, 4usize), (3, 256, 6), (4, 512, 3)] {
        let stage_input = b.trunk_shape();
        b.push(
            format!("layer{stage}.0.conv1"),
            LayerKind::conv(channels, 3, 2, 0),
        )
        .and_then(|b| {
            b.push(
                format!("layer{stage}.0.conv2"),
                LayerKind::conv(channels, 3, 1, 1),
            )
        })
        .expect("ResNet34 downsample geometry is valid");
        b.push_branch(
            format!("layer{stage}.0.proj"),
            LayerKind::conv(channels, 1, 2, 0),
            stage_input,
        )
        .expect("ResNet34 projection geometry is valid");
        for block in 1..blocks {
            for conv in 0..2 {
                b.push(
                    format!("layer{stage}.{block}.conv{}", conv + 1),
                    LayerKind::conv(channels, 3, 1, 1),
                )
                .expect("ResNet34 stage geometry is valid");
            }
        }
    }
    b.push(
        "avgpool",
        LayerKind::AvgPool {
            window: 7,
            stride: 7,
        },
    )
    .and_then(|b| b.push("fc", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("ResNet34 head geometry is valid");
    b.build().expect("ResNet34 builds")
}

/// MobileNet v1 at a 0.5 width multiplier (extension): every channel count
/// halved, the classic latency/accuracy knob of the MobileNet paper.
pub fn mobilenet_half() -> Model {
    let mut b = Model::builder("MobileNet-0.5", VolumeShape::new(3, 224, 224));
    b.push("conv1", LayerKind::conv(16, 3, 2, 0))
        .expect("MobileNet-0.5 stem geometry is valid");
    let blocks: &[(usize, usize)] = &[
        (32, 1),
        (64, 2),
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (256, 1),
        (256, 1),
        (256, 1),
        (256, 1),
        (512, 2),
        (512, 1),
    ];
    for (i, &(out_ch, stride)) in blocks.iter().enumerate() {
        let padding = if stride == 1 { 1 } else { 0 };
        b.push(
            format!("dw{}", i + 1),
            LayerKind::Depthwise {
                kernel: 3,
                stride,
                padding,
            },
        )
        .and_then(|b| {
            b.push(
                format!("pw{}", i + 1),
                LayerKind::Pointwise { kernels: out_ch },
            )
        })
        .expect("MobileNet-0.5 block geometry is valid");
    }
    b.push(
        "avgpool",
        LayerKind::AvgPool {
            window: 7,
            stride: 7,
        },
    )
    .and_then(|b| b.push("fc", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("MobileNet-0.5 head geometry is valid");
    b.build().expect("MobileNet-0.5 builds")
}

/// MLP-Mixer (extension, dense workload): the channel-mixing trunk of a
/// Mixer-S/16-class model on a 14×14 grid of 512-dim patch tokens —
/// eight blocks of expand/contract pointwise MLPs (512 → 2048 → 512),
/// then the classifier head. Token-mixing MLPs act across the spatial
/// axis, which the volume vocabulary cannot express; they are ~7% of the
/// model's MACs and are omitted. Every compute layer is pointwise or
/// fully-connected, so this is the canonical GEMM-mode workload.
pub fn mlp_mixer() -> Model {
    let mut b = Model::builder("MLP-Mixer", VolumeShape::new(512, 14, 14));
    for block in 0..8 {
        b.push(
            format!("block{block}.expand"),
            LayerKind::Pointwise { kernels: 2048 },
        )
        .and_then(|b| {
            b.push(
                format!("block{block}.contract"),
                LayerKind::Pointwise { kernels: 512 },
            )
        })
        .expect("MLP-Mixer block geometry is valid");
    }
    b.push(
        "pool",
        LayerKind::AvgPool {
            window: 14,
            stride: 14,
        },
    )
    .and_then(|b| b.push("head", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("MLP-Mixer head geometry is valid");
    b.build().expect("MLP-Mixer builds")
}

/// One ViT-Base-class transformer encoder block (extension, dense
/// workload) over 14×14 tokens of width 768: the QKV and output
/// projections of the attention sublayer plus the 4× FFN, all expressed
/// as pointwise (per-token dense) layers, with a pooled classifier head
/// so the model is servable like the rest of the zoo. The attention
/// score/context GEMMs (token × token) are data-dependent and are
/// omitted — for 196 tokens they are ~9% of the block's MACs.
pub fn transformer_encoder_block() -> Model {
    let mut b = Model::builder("Transformer-Enc", VolumeShape::new(768, 14, 14));
    b.push("attn.qkv", LayerKind::Pointwise { kernels: 2304 })
        .and_then(|b| b.push("attn.proj", LayerKind::Pointwise { kernels: 768 }))
        .and_then(|b| b.push("ffn.fc1", LayerKind::Pointwise { kernels: 3072 }))
        .and_then(|b| b.push("ffn.fc2", LayerKind::Pointwise { kernels: 768 }))
        .expect("Transformer-Enc geometry is valid");
    b.push(
        "pool",
        LayerKind::AvgPool {
            window: 14,
            stride: 14,
        },
    )
    .and_then(|b| b.push("head", LayerKind::FullyConnected { outputs: 1000 }))
    .expect("Transformer-Enc head geometry is valid");
    b.build().expect("Transformer-Enc builds")
}

/// The serving model table: the paper's four benchmarks (indices 0–3,
/// matching [`all_benchmarks`] so existing mixes, goldens, and digests
/// are unchanged) followed by the dense extension workloads MLP-Mixer
/// (4) and Transformer-Enc (5). `albireo serve` and `albireo plan`
/// resolve network names and mix indices against this table.
pub fn serving_models() -> Vec<Model> {
    let mut models = all_benchmarks();
    models.push(mlp_mixer());
    models.push(transformer_encoder_block());
    models
}

/// Every public zoo constructor, paper benchmarks first. Kept in sync
/// with the `pub fn … -> Model` set by a test that counts constructors
/// in this file — adding a model without listing it here fails the
/// build's test suite.
pub fn catalog() -> Vec<Model> {
    vec![
        alexnet(),
        vgg16(),
        resnet18(),
        mobilenet(),
        vgg19(),
        resnet34(),
        mobilenet_half(),
        mlp_mixer(),
        transformer_encoder_block(),
        tiny(),
    ]
}

/// A tiny CNN for functional-simulation demos and tests: fits the analog
/// engine's per-kernel limits and runs in milliseconds.
pub fn tiny() -> Model {
    let mut b = Model::builder("Tiny", VolumeShape::new(1, 12, 12));
    b.push("conv1", LayerKind::conv(4, 3, 1, 0))
        .and_then(|b| {
            b.push(
                "pool1",
                LayerKind::MaxPool {
                    window: 2,
                    stride: 2,
                },
            )
        })
        .and_then(|b| b.push("conv2", LayerKind::conv(6, 3, 1, 0)))
        .and_then(|b| b.push("fc", LayerKind::FullyConnected { outputs: 5 }))
        .expect("Tiny geometry is valid");
    b.build().expect("Tiny builds")
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn vgg19_is_heavier_than_vgg16() {
        let v19 = vgg19();
        let v16 = vgg16();
        assert!(v19.total_macs() > v16.total_macs());
        let g = v19.total_macs() as f64 / 1e9;
        // Published ≈ 19.6 GMACs.
        assert!((19.0..20.5).contains(&g), "gmacs = {g}");
        assert_eq!(v19.output_shape(), VolumeShape::new(1000, 1, 1));
    }

    #[test]
    fn resnet34_matches_published_macs() {
        let m = resnet34();
        let g = m.total_macs() as f64 / 1e9;
        // Published ≈ 3.67 GMACs.
        assert!((3.3..4.0).contains(&g), "gmacs = {g}");
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        let branches = m.layers().iter().filter(|l| l.is_branch).count();
        assert_eq!(branches, 3);
    }

    #[test]
    fn mobilenet_half_is_about_a_quarter_of_the_macs() {
        let full = mobilenet().total_macs() as f64;
        let half = mobilenet_half().total_macs() as f64;
        // Width multiplier 0.5 ⇒ ~0.25× MACs in pointwise-dominated nets.
        let ratio = half / full;
        assert!((0.2..0.35).contains(&ratio), "ratio = {ratio}");
        assert_eq!(
            mobilenet_half().output_shape(),
            VolumeShape::new(1000, 1, 1)
        );
    }

    #[test]
    fn tiny_is_small_and_valid() {
        let m = tiny();
        assert!(m.total_macs() < 100_000);
        assert_eq!(m.output_shape(), VolumeShape::new(5, 1, 1));
    }

    #[test]
    fn mlp_mixer_is_all_dense() {
        let m = mlp_mixer();
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        assert!(m.layers().iter().all(|l| !l.is_compute()
            || matches!(
                l.kind,
                LayerKind::Pointwise { .. } | LayerKind::FullyConnected { .. }
            )));
        // 8 blocks × 2 × (512·2048) MACs per token × 196 tokens ≈ 3.3 G.
        let g = m.total_macs() as f64 / 1e9;
        assert!((3.0..3.6).contains(&g), "gmacs = {g}");
    }

    #[test]
    fn transformer_block_is_all_dense() {
        let m = transformer_encoder_block();
        assert_eq!(m.output_shape(), VolumeShape::new(1000, 1, 1));
        assert!(m.layers().iter().all(|l| !l.is_compute()
            || matches!(
                l.kind,
                LayerKind::Pointwise { .. } | LayerKind::FullyConnected { .. }
            )));
        // qkv + proj + 4× FFN ≈ 8.25M MACs per token × 196 tokens ≈ 1.6 G
        // (the proj consumes the full 2304-wide qkv output here, since
        // the head split is not representable in the volume vocabulary).
        let g = m.total_macs() as f64 / 1e9;
        assert!((1.4..1.8).contains(&g), "gmacs = {g}");
    }

    #[test]
    fn serving_models_extends_the_paper_four_in_place() {
        let serving = serving_models();
        let paper = all_benchmarks();
        assert_eq!(serving.len(), 6);
        for (i, m) in paper.iter().enumerate() {
            assert_eq!(serving[i].name(), m.name(), "indices 0–3 must not move");
        }
        assert_eq!(serving[4].name(), "MLP-Mixer");
        assert_eq!(serving[5].name(), "Transformer-Enc");
    }

    #[test]
    fn catalog_lists_every_public_constructor() {
        // Count the `pub fn … -> Model` constructors in this source file;
        // the Vec<Model> listings don't match the pattern. A new model
        // added without updating catalog() fails here.
        let declared = include_str!("zoo.rs")
            .lines()
            .filter(|l| l.trim_start().starts_with("pub fn") && l.contains("-> Model"))
            .count();
        let models = catalog();
        assert_eq!(
            models.len(),
            declared,
            "a new `pub fn … -> Model` zoo constructor is missing from catalog()"
        );
        // Names are unique, and the aggregate listings are sub-views.
        let mut names: Vec<&str> = models.iter().map(Model::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), models.len(), "catalog names must be unique");
        for m in all_benchmarks().iter().chain(serving_models().iter()) {
            assert!(
                models.iter().any(|c| c.name() == m.name()),
                "{} is listed but missing from catalog()",
                m.name()
            );
        }
    }
}

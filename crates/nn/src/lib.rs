//! CNN layer descriptors and the benchmark model zoo.
//!
//! The Albireo evaluation (paper §IV) is a *per-layer analysis* of four
//! CNNs — AlexNet, VGG16, ResNet18, and MobileNet. This crate describes
//! networks as chains of shape-checked [`layer::LayerInstance`]s with
//! MAC/parameter accounting, and [`zoo`] provides the four benchmark
//! networks with their standard geometries.
//!
//! # Example
//!
//! ```
//! use albireo_nn::zoo;
//!
//! let vgg = zoo::vgg16();
//! // VGG16 performs ~15.5 GMACs per inference.
//! let gmacs = vgg.total_macs() as f64 / 1e9;
//! assert!((gmacs - 15.47).abs() < 0.2, "gmacs = {gmacs}");
//! ```

pub mod layer;
pub mod model;
pub mod stats;
pub mod zoo;

pub use layer::{Layer, LayerInstance, LayerKind, VolumeShape};
pub use model::{Model, ModelBuilder};

use std::error::Error;
use std::fmt;

/// Errors produced while assembling a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A layer's geometry is incompatible with its input shape.
    ShapeChain {
        /// Layer name.
        layer: String,
        /// Explanation of the incompatibility.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ShapeChain { layer, reason } => {
                write!(f, "layer `{layer}` cannot be applied: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ModelError::ShapeChain {
            layer: "conv1".into(),
            reason: "depth mismatch".into(),
        };
        assert!(e.to_string().contains("conv1"));
        assert!(e.to_string().contains("depth mismatch"));
    }
}

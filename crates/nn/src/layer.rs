//! Layer descriptors with shape and cost accounting.

use std::fmt;

/// The shape of an activation volume, `(depth, height, width)` in the
/// paper's `A[z][y][x]` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VolumeShape {
    /// Channel count `Az`.
    pub z: usize,
    /// Height `Ay`.
    pub y: usize,
    /// Width `Ax`.
    pub x: usize,
}

impl VolumeShape {
    /// Builds a shape.
    pub fn new(z: usize, y: usize, x: usize) -> VolumeShape {
        VolumeShape { z, y, x }
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        self.z * self.y * self.x
    }
}

impl fmt::Display for VolumeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.z, self.y, self.x)
    }
}

/// The operator a layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Standard (optionally grouped) convolution.
    Conv {
        /// Number of kernels `Wm` (= output channels).
        kernels: usize,
        /// Kernel height `Wy`.
        kernel_y: usize,
        /// Kernel width `Wx`.
        kernel_x: usize,
        /// Stride `S`.
        stride: usize,
        /// Zero padding `P`.
        padding: usize,
        /// Channel groups (1 = dense; AlexNet uses 2).
        groups: usize,
    },
    /// Depthwise convolution: one single-channel kernel per input channel.
    Depthwise {
        /// Kernel extent (square).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Pointwise (1×1) convolution.
    Pointwise {
        /// Number of kernels (= output channels).
        kernels: usize,
    },
    /// Fully-connected layer over the flattened input.
    FullyConnected {
        /// Number of outputs.
        outputs: usize,
    },
    /// Max pooling with a square window.
    MaxPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling with a square window.
    AvgPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
}

impl LayerKind {
    /// Shorthand for a square dense convolution.
    pub fn conv(kernels: usize, kernel: usize, stride: usize, padding: usize) -> LayerKind {
        LayerKind::Conv {
            kernels,
            kernel_y: kernel,
            kernel_x: kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// Shorthand for a square grouped convolution.
    pub fn conv_grouped(
        kernels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> LayerKind {
        LayerKind::Conv {
            kernels,
            kernel_y: kernel,
            kernel_x: kernel,
            stride,
            padding,
            groups,
        }
    }

    /// Whether this layer performs MACs (pooling layers do not).
    pub fn is_compute(&self) -> bool {
        !matches!(self, LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. })
    }
}

/// A named layer: the unit the zoo builds networks from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name (e.g. `conv2_1`).
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
}

impl Layer {
    /// Builds a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Layer {
        Layer {
            name: name.into(),
            kind,
        }
    }
}

/// A layer bound to concrete input/output shapes within a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInstance {
    /// Layer name.
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
    /// Input volume shape.
    pub input: VolumeShape,
    /// Output volume shape.
    pub output: VolumeShape,
    /// Whether the layer is a residual branch (contributes work but does not
    /// advance the trunk shape).
    pub is_branch: bool,
}

impl LayerInstance {
    /// Multiply-accumulate operations this layer performs.
    pub fn macs(&self) -> u64 {
        let out_spatial = (self.output.y * self.output.x) as u64;
        match self.kind {
            LayerKind::Conv {
                kernels,
                kernel_y,
                kernel_x,
                groups,
                ..
            } => {
                out_spatial
                    * kernels as u64
                    * kernel_y as u64
                    * kernel_x as u64
                    * (self.input.z / groups) as u64
            }
            LayerKind::Depthwise { kernel, .. } => {
                out_spatial * self.input.z as u64 * (kernel * kernel) as u64
            }
            LayerKind::Pointwise { kernels } => out_spatial * kernels as u64 * self.input.z as u64,
            LayerKind::FullyConnected { outputs } => outputs as u64 * self.input.elements() as u64,
            LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => 0,
        }
    }

    /// Number of trainable weights in this layer (biases excluded, matching
    /// the paper's optical weight accounting).
    pub fn params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv {
                kernels,
                kernel_y,
                kernel_x,
                groups,
                ..
            } => {
                kernels as u64 * kernel_y as u64 * kernel_x as u64 * (self.input.z / groups) as u64
            }
            LayerKind::Depthwise { kernel, .. } => self.input.z as u64 * (kernel * kernel) as u64,
            LayerKind::Pointwise { kernels } => kernels as u64 * self.input.z as u64,
            LayerKind::FullyConnected { outputs } => outputs as u64 * self.input.elements() as u64,
            LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => 0,
        }
    }

    /// Whether the layer performs MACs.
    pub fn is_compute(&self) -> bool {
        self.kind.is_compute()
    }
}

impl fmt::Display for LayerInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({:.1} MMACs)",
            self.name,
            self.input,
            self.output,
            self.macs() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(kind: LayerKind, input: VolumeShape, output: VolumeShape) -> LayerInstance {
        LayerInstance {
            name: "t".into(),
            kind,
            input,
            output,
            is_branch: false,
        }
    }

    #[test]
    fn conv_macs() {
        // 64 kernels of 3×3×3 over a 224×224 output: 64·9·3·224² ≈ 86.7M.
        let li = instance(
            LayerKind::conv(64, 3, 1, 1),
            VolumeShape::new(3, 224, 224),
            VolumeShape::new(64, 224, 224),
        );
        assert_eq!(li.macs(), 64 * 9 * 3 * 224 * 224);
        assert_eq!(li.params(), 64 * 9 * 3);
    }

    #[test]
    fn grouped_conv_divides_depth() {
        let li = instance(
            LayerKind::conv_grouped(256, 5, 1, 2, 2),
            VolumeShape::new(96, 27, 27),
            VolumeShape::new(256, 27, 27),
        );
        assert_eq!(li.macs(), 27 * 27 * 256 * 25 * 48);
    }

    #[test]
    fn depthwise_macs() {
        let li = instance(
            LayerKind::Depthwise {
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            VolumeShape::new(32, 112, 112),
            VolumeShape::new(32, 112, 112),
        );
        assert_eq!(li.macs(), 112 * 112 * 32 * 9);
    }

    #[test]
    fn pointwise_macs() {
        let li = instance(
            LayerKind::Pointwise { kernels: 64 },
            VolumeShape::new(32, 112, 112),
            VolumeShape::new(64, 112, 112),
        );
        assert_eq!(li.macs(), 112 * 112 * 64 * 32);
    }

    #[test]
    fn fc_macs() {
        let li = instance(
            LayerKind::FullyConnected { outputs: 4096 },
            VolumeShape::new(256, 6, 6),
            VolumeShape::new(4096, 1, 1),
        );
        assert_eq!(li.macs(), 4096 * 9216);
        assert_eq!(li.params(), li.macs());
    }

    #[test]
    fn pooling_has_no_macs() {
        let li = instance(
            LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
            VolumeShape::new(64, 112, 112),
            VolumeShape::new(64, 56, 56),
        );
        assert_eq!(li.macs(), 0);
        assert!(!li.is_compute());
    }

    #[test]
    fn shape_display() {
        assert_eq!(VolumeShape::new(3, 224, 224).to_string(), "3x224x224");
    }

    #[test]
    fn elements() {
        assert_eq!(VolumeShape::new(2, 3, 4).elements(), 24);
    }
}

//! Workload statistics: memory traffic, arithmetic intensity, and the
//! data-movement profile that motivates Albireo's depth-first dataflow
//! (paper §III-B: "data movement can consume magnitudes more energy than
//! computation").

use crate::layer::{LayerInstance, LayerKind};
use crate::model::Model;

/// Per-layer data-movement accounting (8-bit elements, the paper's
/// quantization level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Bytes of input activations read (each input element read once; the
    /// photonic broadcast provides the reuse).
    pub input_bytes: u64,
    /// Bytes of weights read (each weight loaded once into the MZMs per
    /// kernel application batch).
    pub weight_bytes: u64,
    /// Bytes of output activations written.
    pub output_bytes: u64,
    /// Partial-sum bytes written back to memory. Albireo's depth-first
    /// aggregation keeps this zero for every layer (paper §III-B); a
    /// non-depth-first dataflow would spill `output × ⌈Wz/Nu⌉` partials.
    pub partial_sum_bytes: u64,
}

impl LayerTraffic {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.weight_bytes + self.output_bytes + self.partial_sum_bytes
    }
}

/// Computes the traffic of one layer under Albireo's dataflow.
pub fn layer_traffic(layer: &LayerInstance) -> LayerTraffic {
    let input_bytes = layer.input.elements() as u64;
    let output_bytes = layer.output.elements() as u64;
    let weight_bytes = layer.params();
    match layer.kind {
        LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => LayerTraffic {
            input_bytes,
            weight_bytes: 0,
            output_bytes,
            partial_sum_bytes: 0,
        },
        _ => LayerTraffic {
            input_bytes,
            weight_bytes,
            output_bytes,
            partial_sum_bytes: 0,
        },
    }
}

/// Partial-sum traffic a *non*-depth-first dataflow would generate for the
/// same layer, for the ablation comparison: every output element spills and
/// reloads one partial per channel group beyond the first.
pub fn partial_sum_spill_bytes(layer: &LayerInstance, nu: usize) -> u64 {
    match layer.kind {
        LayerKind::Conv { groups, .. } => {
            let channel_groups = (layer.input.z / groups).div_ceil(nu) as u64;
            // Spill + reload = 2 transfers per intermediate partial.
            2 * layer.output.elements() as u64 * channel_groups.saturating_sub(1)
        }
        LayerKind::Pointwise { .. } => {
            let channel_groups = layer.input.z.div_ceil(nu) as u64;
            2 * layer.output.elements() as u64 * channel_groups.saturating_sub(1)
        }
        LayerKind::FullyConnected { .. } => {
            let chunks = layer.input.elements().div_ceil(nu * 9) as u64;
            2 * layer.output.elements() as u64 * chunks.saturating_sub(1)
        }
        _ => 0,
    }
}

/// Network-level workload statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Total MACs.
    pub macs: u64,
    /// Total bytes moved under Albireo's dataflow.
    pub traffic_bytes: u64,
    /// Partial-sum bytes a non-depth-first dataflow would add.
    pub avoided_partial_bytes: u64,
    /// Arithmetic intensity, MACs per byte moved.
    pub macs_per_byte: f64,
    /// Peak single-layer activation footprint, bytes (sizing the global
    /// buffer).
    pub peak_activation_bytes: u64,
    /// Largest single layer's weights, bytes (sizing the kernel caches).
    pub peak_weight_bytes: u64,
}

/// Computes workload statistics for a network under Albireo's dataflow
/// with `nu` channels aggregated per cycle.
pub fn workload_stats(model: &Model, nu: usize) -> WorkloadStats {
    let mut traffic = 0u64;
    let mut avoided = 0u64;
    let mut peak_act = 0u64;
    let mut peak_weights = 0u64;
    for layer in model.layers() {
        let t = layer_traffic(layer);
        traffic += t.total_bytes();
        avoided += partial_sum_spill_bytes(layer, nu);
        peak_act = peak_act.max((layer.input.elements() + layer.output.elements()) as u64);
        peak_weights = peak_weights.max(layer.params());
    }
    WorkloadStats {
        macs: model.total_macs(),
        traffic_bytes: traffic,
        avoided_partial_bytes: avoided,
        macs_per_byte: model.total_macs() as f64 / traffic as f64,
        peak_activation_bytes: peak_act,
        peak_weight_bytes: peak_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::VolumeShape;
    use crate::zoo;

    #[test]
    fn conv_layer_traffic() {
        let model = zoo::vgg16();
        let conv1 = &model.layers()[0];
        let t = layer_traffic(conv1);
        assert_eq!(t.input_bytes, 3 * 224 * 224);
        assert_eq!(t.output_bytes, 64 * 224 * 224);
        assert_eq!(t.weight_bytes, 64 * 3 * 9);
        assert_eq!(t.partial_sum_bytes, 0, "depth-first: no partial spills");
    }

    #[test]
    fn pooling_moves_no_weights() {
        let model = zoo::vgg16();
        let pool = model
            .layers()
            .iter()
            .find(|l| l.name.starts_with("pool"))
            .unwrap();
        assert_eq!(layer_traffic(pool).weight_bytes, 0);
    }

    #[test]
    fn avoided_partials_grow_with_depth() {
        let mut shallow = crate::Model::builder("s", VolumeShape::new(3, 8, 8));
        shallow
            .push("c", crate::LayerKind::conv(4, 3, 1, 1))
            .unwrap();
        let mut deep = crate::Model::builder("d", VolumeShape::new(300, 8, 8));
        deep.push("c", crate::LayerKind::conv(4, 3, 1, 1)).unwrap();
        let s = partial_sum_spill_bytes(&shallow.build().unwrap().layers()[0], 3);
        let d = partial_sum_spill_bytes(&deep.build().unwrap().layers()[0], 3);
        assert_eq!(s, 0, "3 channels fit one Nu=3 group");
        assert!(d > 0);
    }

    #[test]
    fn vgg_arithmetic_intensity_is_high() {
        let stats = workload_stats(&zoo::vgg16(), 3);
        // VGG16 reuses each byte ~100× — the parameter-sharing headroom
        // Albireo's broadcast exploits.
        assert!(stats.macs_per_byte > 50.0, "{}", stats.macs_per_byte);
        assert!(stats.avoided_partial_bytes > 100_000_000);
    }

    #[test]
    fn mobilenet_intensity_lower_than_vgg() {
        let vgg = workload_stats(&zoo::vgg16(), 3);
        let mobile = workload_stats(&zoo::mobilenet(), 3);
        assert!(mobile.macs_per_byte < vgg.macs_per_byte);
    }

    #[test]
    fn peak_activation_fits_a_reasonable_buffer() {
        // The largest VGG16 layer (conv1_2 in+out) is ~6.4 MB at 8 bits —
        // streamed through the 256 kB global buffer in tiles.
        let stats = workload_stats(&zoo::vgg16(), 3);
        assert_eq!(stats.peak_activation_bytes, (64 + 64) * 224 * 224);
    }

    #[test]
    fn peak_weights_identify_fc6() {
        let stats = workload_stats(&zoo::vgg16(), 3);
        assert_eq!(stats.peak_weight_bytes, 4096 * 25088);
    }

    #[test]
    fn alexnet_fc_dominates_traffic() {
        let model = zoo::alexnet();
        let fc_traffic: u64 = model
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::FullyConnected { .. }))
            .map(|l| layer_traffic(l).total_bytes())
            .sum();
        let total = workload_stats(&model, 3).traffic_bytes;
        assert!(fc_traffic * 2 > total);
    }
}

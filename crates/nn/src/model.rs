//! Networks as shape-checked chains of layers.

use crate::layer::{LayerInstance, LayerKind, VolumeShape};
use crate::{ModelError, Result};
use albireo_tensor::output_extent;
use std::fmt;

/// A complete network: an input shape and an ordered list of bound layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    name: String,
    input: VolumeShape,
    layers: Vec<LayerInstance>,
}

impl Model {
    /// Starts building a model. See [`ModelBuilder`].
    pub fn builder(name: impl Into<String>, input: VolumeShape) -> ModelBuilder {
        ModelBuilder {
            name: name.into(),
            input,
            trunk: input,
            layers: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input volume shape.
    pub fn input_shape(&self) -> VolumeShape {
        self.input
    }

    /// All layers in order.
    pub fn layers(&self) -> &[LayerInstance] {
        &self.layers
    }

    /// Only the MAC-performing layers.
    pub fn compute_layers(&self) -> impl Iterator<Item = &LayerInstance> {
        self.layers.iter().filter(|l| l.is_compute())
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerInstance::macs).sum()
    }

    /// Total operations per inference (2 ops per MAC, the convention used
    /// for the paper's GOPS numbers).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerInstance::params).sum()
    }

    /// Output shape of the final layer.
    ///
    /// # Panics
    ///
    /// Panics if the model has no layers.
    pub fn output_shape(&self) -> VolumeShape {
        self.layers
            .last()
            .expect("model has at least one layer")
            .output
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} layers, {:.2} GMACs, {:.1} M params)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9,
            self.total_params() as f64 / 1e6,
        )?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

/// Incremental [`Model`] constructor that chains and validates shapes.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    input: VolumeShape,
    trunk: VolumeShape,
    layers: Vec<LayerInstance>,
}

impl ModelBuilder {
    /// Appends a trunk layer; its output becomes the next layer's input.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer's geometry is incompatible with the
    /// current trunk shape.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> Result<&mut ModelBuilder> {
        let name = name.into();
        let output = self.resolve(&name, &kind, self.trunk)?;
        self.layers.push(LayerInstance {
            name,
            kind,
            input: self.trunk,
            output,
            is_branch: false,
        });
        self.trunk = output;
        Ok(self)
    }

    /// Appends a *branch* layer (e.g. a ResNet projection shortcut): it
    /// reads the shape the trunk had `offset` trunk-layers ago, contributes
    /// its MACs, but does not advance the trunk shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the layer's geometry is incompatible with that
    /// input shape.
    pub fn push_branch(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        input: VolumeShape,
    ) -> Result<&mut ModelBuilder> {
        let name = name.into();
        let output = self.resolve(&name, &kind, input)?;
        self.layers.push(LayerInstance {
            name,
            kind,
            input,
            output,
            is_branch: true,
        });
        Ok(self)
    }

    /// Current trunk shape (useful for wiring branches).
    pub fn trunk_shape(&self) -> VolumeShape {
        self.trunk
    }

    /// Finishes the model.
    ///
    /// # Errors
    ///
    /// Returns an error if no layers were added.
    pub fn build(&self) -> Result<Model> {
        if self.layers.is_empty() {
            return Err(ModelError::ShapeChain {
                layer: self.name.clone(),
                reason: "model has no layers".into(),
            });
        }
        Ok(Model {
            name: self.name.clone(),
            input: self.input,
            layers: self.layers.clone(),
        })
    }

    fn resolve(&self, name: &str, kind: &LayerKind, input: VolumeShape) -> Result<VolumeShape> {
        let err = |reason: String| ModelError::ShapeChain {
            layer: name.to_string(),
            reason,
        };
        match *kind {
            LayerKind::Conv {
                kernels,
                kernel_y,
                kernel_x,
                stride,
                padding,
                groups,
            } => {
                if groups == 0 || !input.z.is_multiple_of(groups) || !kernels.is_multiple_of(groups)
                {
                    return Err(err(format!(
                        "groups {groups} incompatible with {} input channels / {kernels} kernels",
                        input.z
                    )));
                }
                if input.y + 2 * padding < kernel_y || input.x + 2 * padding < kernel_x {
                    return Err(err(format!(
                        "kernel {kernel_y}x{kernel_x} larger than padded input {input}"
                    )));
                }
                Ok(VolumeShape::new(
                    kernels,
                    output_extent(input.y, kernel_y, padding, stride),
                    output_extent(input.x, kernel_x, padding, stride),
                ))
            }
            LayerKind::Depthwise {
                kernel,
                stride,
                padding,
            } => {
                if input.y + 2 * padding < kernel || input.x + 2 * padding < kernel {
                    return Err(err(format!(
                        "kernel {kernel}x{kernel} larger than padded input {input}"
                    )));
                }
                Ok(VolumeShape::new(
                    input.z,
                    output_extent(input.y, kernel, padding, stride),
                    output_extent(input.x, kernel, padding, stride),
                ))
            }
            LayerKind::Pointwise { kernels } => Ok(VolumeShape::new(kernels, input.y, input.x)),
            LayerKind::FullyConnected { outputs } => Ok(VolumeShape::new(outputs, 1, 1)),
            LayerKind::MaxPool { window, stride } | LayerKind::AvgPool { window, stride } => {
                if input.y < window || input.x < window {
                    return Err(err(format!(
                        "pool window {window} larger than input {input}"
                    )));
                }
                Ok(VolumeShape::new(
                    input.z,
                    output_extent(input.y, window, 0, stride),
                    output_extent(input.x, window, 0, stride),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_shapes() {
        let mut b = Model::builder("tiny", VolumeShape::new(3, 8, 8));
        b.push("conv1", LayerKind::conv(16, 3, 1, 1)).unwrap();
        b.push(
            "pool1",
            LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
        )
        .unwrap();
        b.push("fc", LayerKind::FullyConnected { outputs: 10 })
            .unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.layers()[0].output, VolumeShape::new(16, 8, 8));
        assert_eq!(m.layers()[1].output, VolumeShape::new(16, 4, 4));
        assert_eq!(m.output_shape(), VolumeShape::new(10, 1, 1));
    }

    #[test]
    fn macs_accumulate() {
        let mut b = Model::builder("tiny", VolumeShape::new(1, 4, 4));
        b.push("conv", LayerKind::conv(2, 3, 1, 0)).unwrap();
        let m = b.build().unwrap();
        // 2×2 output, 2 kernels of 3×3×1 ⇒ 72 MACs, 144 ops.
        assert_eq!(m.total_macs(), 72);
        assert_eq!(m.total_ops(), 144);
    }

    #[test]
    fn branch_does_not_advance_trunk() {
        let mut b = Model::builder("res", VolumeShape::new(4, 8, 8));
        b.push("conv1", LayerKind::conv(8, 3, 2, 0)).unwrap();
        let before = b.trunk_shape();
        b.push_branch(
            "proj",
            LayerKind::conv(8, 1, 2, 0),
            VolumeShape::new(4, 8, 8),
        )
        .unwrap();
        assert_eq!(b.trunk_shape(), before);
        let m = b.build().unwrap();
        assert!(m.layers()[1].is_branch);
        assert!(m.layers()[1].macs() > 0);
    }

    #[test]
    fn incompatible_groups_rejected() {
        let mut b = Model::builder("bad", VolumeShape::new(3, 8, 8));
        let r = b.push("conv", LayerKind::conv_grouped(4, 3, 1, 1, 2));
        assert!(r.is_err());
    }

    #[test]
    fn oversized_kernel_rejected() {
        let mut b = Model::builder("bad", VolumeShape::new(3, 4, 4));
        assert!(b.push("conv", LayerKind::conv(4, 7, 1, 0)).is_err());
        assert!(b
            .push(
                "pool",
                LayerKind::MaxPool {
                    window: 5,
                    stride: 1
                }
            )
            .is_err());
    }

    #[test]
    fn empty_model_rejected() {
        let b = Model::builder("empty", VolumeShape::new(1, 1, 1));
        assert!(b.build().is_err());
    }

    #[test]
    fn display_lists_layers() {
        let mut b = Model::builder("tiny", VolumeShape::new(1, 4, 4));
        b.push("conv", LayerKind::conv(2, 3, 1, 0)).unwrap();
        let text = b.build().unwrap().to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("conv"));
    }
}

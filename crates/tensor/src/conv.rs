//! Reference (digital) CNN operators — Algorithm 1 of the paper and friends.
//!
//! These exact `f64` implementations are the golden model the analog
//! photonic simulation is validated against.

use crate::shape::output_extent;
use crate::{Tensor3, Tensor4};
use albireo_parallel::Parallelism;

/// Stride/padding specification for a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Stride S (identical in x and y, as in the paper).
    pub stride: usize,
    /// Zero padding P (identical in x and y).
    pub padding: usize,
}

impl ConvSpec {
    /// A unit-stride, zero-padding convolution.
    pub fn unit() -> ConvSpec {
        ConvSpec {
            stride: 1,
            padding: 0,
        }
    }

    /// Builds a spec with explicit stride and padding.
    pub fn new(stride: usize, padding: usize) -> ConvSpec {
        assert!(stride > 0, "stride must be positive");
        ConvSpec { stride, padding }
    }

    /// "Same" padding for an odd kernel extent at the given stride:
    /// `P = (W − 1)/2`.
    pub fn same_padding(kernel: usize, stride: usize) -> ConvSpec {
        assert!(kernel % 2 == 1, "same padding needs an odd kernel");
        ConvSpec {
            stride,
            padding: (kernel - 1) / 2,
        }
    }
}

impl Default for ConvSpec {
    fn default() -> ConvSpec {
        ConvSpec::unit()
    }
}

/// Dot product between a receptive field of the input volume anchored at
/// `(x0, y0)` (top-left, in padded coordinates) and kernel `m`.
fn receptive_field_dot(input: &Tensor3, kernels: &Tensor4, m: usize, x0: isize, y0: isize) -> f64 {
    let (_, wz, wy, wx) = kernels.dims();
    let mut acc = 0.0;
    for z in 0..wz {
        for ky in 0..wy {
            for kx in 0..wx {
                let a = input.get_padded(z, y0 + ky as isize, x0 + kx as isize);
                if a != 0.0 {
                    acc += a * kernels[(m, z, ky, kx)];
                }
            }
        }
    }
    acc
}

/// Standard convolution (paper Algorithm 1), producing an output volume of
/// shape `Wm × By × Bx` (Eq. 1). No activation is applied.
///
/// # Panics
///
/// Panics if the kernel depth does not match the input depth, or the kernel
/// is larger than the padded input.
///
/// ```
/// use albireo_tensor::{Tensor3, Tensor4, conv::{conv2d, ConvSpec}};
/// let input = Tensor3::filled(2, 4, 4, 1.0);
/// let kernels = Tensor4::filled(3, 2, 3, 3, 1.0);
/// let out = conv2d(&input, &kernels, &ConvSpec::unit());
/// assert_eq!(out.dims(), (3, 2, 2));
/// // Every receptive field sums 2·3·3 ones.
/// assert_eq!(out[(0, 0, 0)], 18.0);
/// ```
pub fn conv2d(input: &Tensor3, kernels: &Tensor4, spec: &ConvSpec) -> Tensor3 {
    conv2d_with(input, kernels, spec, Parallelism::default())
}

/// [`conv2d`] under an explicit [`Parallelism`] policy. Output kernels are
/// independent work items (kernel `m` owns the contiguous `By × Bx` output
/// plane), so the result is bit-identical at any thread count.
pub fn conv2d_with(
    input: &Tensor3,
    kernels: &Tensor4,
    spec: &ConvSpec,
    par: Parallelism,
) -> Tensor3 {
    let _prof = albireo_obs::profile::scope("tensor.conv2d");
    let (az, ay, ax) = input.dims();
    let (wm, wz, wy, wx) = kernels.dims();
    assert_eq!(wz, az, "kernel depth {wz} must equal input depth {az}");
    let bx = output_extent(ax, wx, spec.padding, spec.stride);
    let by = output_extent(ay, wy, spec.padding, spec.stride);
    let mut out = Tensor3::zeros(wm, by, bx);
    let pad = spec.padding as isize;
    par.fill_slices(out.as_mut_slice(), (by * bx).max(1), |m, plane| {
        for (yb, ya) in (0..by).zip((0..).step_by(spec.stride)) {
            for (xb, xa) in (0..bx).zip((0..).step_by(spec.stride)) {
                plane[yb * bx + xb] =
                    receptive_field_dot(input, kernels, m, xa as isize - pad, ya as isize - pad);
            }
        }
    });
    out
}

/// Grouped convolution (AlexNet's conv2/4/5 use two groups): the input and
/// kernels are split along the channel axis into `groups` independent
/// convolutions whose outputs are stacked.
///
/// # Panics
///
/// Panics if the channel counts are not divisible by `groups` or the kernel
/// depth does not match `input_depth / groups`.
pub fn conv2d_grouped(
    input: &Tensor3,
    kernels: &Tensor4,
    spec: &ConvSpec,
    groups: usize,
) -> Tensor3 {
    assert!(groups > 0, "groups must be positive");
    let (az, ay, ax) = input.dims();
    let (wm, wz, wy, wx) = kernels.dims();
    assert_eq!(az % groups, 0, "input depth not divisible by groups");
    assert_eq!(wm % groups, 0, "kernel count not divisible by groups");
    assert_eq!(wz, az / groups, "kernel depth must be input depth / groups");
    let bx = output_extent(ax, wx, spec.padding, spec.stride);
    let by = output_extent(ay, wy, spec.padding, spec.stride);
    let mut out = Tensor3::zeros(wm, by, bx);
    let ch_per_group = az / groups;
    let kn_per_group = wm / groups;
    for g in 0..groups {
        // Slice the input channels of this group.
        let mut sub = Tensor3::zeros(ch_per_group, ay, ax);
        for z in 0..ch_per_group {
            for y in 0..ay {
                for x in 0..ax {
                    sub.set(z, y, x, input[(g * ch_per_group + z, y, x)]);
                }
            }
        }
        let mut subk = Tensor4::zeros(kn_per_group, wz, wy, wx);
        for m in 0..kn_per_group {
            for z in 0..wz {
                for y in 0..wy {
                    for x in 0..wx {
                        subk.set(m, z, y, x, kernels[(g * kn_per_group + m, z, y, x)]);
                    }
                }
            }
        }
        let part = conv2d(&sub, &subk, spec);
        let (_, py, px) = part.dims();
        for m in 0..kn_per_group {
            for y in 0..py {
                for x in 0..px {
                    out.set(g * kn_per_group + m, y, x, part[(m, y, x)]);
                }
            }
        }
    }
    out
}

/// Depthwise convolution (MobileNet): each input channel is convolved with
/// its own single-channel kernel; no cross-channel accumulation (paper
/// §III-C).
///
/// `kernels` has shape `[C]\[1\][Wy][Wx]` — one kernel per input channel.
///
/// # Panics
///
/// Panics if the kernel count differs from the channel count or kernels are
/// not single-channel.
pub fn depthwise_conv(input: &Tensor3, kernels: &Tensor4, spec: &ConvSpec) -> Tensor3 {
    depthwise_conv_with(input, kernels, spec, Parallelism::default())
}

/// [`depthwise_conv`] under an explicit [`Parallelism`] policy; channels
/// are the independent work items.
pub fn depthwise_conv_with(
    input: &Tensor3,
    kernels: &Tensor4,
    spec: &ConvSpec,
    par: Parallelism,
) -> Tensor3 {
    let (az, ay, ax) = input.dims();
    let (wm, wz, wy, wx) = kernels.dims();
    assert_eq!(wm, az, "need one depthwise kernel per channel");
    assert_eq!(wz, 1, "depthwise kernels are single-channel");
    let bx = output_extent(ax, wx, spec.padding, spec.stride);
    let by = output_extent(ay, wy, spec.padding, spec.stride);
    let mut out = Tensor3::zeros(az, by, bx);
    let pad = spec.padding as isize;
    par.fill_slices(out.as_mut_slice(), (by * bx).max(1), |c, plane| {
        for (yb, ya) in (0..by).zip((0..).step_by(spec.stride)) {
            for (xb, xa) in (0..bx).zip((0..).step_by(spec.stride)) {
                let mut acc = 0.0;
                for ky in 0..wy {
                    for kx in 0..wx {
                        let a = input.get_padded(
                            c,
                            ya as isize - pad + ky as isize,
                            xa as isize - pad + kx as isize,
                        );
                        acc += a * kernels[(c, 0, ky, kx)];
                    }
                }
                plane[yb * bx + xb] = acc;
            }
        }
    });
    out
}

/// Pointwise (1×1) convolution (MobileNet): mixes channels at every spatial
/// location.
///
/// `kernels` has shape `[M][C]\[1\][1]`.
///
/// # Panics
///
/// Panics if the kernel spatial extent is not 1×1 or depths mismatch.
pub fn pointwise_conv(input: &Tensor3, kernels: &Tensor4) -> Tensor3 {
    pointwise_conv_with(input, kernels, Parallelism::default())
}

/// [`pointwise_conv`] under an explicit [`Parallelism`] policy; output
/// channels are the independent work items.
pub fn pointwise_conv_with(input: &Tensor3, kernels: &Tensor4, par: Parallelism) -> Tensor3 {
    let (az, ay, ax) = input.dims();
    let (wm, wz, wy, wx) = kernels.dims();
    assert_eq!((wy, wx), (1, 1), "pointwise kernels are 1x1");
    assert_eq!(wz, az, "kernel depth must equal input depth");
    let mut out = Tensor3::zeros(wm, ay, ax);
    par.fill_slices(out.as_mut_slice(), (ay * ax).max(1), |m, plane| {
        for y in 0..ay {
            for x in 0..ax {
                let mut acc = 0.0;
                for z in 0..az {
                    acc += input[(z, y, x)] * kernels[(m, z, 0, 0)];
                }
                plane[y * ax + x] = acc;
            }
        }
    });
    out
}

/// Fully-connected layer: `out[m] = Σ_i weights[m][i]·input_flat[i]`.
/// Implemented, as the paper describes, as a convolution whose receptive
/// field is the whole input volume.
///
/// # Panics
///
/// Panics if `weights[m].len()` differs from the flattened input length.
pub fn fully_connected(input_flat: &[f64], weights: &[Vec<f64>]) -> Vec<f64> {
    weights
        .iter()
        .map(|row| {
            assert_eq!(row.len(), input_flat.len(), "FC weight row length mismatch");
            row.iter().zip(input_flat.iter()).map(|(w, a)| w * a).sum()
        })
        .collect()
}

/// 2-D max pooling with a square window and stride.
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn max_pool(input: &Tensor3, window: usize, stride: usize) -> Tensor3 {
    pool(
        input,
        window,
        stride,
        f64::NEG_INFINITY,
        |acc, v| acc.max(v),
        |acc, _| acc,
    )
}

/// 2-D average pooling with a square window and stride.
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn avg_pool(input: &Tensor3, window: usize, stride: usize) -> Tensor3 {
    pool(
        input,
        window,
        stride,
        0.0,
        |acc, v| acc + v,
        |acc, n| acc / n as f64,
    )
}

fn pool(
    input: &Tensor3,
    window: usize,
    stride: usize,
    init: f64,
    fold: impl Fn(f64, f64) -> f64,
    finish: impl Fn(f64, usize) -> f64,
) -> Tensor3 {
    let (az, ay, ax) = input.dims();
    let by = output_extent(ay, window, 0, stride);
    let bx = output_extent(ax, window, 0, stride);
    let mut out = Tensor3::zeros(az, by, bx);
    for z in 0..az {
        for yb in 0..by {
            for xb in 0..bx {
                let mut acc = init;
                let mut n = 0;
                for wy in 0..window {
                    for wx in 0..window {
                        let y = yb * stride + wy;
                        let x = xb * stride + wx;
                        if y < ay && x < ax {
                            acc = fold(acc, input[(z, y, x)]);
                            n += 1;
                        }
                    }
                }
                out.set(z, yb, xb, finish(acc, n));
            }
        }
    }
    out
}

/// The rectified linear unit applied elementwise, returning a new tensor.
pub fn relu(input: &Tensor3) -> Tensor3 {
    let mut out = input.clone();
    out.relu_inplace();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut input = Tensor3::zeros(1, 3, 3);
        for y in 0..3 {
            for x in 0..3 {
                input.set(0, y, x, (y * 3 + x) as f64);
            }
        }
        // 1×1 kernel of weight 1.
        let kernels = Tensor4::filled(1, 1, 1, 1, 1.0);
        let out = conv2d(&input, &kernels, &ConvSpec::unit());
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // Input 1..16 in a 4×4, sum kernel of ones.
        let input = Tensor3::from_vec(1, 4, 4, (1..=16).map(f64::from).collect());
        let kernels = Tensor4::filled(1, 1, 3, 3, 1.0);
        let out = conv2d(&input, &kernels, &ConvSpec::unit());
        assert_eq!(out.dims(), (1, 2, 2));
        // Top-left receptive field: 1+2+3+5+6+7+9+10+11 = 54.
        assert_eq!(out[(0, 0, 0)], 54.0);
        assert_eq!(out[(0, 1, 1)], 54.0 + 9.0 + 4.0 * 9.0); // shift by (1,1): each element +5 → 54+45=99
    }

    #[test]
    fn padding_adds_zero_border() {
        let input = Tensor3::filled(1, 2, 2, 1.0);
        let kernels = Tensor4::filled(1, 1, 3, 3, 1.0);
        let out = conv2d(&input, &kernels, &ConvSpec::same_padding(3, 1));
        assert_eq!(out.dims(), (1, 2, 2));
        // Every output sees the four ones.
        assert!(out.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn stride_subsamples() {
        let input = Tensor3::filled(1, 5, 5, 1.0);
        let kernels = Tensor4::filled(1, 1, 3, 3, 1.0);
        let out = conv2d(&input, &kernels, &ConvSpec::new(2, 0));
        assert_eq!(out.dims(), (1, 2, 2));
        assert!(out.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn multi_channel_accumulates_depth() {
        let input = Tensor3::filled(3, 3, 3, 2.0);
        let kernels = Tensor4::filled(1, 3, 3, 3, 0.5);
        let out = conv2d(&input, &kernels, &ConvSpec::unit());
        assert_eq!(out.dims(), (1, 1, 1));
        assert_eq!(out[(0, 0, 0)], 3.0 * 9.0 * 2.0 * 0.5);
    }

    #[test]
    fn grouped_conv_equals_regular_when_one_group() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor3::random_uniform(4, 6, 6, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 4, 3, 3, 0.5, &mut rng);
        let a = conv2d(&input, &kernels, &ConvSpec::unit());
        let b = conv2d_grouped(&input, &kernels, &ConvSpec::unit(), 1);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn grouped_conv_isolates_groups() {
        // Two groups; second group's input is zero ⇒ its outputs are zero.
        let mut input = Tensor3::filled(4, 3, 3, 1.0);
        for z in 2..4 {
            for y in 0..3 {
                for x in 0..3 {
                    input.set(z, y, x, 0.0);
                }
            }
        }
        let kernels = Tensor4::filled(2, 2, 3, 3, 1.0);
        let out = conv2d_grouped(&input, &kernels, &ConvSpec::unit(), 2);
        assert_eq!(out.dims(), (2, 1, 1));
        assert_eq!(out[(0, 0, 0)], 18.0);
        assert_eq!(out[(1, 0, 0)], 0.0);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let mut input = Tensor3::zeros(2, 3, 3);
        for y in 0..3 {
            for x in 0..3 {
                input.set(0, y, x, 1.0);
                input.set(1, y, x, 10.0);
            }
        }
        let kernels = Tensor4::filled(2, 1, 3, 3, 1.0);
        let out = depthwise_conv(&input, &kernels, &ConvSpec::unit());
        assert_eq!(out.dims(), (2, 1, 1));
        assert_eq!(out[(0, 0, 0)], 9.0);
        assert_eq!(out[(1, 0, 0)], 90.0);
    }

    #[test]
    fn pointwise_mixes_channels() {
        let mut input = Tensor3::zeros(3, 2, 2);
        for (z, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            for y in 0..2 {
                for x in 0..2 {
                    input.set(z, y, x, *v);
                }
            }
        }
        let mut kernels = Tensor4::zeros(1, 3, 1, 1);
        kernels.set(0, 0, 0, 0, 1.0);
        kernels.set(0, 1, 0, 0, 10.0);
        kernels.set(0, 2, 0, 0, 100.0);
        let out = pointwise_conv(&input, &kernels);
        assert_eq!(out.dims(), (1, 2, 2));
        assert!(out.iter().all(|&v| v == 321.0));
    }

    #[test]
    fn depthwise_separable_equals_full_conv_for_rank1_kernels() {
        // A depthwise pass with kernel d_c followed by pointwise p_{m,c}
        // equals a full conv with W[m][c] = p_{m,c}·d_c.
        let mut rng = StdRng::seed_from_u64(11);
        let input = Tensor3::random_uniform(3, 5, 5, 0.0, 1.0, &mut rng);
        let depthwise = Tensor4::random_gaussian(3, 1, 3, 3, 0.5, &mut rng);
        let pointwise = Tensor4::random_gaussian(2, 3, 1, 1, 0.5, &mut rng);
        let sep = pointwise_conv(
            &depthwise_conv(&input, &depthwise, &ConvSpec::unit()),
            &pointwise,
        );
        let mut full = Tensor4::zeros(2, 3, 3, 3);
        for m in 0..2 {
            for c in 0..3 {
                for y in 0..3 {
                    for x in 0..3 {
                        full.set(
                            m,
                            c,
                            y,
                            x,
                            pointwise[(m, c, 0, 0)] * depthwise[(c, 0, y, x)],
                        );
                    }
                }
            }
        }
        let direct = conv2d(&input, &full, &ConvSpec::unit());
        assert!(sep.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn fc_is_dot_product() {
        let input = [1.0, 2.0, 3.0];
        let weights = vec![vec![1.0, 0.0, 0.0], vec![0.5, 0.5, 0.5]];
        let out = fully_connected(&input, &weights);
        assert_eq!(out, vec![1.0, 3.0]);
    }

    #[test]
    fn fc_equals_whole_input_conv() {
        // The paper's framing: FC = conv with receptive field = whole volume.
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor3::random_uniform(2, 3, 3, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(4, 2, 3, 3, 0.5, &mut rng);
        let conv_out = conv2d(&input, &kernels, &ConvSpec::unit());
        assert_eq!(conv_out.dims(), (4, 1, 1));
        let weights: Vec<Vec<f64>> = (0..4).map(|m| kernels.kernel(m).flatten()).collect();
        let fc_out = fully_connected(&input.flatten(), &weights);
        for m in 0..4 {
            assert!((conv_out[(m, 0, 0)] - fc_out[m]).abs() < 1e-12);
        }
    }

    #[test]
    fn max_pool_picks_maximum() {
        let input = Tensor3::from_vec(1, 2, 2, vec![1.0, 5.0, 3.0, 2.0]);
        let out = max_pool(&input, 2, 2);
        assert_eq!(out.dims(), (1, 1, 1));
        assert_eq!(out[(0, 0, 0)], 5.0);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor3::from_vec(1, 2, 2, vec![1.0, 5.0, 3.0, 3.0]);
        let out = avg_pool(&input, 2, 2);
        assert_eq!(out[(0, 0, 0)], 3.0);
    }

    #[test]
    fn relu_non_negative() {
        let input = Tensor3::from_vec(1, 1, 3, vec![-2.0, 0.0, 2.0]);
        let out = relu(&input);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "kernel depth")]
    fn depth_mismatch_panics() {
        let input = Tensor3::zeros(2, 4, 4);
        let kernels = Tensor4::zeros(1, 3, 3, 3);
        let _ = conv2d(&input, &kernels, &ConvSpec::unit());
    }

    #[test]
    fn conv_is_linear_in_input() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor3::random_uniform(2, 4, 4, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 2, 3, 3, 0.5, &mut rng);
        let mut a2 = a.clone();
        a2.map_inplace(|v| 2.0 * v);
        let out1 = conv2d(&a, &kernels, &ConvSpec::unit());
        let out2 = conv2d(&a2, &kernels, &ConvSpec::unit());
        let mut doubled = out1.clone();
        doubled.map_inplace(|v| 2.0 * v);
        assert!(out2.max_abs_diff(&doubled) < 1e-9);
    }
}

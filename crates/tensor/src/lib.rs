//! Dense tensors and reference CNN operators.
//!
//! This crate is the *digital golden model* for the Albireo reproduction: it
//! implements the convolution of Algorithm 1 of the paper (plus
//! fully-connected, depthwise, and pointwise layers) exactly, in `f64`,
//! so that the analog photonic simulation in `albireo-core` can be checked
//! against it up to the predicted analog precision.
//!
//! The indexing convention follows the paper: an input volume `A` is indexed
//! `A[z][y][x]` (channel, row, column) and a kernel stack `W` is indexed
//! `W[m][z][y][x]` (kernel, channel, row, column).
//!
//! # Example
//!
//! ```
//! use albireo_tensor::{Tensor3, Tensor4, conv};
//!
//! let input = Tensor3::filled(3, 8, 8, 1.0);
//! let kernels = Tensor4::filled(4, 3, 3, 3, 0.1);
//! let out = conv::conv2d(&input, &kernels, &conv::ConvSpec::same_padding(3, 1));
//! assert_eq!(out.dims(), (4, 8, 8));
//! ```

pub mod conv;
pub mod im2col;
pub mod quant;
pub mod shape;
pub mod tensor3;
pub mod tensor4;

pub use conv::ConvSpec;
pub use shape::output_extent;
pub use tensor3::Tensor3;
pub use tensor4::Tensor4;

use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was received.
        actual: String,
    },
    /// A dimension was zero where a non-empty tensor is required.
    EmptyDimension(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::EmptyDimension(dim) => write!(f, "dimension `{dim}` must be non-zero"),
        }
    }
}

impl Error for TensorError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TensorError::EmptyDimension("x");
        assert!(e.to_string().contains('x'));
        let e = TensorError::ShapeMismatch {
            expected: "3x3".into(),
            actual: "2x2".into(),
        };
        assert!(e.to_string().contains("3x3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

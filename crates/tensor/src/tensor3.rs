//! Three-dimensional tensors: input/output volumes `A[z][y][x]`.

use rand::distr::{Distribution, Uniform};
use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense 3-D tensor indexed `[z][y][x]` (channel, row, column), matching
/// the paper's input-volume convention.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor3 {
    z: usize,
    y: usize,
    x: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor.
    pub fn zeros(z: usize, y: usize, x: usize) -> Tensor3 {
        Tensor3 {
            z,
            y,
            x,
            data: vec![0.0; z * y * x],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn filled(z: usize, y: usize, x: usize, value: f64) -> Tensor3 {
        Tensor3 {
            z,
            y,
            x,
            data: vec![value; z * y * x],
        }
    }

    /// Creates a tensor from a flat row-major `[z][y][x]` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != z·y·x`.
    pub fn from_vec(z: usize, y: usize, x: usize, data: Vec<f64>) -> Tensor3 {
        assert_eq!(
            data.len(),
            z * y * x,
            "buffer length {} does not match {z}x{y}x{x}",
            data.len()
        );
        Tensor3 { z, y, x, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn random_uniform<R: Rng + ?Sized>(
        z: usize,
        y: usize,
        x: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Tensor3 {
        let dist = Uniform::new(lo, hi).expect("invalid uniform range");
        let data = (0..z * y * x).map(|_| dist.sample(rng)).collect();
        Tensor3 { z, y, x, data }
    }

    /// Dimensions as `(z, y, x)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.z, self.y, self.x)
    }

    /// Channel count (depth `Az`).
    pub fn depth(&self) -> usize {
        self.z
    }

    /// Row count (height `Ay`).
    pub fn height(&self) -> usize {
        self.y
    }

    /// Column count (width `Ax`).
    pub fn width(&self) -> usize {
        self.x
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(z < self.z && y < self.y && x < self.x);
        (z * self.y + y) * self.x + x
    }

    /// Reads an element; returns `None` when out of bounds.
    pub fn get(&self, z: usize, y: usize, x: usize) -> Option<f64> {
        if z < self.z && y < self.y && x < self.x {
            Some(self.data[self.offset(z, y, x)])
        } else {
            None
        }
    }

    /// Reads an element treating out-of-bounds coordinates as zero padding.
    /// Coordinates are signed so callers can index `y − pad` directly.
    pub fn get_padded(&self, z: usize, y: isize, x: isize) -> f64 {
        if y < 0 || x < 0 {
            return 0.0;
        }
        self.get(z, y as usize, x as usize).unwrap_or(0.0)
    }

    /// Writes an element.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, z: usize, y: usize, x: usize, value: f64) {
        let idx = self.offset(z, y, x);
        self.data[idx] = value;
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major data buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Applies a function to every element in place.
    pub fn map_inplace<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Applies the ReLU activation in place.
    pub fn relu_inplace(&mut self) {
        self.map_inplace(|v| v.max(0.0));
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Flattens into a vector in `[z][y][x]` order — the FC-layer input view.
    pub fn flatten(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Maximum elementwise absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor3) -> f64 {
        assert_eq!(self.dims(), other.dims(), "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
    }
}

impl Index<(usize, usize, usize)> for Tensor3 {
    type Output = f64;
    fn index(&self, (z, y, x): (usize, usize, usize)) -> &f64 {
        &self.data[self.offset(z, y, x)]
    }
}

impl IndexMut<(usize, usize, usize)> for Tensor3 {
    fn index_mut(&mut self, (z, y, x): (usize, usize, usize)) -> &mut f64 {
        let idx = self.offset(z, y, x);
        &mut self.data[idx]
    }
}

impl fmt::Display for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor3[{}x{}x{}]", self.z, self.y, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_dims() {
        let t = Tensor3::zeros(2, 3, 4);
        assert_eq!(t.dims(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        assert!(t.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = Tensor3::zeros(2, 3, 4);
        t.set(1, 2, 3, 7.5);
        assert_eq!(t.get(1, 2, 3), Some(7.5));
        assert_eq!(t[(1, 2, 3)], 7.5);
        assert_eq!(t.get(2, 0, 0), None);
    }

    #[test]
    fn row_major_layout() {
        let t = Tensor3::from_vec(1, 2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t[(0, 0, 2)], 2.0);
        assert_eq!(t[(0, 1, 0)], 3.0);
    }

    #[test]
    fn padded_reads() {
        let t = Tensor3::filled(1, 2, 2, 1.0);
        assert_eq!(t.get_padded(0, -1, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, -1), 0.0);
        assert_eq!(t.get_padded(0, 2, 0), 0.0);
        assert_eq!(t.get_padded(0, 1, 1), 1.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor3::from_vec(1, 1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        t.relu_inplace();
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn random_uniform_respects_range_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor3::random_uniform(2, 4, 4, -1.0, 1.0, &mut rng);
        assert!(t.iter().all(|&v| (-1.0..1.0).contains(&v)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor3::random_uniform(2, 4, 4, -1.0, 1.0, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn max_abs_and_diff() {
        let a = Tensor3::from_vec(1, 1, 3, vec![1.0, -4.0, 2.0]);
        let b = Tensor3::from_vec(1, 1, 3, vec![1.0, -3.0, 2.5]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn flatten_matches_layout() {
        let t = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.flatten(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Tensor3::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn display_mentions_shape() {
        assert_eq!(Tensor3::zeros(1, 2, 3).to_string(), "Tensor3[1x2x3]");
    }
}

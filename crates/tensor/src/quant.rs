//! Symmetric fixed-point quantization (paper §II-C2).
//!
//! Albireo targets 8-bit integer inference, the standard energy-efficient
//! quantization level (paper ref. \[28\]); its analog subsystems are designed
//! to support at least 7–8 bits. This module provides the symmetric
//! quantizer used to prepare weights/activations for the analog simulation
//! and to measure quantization error floors.

/// A symmetric linear quantizer over `[-max_abs, +max_abs]` with `bits` of
/// precision (one sign bit included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    max_abs: f64,
}

impl Quantizer {
    /// Builds a quantizer for the given bit width and full-scale magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 31, or `max_abs` is not positive.
    pub fn new(bits: u32, max_abs: f64) -> Quantizer {
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        assert!(
            max_abs > 0.0 && max_abs.is_finite(),
            "max_abs must be positive"
        );
        Quantizer { bits, max_abs }
    }

    /// Builds an 8-bit quantizer sized to the data's maximum magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or all-zero.
    pub fn fit8(data: &[f64]) -> Quantizer {
        Quantizer::fit(8, data)
    }

    /// Builds a quantizer of the given width sized to the data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or all-zero.
    pub fn fit(bits: u32, data: &[f64]) -> Quantizer {
        let max_abs = data.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(max_abs > 0.0, "cannot fit a quantizer to all-zero data");
        Quantizer::new(bits, max_abs)
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale magnitude.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Largest positive integer code.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Quantization step size.
    pub fn step(&self) -> f64 {
        self.max_abs / self.max_code() as f64
    }

    /// Quantizes to an integer code, saturating at the range limits.
    pub fn quantize(&self, value: f64) -> i64 {
        let code = (value / self.step()).round() as i64;
        code.clamp(-self.max_code(), self.max_code())
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, code: i64) -> f64 {
        code as f64 * self.step()
    }

    /// Rounds a value to the nearest representable level.
    pub fn round(&self, value: f64) -> f64 {
        self.dequantize(self.quantize(value))
    }

    /// Applies [`Quantizer::round`] to a slice, returning the quantized copy.
    pub fn round_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.round(v)).collect()
    }

    /// Worst-case quantization error for in-range values: half a step.
    pub fn max_error(&self) -> f64 {
        self.step() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_has_127_codes() {
        let q = Quantizer::new(8, 1.0);
        assert_eq!(q.max_code(), 127);
        assert!((q.step() - 1.0 / 127.0).abs() < 1e-15);
    }

    #[test]
    fn round_trip_within_half_step() {
        let q = Quantizer::new(8, 2.0);
        for i in 0..100 {
            let v = -2.0 + 4.0 * i as f64 / 99.0;
            let r = q.round(v);
            assert!((r - v).abs() <= q.max_error() + 1e-12, "v={v}, r={r}");
        }
    }

    #[test]
    fn saturation_clamps() {
        let q = Quantizer::new(8, 1.0);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn zero_is_exact() {
        let q = Quantizer::new(8, 1.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.round(0.0), 0.0);
    }

    #[test]
    fn fit_sizes_to_data() {
        let q = Quantizer::fit8(&[0.25, -0.5, 0.1]);
        assert_eq!(q.max_abs(), 0.5);
        // Full-scale value is representable exactly at a code boundary.
        assert_eq!(q.quantize(0.5), 127);
    }

    #[test]
    fn more_bits_less_error() {
        let q4 = Quantizer::new(4, 1.0);
        let q8 = Quantizer::new(8, 1.0);
        assert!(q8.max_error() < q4.max_error());
    }

    #[test]
    fn round_all_matches_round() {
        let q = Quantizer::new(6, 1.0);
        let xs = [0.3, -0.7, 0.05];
        let rs = q.round_all(&xs);
        for (r, x) in rs.iter().zip(xs.iter()) {
            assert_eq!(*r, q.round(*x));
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn fit_rejects_zero_data() {
        let _ = Quantizer::fit8(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_rejected() {
        let _ = Quantizer::new(0, 1.0);
    }
}

//! Shape arithmetic for convolution layers (paper Eq. 1).

/// Computes the output extent of a convolution along one spatial dimension
/// (Eq. 1):
///
/// ```text
/// B = ⌈(A − W + 2P) / S⌉ + 1
/// ```
///
/// where `A` is the input extent, `W` the kernel extent, `P` the zero
/// padding, and `S` the stride.
///
/// ```
/// use albireo_tensor::shape::output_extent;
/// // VGG16 3×3 stride-1 pad-1 convolution preserves the extent.
/// assert_eq!(output_extent(224, 3, 1, 1), 224);
/// // AlexNet conv1: 227 input, 11×11 kernel, stride 4 ⇒ 55.
/// assert_eq!(output_extent(227, 11, 0, 4), 55);
/// ```
///
/// # Panics
///
/// Panics if the stride is zero or the padded input is smaller than the
/// kernel.
pub fn output_extent(input: usize, kernel: usize, padding: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel,
        "padded input ({padded}) smaller than kernel ({kernel})"
    );
    (padded - kernel).div_ceil(stride) + 1
}

/// Number of multiply-accumulate operations in a standard convolution with
/// the given geometry (one MAC = one multiply + one add).
pub fn conv_macs(
    out_x: usize,
    out_y: usize,
    kernels: usize,
    kernel_x: usize,
    kernel_y: usize,
    in_channels: usize,
) -> u64 {
    out_x as u64
        * out_y as u64
        * kernels as u64
        * kernel_x as u64
        * kernel_y as u64
        * in_channels as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_conv() {
        assert_eq!(output_extent(10, 1, 0, 1), 10);
    }

    #[test]
    fn valid_conv_shrinks() {
        assert_eq!(output_extent(10, 3, 0, 1), 8);
    }

    #[test]
    fn same_padding_preserves() {
        for n in [7, 8, 32, 224] {
            assert_eq!(output_extent(n, 3, 1, 1), n);
            assert_eq!(output_extent(n, 5, 2, 1), n);
        }
    }

    #[test]
    fn strided_conv() {
        assert_eq!(output_extent(224, 7, 3, 2), 113);
        assert_eq!(output_extent(4, 2, 0, 2), 2);
    }

    #[test]
    fn ceiling_behaviour() {
        // (5 − 3)/2 + 1 = 2 exactly; (6 − 3)/2 = 1.5 → ⌈⌉ = 2, + 1 = 3.
        assert_eq!(output_extent(5, 3, 0, 2), 2);
        assert_eq!(output_extent(6, 3, 0, 2), 3);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = output_extent(8, 3, 0, 0);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn kernel_too_big_panics() {
        let _ = output_extent(2, 5, 0, 1);
    }

    #[test]
    fn mac_count() {
        // 2×2 output, 4 kernels of 3×3×8: 2·2·4·3·3·8 = 1152.
        assert_eq!(conv_macs(2, 2, 4, 3, 3, 8), 1152);
    }
}

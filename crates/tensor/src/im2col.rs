//! im2col convolution: a second, independent formulation of the
//! convolution used to cross-check the direct reference implementation.
//!
//! `im2col` unrolls each receptive field of the input volume into a column
//! of a matrix, turning the convolution into a single matrix-matrix
//! multiplication — the formulation GPU libraries (and many accelerator
//! papers) reason in. Having two independent implementations lets the test
//! suite validate Algorithm 1 property-style: for any input/kernel/stride/
//! padding, `conv2d == im2col_conv2d`.

use crate::conv::ConvSpec;
use crate::shape::output_extent;
use crate::{Tensor3, Tensor4};
use albireo_parallel::Parallelism;

/// A dense row-major matrix, minimal on purpose.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads an element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes an element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_with(rhs, Parallelism::default())
    }

    /// [`matmul`](Matrix::matmul) under an explicit [`Parallelism`] policy.
    /// Output rows are independent work items, so the accumulation order
    /// within a row — and hence the result — is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ.
    pub fn matmul_with(&self, rhs: &Matrix, par: Parallelism) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let _prof = albireo_obs::profile::scope("tensor.gemm");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        par.fill_slices(&mut out.data, rhs.cols.max(1), |i, row| {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for (j, o) in row.iter_mut().enumerate() {
                    *o += a * rhs.data[k * rhs.cols + j];
                }
            }
        });
        out
    }
}

/// Unrolls the input volume into the im2col matrix: one column per output
/// position, one row per (channel, ky, kx) kernel tap.
pub fn im2col(input: &Tensor3, kernel_y: usize, kernel_x: usize, spec: &ConvSpec) -> Matrix {
    let _prof = albireo_obs::profile::scope("tensor.im2col");
    let (az, ay, ax) = input.dims();
    let by = output_extent(ay, kernel_y, spec.padding, spec.stride);
    let bx = output_extent(ax, kernel_x, spec.padding, spec.stride);
    let taps = az * kernel_y * kernel_x;
    let positions = by * bx;
    let pad = spec.padding as isize;
    let mut m = Matrix::zeros(taps, positions);
    for z in 0..az {
        for ky in 0..kernel_y {
            for kx in 0..kernel_x {
                let row = (z * kernel_y + ky) * kernel_x + kx;
                for yb in 0..by {
                    for xb in 0..bx {
                        let y = yb as isize * spec.stride as isize - pad + ky as isize;
                        let x = xb as isize * spec.stride as isize - pad + kx as isize;
                        m.set(row, yb * bx + xb, input.get_padded(z, y, x));
                    }
                }
            }
        }
    }
    m
}

/// Flattens the kernel stack into the weight matrix: one row per kernel,
/// one column per (channel, ky, kx) tap — matching [`im2col`]'s row order.
pub fn kernels_to_matrix(kernels: &Tensor4) -> Matrix {
    let (wm, wz, wy, wx) = kernels.dims();
    let mut m = Matrix::zeros(wm, wz * wy * wx);
    for k in 0..wm {
        for z in 0..wz {
            for ky in 0..wy {
                for kx in 0..wx {
                    m.set(k, (z * wy + ky) * wx + kx, kernels[(k, z, ky, kx)]);
                }
            }
        }
    }
    m
}

/// Convolution via im2col + matmul. Produces exactly the same result as
/// [`crate::conv::conv2d`] (up to floating-point association order).
///
/// # Panics
///
/// Panics if the kernel depth does not match the input depth.
pub fn im2col_conv2d(input: &Tensor3, kernels: &Tensor4, spec: &ConvSpec) -> Tensor3 {
    im2col_conv2d_with(input, kernels, spec, Parallelism::default())
}

/// [`im2col_conv2d`] under an explicit [`Parallelism`] policy (applied to
/// the matrix product, which dominates the cost).
///
/// # Panics
///
/// Panics if the kernel depth does not match the input depth.
pub fn im2col_conv2d_with(
    input: &Tensor3,
    kernels: &Tensor4,
    spec: &ConvSpec,
    par: Parallelism,
) -> Tensor3 {
    let (az, ay, ax) = input.dims();
    let (wm, wz, wy, wx) = kernels.dims();
    assert_eq!(wz, az, "kernel depth must equal input depth");
    let by = output_extent(ay, wy, spec.padding, spec.stride);
    let bx = output_extent(ax, wx, spec.padding, spec.stride);
    let cols = im2col(input, wy, wx, spec);
    let weights = kernels_to_matrix(kernels);
    let product = weights.matmul_with(&cols, par);
    let mut out = Tensor3::zeros(wm, by, bx);
    for m in 0..wm {
        for yb in 0..by {
            for xb in 0..bx {
                out.set(m, yb, xb, product.get(m, yb * bx + xb));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 3.0);
        a.set(1, 1, 4.0);
        let mut b = Matrix::zeros(2, 1);
        b.set(0, 0, 5.0);
        b.set(1, 0, 6.0);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 17.0);
        assert_eq!(c.get(1, 0), 39.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn im2col_shape() {
        let input = Tensor3::filled(2, 4, 4, 1.0);
        let m = im2col(&input, 3, 3, &ConvSpec::unit());
        assert_eq!(m.rows(), 2 * 9);
        assert_eq!(m.cols(), 2 * 2);
    }

    #[test]
    fn im2col_matches_direct_conv_basic() {
        let mut rng = StdRng::seed_from_u64(17);
        let input = Tensor3::random_uniform(3, 7, 7, -1.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(4, 3, 3, 3, 0.5, &mut rng);
        let spec = ConvSpec::unit();
        let a = conv2d(&input, &kernels, &spec);
        let b = im2col_conv2d(&input, &kernels, &spec);
        assert!(a.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn im2col_matches_direct_conv_with_stride_and_padding() {
        let mut rng = StdRng::seed_from_u64(18);
        for (stride, padding) in [(1, 1), (2, 0), (2, 1), (3, 2)] {
            let input = Tensor3::random_uniform(2, 9, 9, -1.0, 1.0, &mut rng);
            let kernels = Tensor4::random_gaussian(3, 2, 3, 3, 0.5, &mut rng);
            let spec = ConvSpec::new(stride, padding);
            let a = conv2d(&input, &kernels, &spec);
            let b = im2col_conv2d(&input, &kernels, &spec);
            assert!(
                a.max_abs_diff(&b) < 1e-10,
                "stride {stride}, padding {padding}"
            );
        }
    }

    #[test]
    fn im2col_matches_for_asymmetric_kernels() {
        let mut rng = StdRng::seed_from_u64(19);
        let input = Tensor3::random_uniform(2, 8, 8, 0.0, 1.0, &mut rng);
        // 1×1 and 5×5 kernels.
        for k in [1usize, 5] {
            let kernels = Tensor4::random_gaussian(2, 2, k, k, 0.5, &mut rng);
            let spec = ConvSpec::unit();
            let a = conv2d(&input, &kernels, &spec);
            let b = im2col_conv2d(&input, &kernels, &spec);
            assert!(a.max_abs_diff(&b) < 1e-10, "kernel {k}");
        }
    }

    #[test]
    fn kernel_matrix_layout() {
        let mut kernels = Tensor4::zeros(2, 1, 2, 2);
        kernels.set(1, 0, 1, 0, 7.0);
        let m = kernels_to_matrix(&kernels);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(1, 2), 7.0);
    }
}

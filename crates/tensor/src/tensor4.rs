//! Four-dimensional tensors: kernel stacks `W[m][z][y][x]`.

use crate::Tensor3;
use rand::Rng;
use rand_distr_normal::sample_normal;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense 4-D tensor indexed `[m][z][y][x]` (kernel, channel, row, column),
/// matching the paper's kernel convention.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor4 {
    m: usize,
    z: usize,
    y: usize,
    x: usize,
    data: Vec<f64>,
}

impl Tensor4 {
    /// Creates a zero-filled tensor.
    pub fn zeros(m: usize, z: usize, y: usize, x: usize) -> Tensor4 {
        Tensor4 {
            m,
            z,
            y,
            x,
            data: vec![0.0; m * z * y * x],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn filled(m: usize, z: usize, y: usize, x: usize, value: f64) -> Tensor4 {
        Tensor4 {
            m,
            z,
            y,
            x,
            data: vec![value; m * z * y * x],
        }
    }

    /// Creates a tensor from a flat row-major `[m][z][y][x]` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m·z·y·x`.
    pub fn from_vec(m: usize, z: usize, y: usize, x: usize, data: Vec<f64>) -> Tensor4 {
        assert_eq!(
            data.len(),
            m * z * y * x,
            "buffer length {} does not match {m}x{z}x{y}x{x}",
            data.len()
        );
        Tensor4 { m, z, y, x, data }
    }

    /// Creates a kernel stack with weights drawn from a zero-mean Gaussian —
    /// the bell-shaped distribution the paper notes for trained CNN weights
    /// (§II-C2).
    pub fn random_gaussian<R: Rng + ?Sized>(
        m: usize,
        z: usize,
        y: usize,
        x: usize,
        std_dev: f64,
        rng: &mut R,
    ) -> Tensor4 {
        let data = (0..m * z * y * x)
            .map(|_| sample_normal(rng) * std_dev)
            .collect();
        Tensor4 { m, z, y, x, data }
    }

    /// Dimensions as `(m, z, y, x)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.m, self.z, self.y, self.x)
    }

    /// Number of kernels `Wm`.
    pub fn kernels(&self) -> usize {
        self.m
    }

    /// Channels per kernel `Wz`.
    pub fn depth(&self) -> usize {
        self.z
    }

    /// Kernel height `Wy`.
    pub fn height(&self) -> usize {
        self.y
    }

    /// Kernel width `Wx`.
    pub fn width(&self) -> usize {
        self.x
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, m: usize, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(m < self.m && z < self.z && y < self.y && x < self.x);
        ((m * self.z + z) * self.y + y) * self.x + x
    }

    /// Reads a weight; returns `None` when out of bounds.
    pub fn get(&self, m: usize, z: usize, y: usize, x: usize) -> Option<f64> {
        if m < self.m && z < self.z && y < self.y && x < self.x {
            Some(self.data[self.offset(m, z, y, x)])
        } else {
            None
        }
    }

    /// Writes a weight.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, m: usize, z: usize, y: usize, x: usize, value: f64) {
        let idx = self.offset(m, z, y, x);
        self.data[idx] = value;
    }

    /// Extracts kernel `m` as a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of bounds.
    pub fn kernel(&self, m: usize) -> Tensor3 {
        assert!(m < self.m, "kernel index {m} out of bounds ({})", self.m);
        let size = self.z * self.y * self.x;
        let start = m * size;
        Tensor3::from_vec(
            self.z,
            self.y,
            self.x,
            self.data[start..start + size].to_vec(),
        )
    }

    /// The flat row-major data buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major data buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Maximum absolute weight (0 for an empty tensor).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }
}

impl Index<(usize, usize, usize, usize)> for Tensor4 {
    type Output = f64;
    fn index(&self, (m, z, y, x): (usize, usize, usize, usize)) -> &f64 {
        &self.data[self.offset(m, z, y, x)]
    }
}

impl IndexMut<(usize, usize, usize, usize)> for Tensor4 {
    fn index_mut(&mut self, (m, z, y, x): (usize, usize, usize, usize)) -> &mut f64 {
        let idx = self.offset(m, z, y, x);
        &mut self.data[idx]
    }
}

impl fmt::Display for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4[{}x{}x{}x{}]", self.m, self.z, self.y, self.x)
    }
}

/// Minimal Box-Muller standard-normal sampler so this crate only needs the
/// `rand` core API.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one sample from the standard normal distribution.
    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dims_and_len() {
        let t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.dims(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = Tensor4::zeros(2, 2, 2, 2);
        t.set(1, 0, 1, 0, 3.5);
        assert_eq!(t.get(1, 0, 1, 0), Some(3.5));
        assert_eq!(t[(1, 0, 1, 0)], 3.5);
        assert_eq!(t.get(2, 0, 0, 0), None);
    }

    #[test]
    fn kernel_extraction() {
        let mut t = Tensor4::zeros(2, 1, 2, 2);
        t.set(1, 0, 0, 0, 9.0);
        let k = t.kernel(1);
        assert_eq!(k.dims(), (1, 2, 2));
        assert_eq!(k[(0, 0, 0)], 9.0);
        let k0 = t.kernel(0);
        assert!(k0.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gaussian_weights_have_bell_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor4::random_gaussian(8, 8, 3, 3, 0.1, &mut rng);
        let mean: f64 = t.as_slice().iter().sum::<f64>() / t.len() as f64;
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std = {}", var.sqrt());
    }

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let ta = Tensor4::random_gaussian(1, 1, 3, 3, 1.0, &mut a);
        let tb = Tensor4::random_gaussian(1, 1, 3, 3, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn kernel_index_checked() {
        let t = Tensor4::zeros(1, 1, 1, 1);
        let _ = t.kernel(1);
    }

    #[test]
    fn max_abs_works() {
        let t = Tensor4::from_vec(1, 1, 1, 3, vec![0.5, -2.0, 1.0]);
        assert_eq!(t.max_abs(), 2.0);
    }

    #[test]
    fn display_mentions_shape() {
        assert_eq!(Tensor4::zeros(1, 2, 3, 4).to_string(), "Tensor4[1x2x3x4]");
    }
}

//! Property-based tests on the tensor operators: the direct convolution
//! (Algorithm 1) must agree with the independent im2col formulation for
//! arbitrary geometry, and the operators must satisfy their algebraic
//! identities.

use albireo_tensor::conv::{
    avg_pool, conv2d, conv2d_grouped, depthwise_conv, fully_connected, max_pool, pointwise_conv,
    relu, ConvSpec,
};
use albireo_tensor::im2col::im2col_conv2d;
use albireo_tensor::quant::Quantizer;
use albireo_tensor::shape::output_extent;
use albireo_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensors(seed: u64, z: usize, n: usize, m: usize, k: usize) -> (Tensor3, Tensor4) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor3::random_uniform(z, n, n, -1.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(m, z, k, k, 0.5, &mut rng);
    (input, kernels)
}

proptest! {
    /// Algorithm 1 and im2col agree for any geometry.
    #[test]
    fn conv_equals_im2col(
        seed in 0u64..5000,
        z in 1usize..5,
        n in 3usize..12,
        m in 1usize..5,
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let (input, kernels) = tensors(seed, z, n, m, 3);
        prop_assume!(n + 2 * padding >= 3);
        let spec = ConvSpec::new(stride, padding);
        let direct = conv2d(&input, &kernels, &spec);
        let unrolled = im2col_conv2d(&input, &kernels, &spec);
        prop_assert!(direct.max_abs_diff(&unrolled) < 1e-9);
    }

    /// Output shape always matches Eq. 1.
    #[test]
    fn conv_output_shape_matches_eq1(
        z in 1usize..4,
        n in 3usize..16,
        m in 1usize..4,
        stride in 1usize..4,
        padding in 0usize..3,
    ) {
        let (input, kernels) = tensors(1, z, n, m, 3);
        prop_assume!(n + 2 * padding >= 3);
        let spec = ConvSpec::new(stride, padding);
        let out = conv2d(&input, &kernels, &spec);
        let expected = output_extent(n, 3, padding, stride);
        prop_assert_eq!(out.dims(), (m, expected, expected));
    }

    /// Convolution distributes over kernel addition:
    /// conv(A, W1 + W2) = conv(A, W1) + conv(A, W2).
    #[test]
    fn conv_distributes_over_kernels(seed in 0u64..2000) {
        let (input, k1) = tensors(seed, 2, 6, 2, 3);
        let (_, k2) = tensors(seed + 1, 2, 6, 2, 3);
        let mut sum_kernel = k1.clone();
        for (s, v) in sum_kernel.as_mut_slice().iter_mut().zip(k2.as_slice()) {
            *s += v;
        }
        let spec = ConvSpec::unit();
        let combined = conv2d(&input, &sum_kernel, &spec);
        let a = conv2d(&input, &k1, &spec);
        let b = conv2d(&input, &k2, &spec);
        let mut summed = a.clone();
        for (s, v) in summed.as_mut_slice().iter_mut().zip(b.as_slice()) {
            *s += v;
        }
        prop_assert!(combined.max_abs_diff(&summed) < 1e-9);
    }

    /// Grouped convolution with one group equals the dense convolution.
    #[test]
    fn grouped_one_equals_dense(seed in 0u64..2000, z in 1usize..6) {
        let (input, kernels) = tensors(seed, z, 6, 2, 3);
        let spec = ConvSpec::unit();
        let dense = conv2d(&input, &kernels, &spec);
        let grouped = conv2d_grouped(&input, &kernels, &spec, 1);
        prop_assert!(dense.max_abs_diff(&grouped) < 1e-12);
    }

    /// Depthwise + pointwise equals the equivalent rank-1 full convolution.
    #[test]
    fn separable_equals_rank1_full(seed in 0u64..2000, c in 1usize..5, m in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(c, 6, 6, 0.0, 1.0, &mut rng);
        let dw = Tensor4::random_gaussian(c, 1, 3, 3, 0.5, &mut rng);
        let pw = Tensor4::random_gaussian(m, c, 1, 1, 0.5, &mut rng);
        let spec = ConvSpec::unit();
        let separable = pointwise_conv(&depthwise_conv(&input, &dw, &spec), &pw);
        let mut full = Tensor4::zeros(m, c, 3, 3);
        for mi in 0..m {
            for ci in 0..c {
                for y in 0..3 {
                    for x in 0..3 {
                        full.set(mi, ci, y, x, pw[(mi, ci, 0, 0)] * dw[(ci, 0, y, x)]);
                    }
                }
            }
        }
        let direct = conv2d(&input, &full, &spec);
        prop_assert!(separable.max_abs_diff(&direct) < 1e-8);
    }

    /// FC output is linear in its input.
    #[test]
    fn fc_linearity(seed in 0u64..2000, alpha in 0.1f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..20).map(|_| rand::Rng::random::<f64>(&mut rng)).collect();
        let w: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..20).map(|_| rand::Rng::random::<f64>(&mut rng) - 0.5).collect())
            .collect();
        let base = fully_connected(&a, &w);
        let scaled_in: Vec<f64> = a.iter().map(|v| v * alpha).collect();
        let scaled = fully_connected(&scaled_in, &w);
        for (s, b) in scaled.iter().zip(base.iter()) {
            prop_assert!((s - b * alpha).abs() < 1e-9 * alpha.max(1.0) * 20.0);
        }
    }

    /// Max pool dominates average pool elementwise.
    #[test]
    fn max_pool_dominates_avg(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(2, 8, 8, -1.0, 1.0, &mut rng);
        let mx = max_pool(&input, 2, 2);
        let avg = avg_pool(&input, 2, 2);
        for (m, a) in mx.iter().zip(avg.iter()) {
            prop_assert!(m >= a);
        }
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(2, 5, 5, -2.0, 2.0, &mut rng);
        let once = relu(&input);
        let twice = relu(&once);
        prop_assert!(once.max_abs_diff(&twice) < 1e-15);
        prop_assert!(once.iter().all(|&v| v >= 0.0));
    }

    /// Quantize→dequantize is a projection: applying it twice equals once.
    #[test]
    fn quantization_is_projection(bits in 2u32..12, value in -3.0f64..3.0) {
        let q = Quantizer::new(bits, 1.0);
        let once = q.round(value);
        let twice = q.round(once);
        prop_assert_eq!(once, twice);
    }

    /// Quantization codes are monotone in the value.
    #[test]
    fn quantization_monotone(bits in 2u32..12, a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let q = Quantizer::new(bits, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }
}

//! Property tests of the determinism contract: every parallel operator in
//! `albireo-tensor` is bit-identical to its serial execution for arbitrary
//! shapes and any thread count (the workspace's standard counts 1/2/8 plus
//! an oversubscribed 64).

use albireo_parallel::Parallelism;
use albireo_tensor::conv::{conv2d_with, depthwise_conv_with, pointwise_conv_with, ConvSpec};
use albireo_tensor::im2col::{im2col_conv2d_with, Matrix};
use albireo_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 8, 64];

fn conv_case(seed: u64, z: usize, n: usize, m: usize, k: usize) -> (Tensor3, Tensor4) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor3::random_uniform(z, n, n, -1.0, 1.0, &mut rng);
    let kernels = Tensor4::random_gaussian(m, z, k, k, 0.5, &mut rng);
    (input, kernels)
}

proptest! {
    #[test]
    fn conv2d_bit_identical_at_any_thread_count(
        seed in 0u64..1 << 32,
        z in 1usize..4,
        n in 4usize..10,
        m in 1usize..7,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let (input, kernels) = conv_case(seed, z, n, m, k);
        let spec = ConvSpec::new(stride, padding);
        let serial = conv2d_with(&input, &kernels, &spec, Parallelism::serial());
        for threads in THREAD_COUNTS {
            let par = conv2d_with(&input, &kernels, &spec, Parallelism::with_threads(threads));
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn depthwise_bit_identical_at_any_thread_count(
        seed in 0u64..1 << 32,
        z in 1usize..5,
        n in 4usize..10,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(z, n, n, -1.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(z, 1, k, k, 0.5, &mut rng);
        let spec = ConvSpec::unit();
        let serial = depthwise_conv_with(&input, &kernels, &spec, Parallelism::serial());
        for threads in THREAD_COUNTS {
            let par =
                depthwise_conv_with(&input, &kernels, &spec, Parallelism::with_threads(threads));
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn pointwise_bit_identical_at_any_thread_count(
        seed in 0u64..1 << 32,
        z in 1usize..5,
        n in 2usize..8,
        m in 1usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(z, n, n, -1.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(m, z, 1, 1, 0.5, &mut rng);
        let serial = pointwise_conv_with(&input, &kernels, Parallelism::serial());
        for threads in THREAD_COUNTS {
            let par = pointwise_conv_with(&input, &kernels, Parallelism::with_threads(threads));
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn matmul_bit_identical_at_any_thread_count(
        seed in 0u64..1 << 32,
        rows in 1usize..9,
        inner in 1usize..9,
        cols in 1usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill = |r: usize, c: usize| {
            let mut m = Matrix::zeros(r, c);
            for i in 0..r {
                for j in 0..c {
                    m.set(i, j, rng.random::<f64>() * 2.0 - 1.0);
                }
            }
            m
        };
        let lhs = fill(rows, inner);
        let rhs = fill(inner, cols);
        let serial = lhs.matmul_with(&rhs, Parallelism::serial());
        for threads in THREAD_COUNTS {
            let par = lhs.matmul_with(&rhs, Parallelism::with_threads(threads));
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn im2col_conv_bit_identical_at_any_thread_count(
        seed in 0u64..1 << 32,
        z in 1usize..4,
        n in 4usize..9,
        m in 1usize..6,
        k in 1usize..4,
    ) {
        let (input, kernels) = conv_case(seed, z, n, m, k);
        let spec = ConvSpec::unit();
        let serial = im2col_conv2d_with(&input, &kernels, &spec, Parallelism::serial());
        for threads in THREAD_COUNTS {
            let par =
                im2col_conv2d_with(&input, &kernels, &spec, Parallelism::with_threads(threads));
            prop_assert_eq!(&par, &serial);
        }
    }
}

//! Incoherent-MRR GEMM operating mode: dense matrix multiply as a
//! first-class photonic schedule.
//!
//! Albireo's direct dataflow treats a fully-connected layer as a
//! degenerate convolution: no parameter sharing means only one
//! photodetector column per PLCU does useful work, and the `Nd`-wide
//! multicast buys nothing. This mode re-schedules dense layers the way
//! incoherent microring GEMM accelerators do (parameter anchors from
//! Sri Vatsavai et al.'s comparative analysis, arXiv:2402.03149):
//!
//! * The array is a weight-stationary tile of `Kt × Mt` MRR weight
//!   cells with `Kt = Nm·Nu` WDM input channels (the chip's existing
//!   modulator count per group) and `Mt = Nd·Ng` parallel output lanes
//!   (every photodetector column earns its keep).
//! * A GEMM `C[M×N] = W[M×K] · X[K×N]` runs as `⌈M/Mt⌉·⌈K/Kt⌉` weight
//!   tiles; each tile streams all `N` input columns at one column per
//!   cycle: `cycles = ⌈M/Mt⌉ · ⌈K/Kt⌉ · N`.
//! * Energy is converter-counted with the `core::dataflow_alt`
//!   machinery rather than billed as an always-on Table III budget:
//!   weight DACs update once per tile load (weight-stationary), input
//!   DACs once per streamed element, ADCs once per output-lane read,
//!   partial sums beyond the first K-tile spill one byte each way
//!   through the global buffer, and the photonic floor (laser, MRR
//!   thermal tuning, TIAs, SRAM static) integrates over the run.
//!
//! Layer coverage: [`LayerKind::FullyConnected`] is `(M, K, N) =
//! (outputs, inputs, 1)` and [`LayerKind::Pointwise`] is `(kernels,
//! channels, pixels)` — exactly the layers MLP-Mixer and transformer
//! encoder blocks are made of. Spatial convolutions and depthwise
//! layers are *not* schedulable (the mode has no im2col path), so
//! [`supports`](Accelerator::supports) rejects CNN trunks and the
//! fleet dispatcher routes them to direct or Winograd chips.

use albireo_core::accel::{Accelerator, LayerCost, NetworkCost};
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::dataflow_alt::dac_update_energy_j;
use albireo_core::memory::MemoryModel;
use albireo_core::power::PowerBreakdown;
use albireo_nn::layer::{LayerInstance, LayerKind};
use albireo_nn::Model;

/// The GEMM dimensions `(M, K, N)` of a schedulable layer; `None` for
/// pooling (free) and for kinds the mode cannot run.
pub fn gemm_dims(layer: &LayerInstance) -> Option<(usize, usize, usize)> {
    match layer.kind {
        LayerKind::FullyConnected { outputs } => Some((outputs, layer.input.elements(), 1)),
        LayerKind::Pointwise { kernels } => {
            Some((kernels, layer.input.z, layer.output.y * layer.output.x))
        }
        _ => None,
    }
}

/// The Albireo silicon re-scheduled as an incoherent weight-stationary
/// GEMM engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmMode {
    /// Display name (e.g. `gemm_9`).
    pub name: String,
    /// Chip geometry the tile sizes derive from.
    pub chip: ChipConfig,
    /// Device-technology estimate (sets clock and converter energies).
    pub estimate: TechnologyEstimate,
}

impl GemmMode {
    /// A GEMM-mode chip with an explicit name.
    pub fn new(name: impl Into<String>, chip: ChipConfig, estimate: TechnologyEstimate) -> Self {
        GemmMode {
            name: name.into(),
            chip,
            estimate,
        }
    }

    /// The 9-PLCG chip in GEMM mode.
    pub fn gemm_9(estimate: TechnologyEstimate) -> Self {
        Self::new("gemm_9", ChipConfig::albireo_9(), estimate)
    }

    /// The 27-PLCG chip in GEMM mode.
    pub fn gemm_27(estimate: TechnologyEstimate) -> Self {
        Self::new("gemm_27", ChipConfig::albireo_27(), estimate)
    }

    /// WDM input-channel tile height `Kt = Nm·Nu`.
    pub fn k_tile(chip: &ChipConfig) -> usize {
        chip.plcu.nm * chip.nu
    }

    /// Output-lane tile width `Mt = Nd·Ng`.
    pub fn m_tile(chip: &ChipConfig) -> usize {
        chip.plcu.nd * chip.ng
    }

    /// The always-on photonic floor while the GEMM array runs, W:
    /// laser, MRR thermal tuning, TIAs, and SRAM static power.
    /// Converters are *not* in the floor — they are counted per update.
    fn floor_w(chip: &ChipConfig, estimate: TechnologyEstimate) -> f64 {
        let b = PowerBreakdown::for_chip(chip, estimate);
        b.laser_w + b.mrr_w + b.tia_w + b.cache_w
    }
}

impl Accelerator for GemmMode {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> String {
        format!(
            "Albireo-{} incoherent GEMM ({} est.)",
            self.chip.ng,
            self.estimate.suffix()
        )
    }

    fn compute_groups(&self) -> usize {
        self.chip.ng
    }

    /// Only dense layers schedule: every compute layer must be
    /// fully-connected or pointwise (pooling runs in the digital path,
    /// as everywhere else).
    fn supports(&self, model: &Model) -> bool {
        model.layers().iter().all(|l| {
            !l.is_compute()
                || matches!(
                    l.kind,
                    LayerKind::FullyConnected { .. } | LayerKind::Pointwise { .. }
                )
        })
    }

    /// Laser plus MRR thermal tuning, like every photonic design here.
    fn idle_power_w(&self) -> f64 {
        let b = PowerBreakdown::for_chip(&self.chip, self.estimate);
        b.laser_w + b.mrr_w
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert!(
            active_groups > 0 && active_groups <= self.chip.ng,
            "{}: active groups {active_groups} outside 1..={}",
            self.name,
            self.chip.ng
        );
        assert!(
            self.supports(model),
            "{}: {} has spatial conv/depthwise layers the GEMM mode cannot schedule",
            self.name,
            model.name()
        );
        let mut chip = self.chip;
        chip.ng = active_groups;
        let clock = self.estimate.clock_hz();
        let k_tile = Self::k_tile(&chip) as u64;
        let m_tile = Self::m_tile(&chip) as u64;
        let peak = chip.peak_macs_per_cycle() as f64;
        let e_dac = dac_update_energy_j(self.estimate);
        let p = self.estimate.device_powers();
        let e_adc = p.adc_w / p.sample_rate_hz;
        let floor_w = Self::floor_w(&chip, self.estimate);
        let mem = MemoryModel::paper();
        let per_layer: Vec<LayerCost> = model
            .layers()
            .iter()
            .map(|layer| {
                let Some((m, k, n)) = gemm_dims(layer) else {
                    // Pooling: free, like the direct schedule.
                    return LayerCost {
                        name: layer.name.clone(),
                        cycles: 0,
                        latency_s: 0.0,
                        energy_j: 0.0,
                        macs: 0,
                        utilization: 0.0,
                    };
                };
                let (m, k, n) = (m as u64, k as u64, n as u64);
                let m_tiles = m.div_ceil(m_tile);
                let k_tiles = k.div_ceil(k_tile);
                let cycles = m_tiles * k_tiles * n;
                let latency_s = cycles as f64 / clock;
                // Weight-stationary converter traffic: one array load per
                // weight tile, streaming inputs, one ADC read per output
                // lane per cycle, byte-wide partial spills past the first
                // K tile.
                let weight_updates = m_tiles * k_tiles * m_tile * k_tile;
                let input_updates = cycles * k_tile;
                let adc_reads = cycles * m_tile;
                let partial_bytes = 2 * m * n * k_tiles.saturating_sub(1);
                let energy_j = (weight_updates + input_updates) as f64 * e_dac
                    + adc_reads as f64 * e_adc
                    + mem.buffer_access_energy_j(partial_bytes)
                    + floor_w * latency_s;
                let macs = layer.macs();
                LayerCost {
                    name: layer.name.clone(),
                    cycles,
                    latency_s,
                    energy_j,
                    macs,
                    utilization: macs as f64 / (cycles as f64 * peak),
                }
            })
            .collect();
        let latency_s: f64 = per_layer.iter().map(|l| l.latency_s).sum();
        let energy_j: f64 = per_layer.iter().map(|l| l.energy_j).sum();
        NetworkCost {
            accelerator: self.name.clone(),
            network: model.name().to_string(),
            cycles: per_layer.iter().map(|l| l.cycles).sum(),
            latency_s,
            energy_j,
            power_w: if latency_s > 0.0 {
                energy_j / latency_s
            } else {
                0.0
            },
            wavelengths: Self::k_tile(&chip),
            // Weights stream tile by tile inside the run (they are part
            // of the cycle count), so there is no per-batch programming
            // pass — the PIXEL convention.
            setup_s: 0.0,
            setup_energy_j: 0.0,
            per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_core::accel::AlbireoAccelerator;
    use albireo_nn::layer::VolumeShape;
    use albireo_nn::zoo;

    fn gemm() -> GemmMode {
        GemmMode::gemm_9(TechnologyEstimate::Conservative)
    }

    fn fc_layer(outputs: usize, input: VolumeShape) -> LayerInstance {
        LayerInstance {
            name: "fc".into(),
            kind: LayerKind::FullyConnected { outputs },
            input,
            output: VolumeShape::new(outputs, 1, 1),
            is_branch: false,
        }
    }

    #[test]
    fn supports_dense_rejects_conv() {
        let g = gemm();
        assert!(g.supports(&zoo::mlp_mixer()));
        assert!(g.supports(&zoo::transformer_encoder_block()));
        assert!(!g.supports(&zoo::alexnet()));
        assert!(!g.supports(&zoo::vgg16()));
        assert!(!g.supports(&zoo::mobilenet()), "depthwise is not GEMM");
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn costing_an_unsupported_model_panics() {
        let _ = gemm().cost(&zoo::alexnet());
    }

    #[test]
    fn fc_tile_formula() {
        // M = 4096, K = 9216, N = 1 on Albireo-9 (Mt = 5·9 = 45,
        // Kt = 9·3 = 27): ⌈4096/45⌉·⌈9216/27⌉·1 = 92·342.
        let li = fc_layer(4096, VolumeShape::new(256, 6, 6));
        assert_eq!(gemm_dims(&li), Some((4096, 9216, 1)));
        let mut b = albireo_nn::Model::builder("fc-only", VolumeShape::new(256, 6, 6));
        b.push("fc", LayerKind::FullyConnected { outputs: 4096 })
            .expect("fc geometry is valid");
        let model = b.build().expect("fc-only builds");
        let cost = gemm().cost(&model);
        assert_eq!(cost.cycles, 92 * 342);
    }

    #[test]
    fn dense_layers_beat_the_direct_schedule() {
        // The direct dataflow wastes Nd−1 of every PLCU's output lanes
        // on FC layers; GEMM mode recovers them, so the all-dense
        // networks run ~Nd× fewer cycles.
        let direct = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        for model in [zoo::mlp_mixer(), zoo::transformer_encoder_block()] {
            let d = direct.cost(&model);
            let g = gemm().cost(&model);
            assert!(
                g.latency_s < d.latency_s,
                "{}: {} vs {}",
                model.name(),
                g.latency_s,
                d.latency_s
            );
            assert!(g.energy_j < d.energy_j);
        }
    }

    #[test]
    fn converter_energy_scales_with_work_not_wall_clock() {
        // Power is derived (energy/latency), bounded below by the floor
        // and above by the direct chip's Table III budget.
        let g = gemm().cost(&zoo::mlp_mixer());
        let floor = GemmMode::floor_w(&ChipConfig::albireo_9(), TechnologyEstimate::Conservative);
        let table_iii =
            PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Conservative)
                .total_w();
        assert!(g.power_w > floor, "{} vs floor {floor}", g.power_w);
        assert!(g.power_w < table_iii, "{} vs {table_iii}", g.power_w);
    }

    #[test]
    fn weights_stream_so_setup_is_free() {
        let g = gemm().cost(&zoo::mlp_mixer());
        assert_eq!(g.setup_s, 0.0);
        assert_eq!(g.setup_energy_j, 0.0);
    }

    #[test]
    fn degradation_shrinks_the_output_tile() {
        let g = gemm();
        let healthy = g.cost(&zoo::mlp_mixer());
        let degraded = g.cost_with_groups(&zoo::mlp_mixer(), 3);
        assert!(degraded.latency_s > healthy.latency_s);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_groups_rejected() {
        let _ = gemm().cost_with_groups(&zoo::mlp_mixer(), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        for model in [zoo::mlp_mixer(), zoo::transformer_encoder_block()] {
            for l in gemm().cost(&model).per_layer {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&l.utilization),
                    "{}: {}",
                    l.name,
                    l.utilization
                );
            }
        }
    }

    #[test]
    fn wavelengths_are_the_wdm_input_channels() {
        assert_eq!(gemm().cost(&zoo::mlp_mixer()).wavelengths, 27);
    }
}

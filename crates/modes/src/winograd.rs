//! Winograd F(2×2, 3×3) transform-domain convolution on the Albireo
//! analog model.
//!
//! The minimal-filtering algorithm computes a 2×2 patch of outputs from
//! a 4×4 input tile with 16 element-wise multiplies in the transform
//! domain, where the direct method needs 2×2×9 = 36 — a 2.25× multiply
//! reduction at the price of cheap add-only transforms:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! Mapped onto Albireo (after Mehrabian et al., arXiv:1906.10487):
//!
//! * The 16 Hadamard multiplies of a tile take the place of the 3×3
//!   kernel dot product in the PLCU: the `Nm` MZM segments hold
//!   transform-domain weight elements, so a tile needs `⌈16/Nm⌉`
//!   passes (2 on the paper's `Nm = 9` PLCU). Channel aggregation is
//!   unchanged — transform and summation commute, so the analog
//!   accumulation across `Nu` PLCUs and `⌈Wz/Nu⌉` channel groups is
//!   identical to the direct dataflow.
//! * The `Nd` output columns of a PLCU each process one 2×2 output
//!   *tile* instead of one output element, so a row of tiles covers
//!   twice the image width per pass.
//! * `Bᵀ d B` (32 adds per input tile per channel) and `Aᵀ m A`
//!   (24 adds per tile per kernel) are pure add networks, charged to
//!   the electronic side at [`ADD_ENERGY_J`] per add; they pipeline
//!   with the photonic array and add no latency term.
//! * `G g Gᵀ` is a weight-side transform, folded into the one-time
//!   weight-programming setup: a 3×3 filter becomes 16 transform-domain
//!   values, so eligible layers program 16/9× the DAC words.
//!
//! Only stride-1 3×3 convolutions are transformable; every other layer
//! (strided stems, 11×11/7×7/5×5 convs, depthwise, pointwise, FC) falls
//! back to the direct schedule so whole networks still evaluate. The
//! consequence the goldens pin: VGG-class networks (all-3×3 trunks)
//! shift the latency/energy frontier by ~2×, while MobileNet (no
//! eligible layer at all) is byte-identical to the direct chip.

use albireo_core::accel::{Accelerator, LayerCost, NetworkCost};
use albireo_core::config::{ChipConfig, TechnologyEstimate};
use albireo_core::inventory::DeviceInventory;
use albireo_core::power::PowerBreakdown;
use albireo_core::sched;
use albireo_nn::layer::{LayerInstance, LayerKind};
use albireo_nn::Model;

/// Photonic multiplies per 2×2 output tile (the 4×4 Hadamard product).
pub const TILE_MULTIPLIES: usize = 16;

/// Direct multiplies the same tile would cost (2×2 outputs × 9 taps).
pub const DIRECT_TILE_MULTIPLIES: usize = 36;

/// Adds in one `Bᵀ d B` input-tile transform (two 1-D passes of 4×4).
pub const INPUT_TRANSFORM_ADDS: usize = 32;

/// Adds in one `Aᵀ m A` output-tile transform.
pub const OUTPUT_TRANSFORM_ADDS: usize = 24;

/// Energy of one electronic accumulator add, J (32-bit integer add in a
/// ~45 nm node, Horowitz ISSCC 2014 — the same technology vintage as the
/// paper's converter numbers).
pub const ADD_ENERGY_J: f64 = 0.1e-12;

/// Whether a layer can run in the Winograd F(2×2, 3×3) transform domain:
/// a stride-1 convolution with a 3×3 kernel (grouped convs qualify; the
/// transform is per-group).
pub fn winograd_eligible(kind: &LayerKind) -> bool {
    matches!(
        kind,
        LayerKind::Conv {
            kernel_y: 3,
            kernel_x: 3,
            stride: 1,
            ..
        }
    )
}

fn ceil_div(a: usize, b: usize) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b) as u64
}

/// The Albireo chip running the Winograd transform-domain dataflow on
/// every eligible layer, direct on the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct WinogradAccelerator {
    /// Display name (e.g. `winograd_9`).
    pub name: String,
    /// Chip geometry (shared with the direct-dataflow chip).
    pub chip: ChipConfig,
    /// Device-technology estimate (sets clock and power).
    pub estimate: TechnologyEstimate,
}

impl WinogradAccelerator {
    /// A Winograd-mode chip with an explicit name.
    pub fn new(name: impl Into<String>, chip: ChipConfig, estimate: TechnologyEstimate) -> Self {
        WinogradAccelerator {
            name: name.into(),
            chip,
            estimate,
        }
    }

    /// The 9-PLCG chip in Winograd mode.
    pub fn winograd_9(estimate: TechnologyEstimate) -> Self {
        Self::new("winograd_9", ChipConfig::albireo_9(), estimate)
    }

    /// The 27-PLCG chip in Winograd mode.
    pub fn winograd_27(estimate: TechnologyEstimate) -> Self {
        Self::new("winograd_27", ChipConfig::albireo_27(), estimate)
    }

    /// Cycles of one eligible layer in the transform domain.
    fn winograd_cycles(chip: &ChipConfig, layer: &LayerInstance) -> u64 {
        let LayerKind::Conv {
            kernels, groups, ..
        } = layer.kind
        else {
            unreachable!("winograd_cycles requires an eligible conv layer");
        };
        let depth = layer.input.z / groups;
        let tiles_y = ceil_div(layer.output.y, 2);
        let tiles_x = layer.output.x.div_ceil(2);
        // Like the direct formula, with tile rows/columns in place of
        // output rows/columns and ⌈16/Nm⌉ transform-domain passes in
        // place of ⌈9/Nm⌉ kernel passes. No stride penalty: eligibility
        // already requires stride 1.
        ceil_div(kernels, chip.ng)
            * tiles_y
            * ceil_div(tiles_x, chip.plcu.nd)
            * ceil_div(depth, chip.nu)
            * ceil_div(TILE_MULTIPLIES, chip.plcu.nm)
    }

    /// Photonic multiplies of one eligible layer: 16 per tile per
    /// (kernel, channel) pair — the quantity the MAC-reduction claim is
    /// about.
    fn winograd_macs(layer: &LayerInstance) -> u64 {
        let LayerKind::Conv {
            kernels, groups, ..
        } = layer.kind
        else {
            unreachable!("winograd_macs requires an eligible conv layer");
        };
        let depth = (layer.input.z / groups) as u64;
        let tiles = ceil_div(layer.output.y, 2) * ceil_div(layer.output.x, 2);
        tiles * TILE_MULTIPLIES as u64 * depth * kernels as u64
    }

    /// Electronic transform energy of one eligible layer, J: input-tile
    /// transforms once per (tile, input channel), output-tile transforms
    /// once per (tile, kernel).
    fn transform_energy_j(layer: &LayerInstance) -> f64 {
        let LayerKind::Conv { kernels, .. } = layer.kind else {
            unreachable!("transform_energy_j requires an eligible conv layer");
        };
        let tiles = ceil_div(layer.output.y, 2) * ceil_div(layer.output.x, 2);
        let input_adds = tiles * layer.input.z as u64 * INPUT_TRANSFORM_ADDS as u64;
        let output_adds = tiles * kernels as u64 * OUTPUT_TRANSFORM_ADDS as u64;
        (input_adds + output_adds) as f64 * ADD_ENERGY_J
    }

    /// DAC words programmed during setup: eligible layers hold 16
    /// transform-domain values per 3×3 filter slice (16/9× the direct
    /// parameter count); everything else programs its direct weights.
    fn setup_words(model: &Model) -> u64 {
        model
            .layers()
            .iter()
            .map(|layer| {
                if winograd_eligible(&layer.kind) {
                    (layer.params() * TILE_MULTIPLIES as u64) / 9
                } else {
                    layer.params()
                }
            })
            .sum()
    }
}

impl Accelerator for WinogradAccelerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> String {
        format!(
            "Albireo-{} Winograd F(2x2,3x3) ({} est.)",
            self.chip.ng,
            self.estimate.suffix()
        )
    }

    fn compute_groups(&self) -> usize {
        self.chip.ng
    }

    /// Same always-on photonic floor as the direct chip: the silicon is
    /// identical, only the schedule differs.
    fn idle_power_w(&self) -> f64 {
        let b = PowerBreakdown::for_chip(&self.chip, self.estimate);
        b.laser_w + b.mrr_w
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert!(
            active_groups > 0 && active_groups <= self.chip.ng,
            "{}: active groups {active_groups} outside 1..={}",
            self.name,
            self.chip.ng
        );
        let mut chip = self.chip;
        chip.ng = active_groups;
        let clock = self.estimate.clock_hz();
        let power = PowerBreakdown::for_chip(&chip, self.estimate).total_w();
        let peak = chip.peak_macs_per_cycle() as f64;
        let per_layer: Vec<LayerCost> = model
            .layers()
            .iter()
            .map(|layer| {
                let eligible = winograd_eligible(&layer.kind);
                let (cycles, macs, transform_j) = if eligible {
                    (
                        Self::winograd_cycles(&chip, layer),
                        Self::winograd_macs(layer),
                        Self::transform_energy_j(layer),
                    )
                } else {
                    (sched::layer_cycles(&chip, layer), layer.macs(), 0.0)
                };
                let latency_s = cycles as f64 / clock;
                let utilization = if cycles == 0 {
                    0.0
                } else {
                    macs as f64 / (cycles as f64 * peak)
                };
                LayerCost {
                    name: layer.name.clone(),
                    cycles,
                    latency_s,
                    energy_j: power * latency_s + transform_j,
                    macs,
                    utilization,
                }
            })
            .collect();
        let latency_s: f64 = per_layer.iter().map(|l| l.latency_s).sum();
        let energy_j: f64 = per_layer.iter().map(|l| l.energy_j).sum();
        let inv = DeviceInventory::for_chip(&chip);
        let setup_s = Self::setup_words(model) as f64 / (inv.dacs as f64 * clock);
        NetworkCost {
            accelerator: self.name.clone(),
            network: model.name().to_string(),
            cycles: per_layer.iter().map(|l| l.cycles).sum(),
            latency_s,
            energy_j,
            power_w: power,
            wavelengths: chip.wavelengths_per_plcg(),
            setup_s,
            setup_energy_j: power * setup_s,
            per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_core::accel::AlbireoAccelerator;
    use albireo_nn::layer::VolumeShape;
    use albireo_nn::zoo;

    fn direct() -> AlbireoAccelerator {
        AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative)
    }

    fn winograd() -> WinogradAccelerator {
        WinogradAccelerator::winograd_9(TechnologyEstimate::Conservative)
    }

    #[test]
    fn eligibility_is_stride_1_3x3_conv_only() {
        assert!(winograd_eligible(&LayerKind::conv(64, 3, 1, 1)));
        assert!(winograd_eligible(&LayerKind::conv_grouped(384, 3, 1, 1, 2)));
        assert!(!winograd_eligible(&LayerKind::conv(64, 3, 2, 0)));
        assert!(!winograd_eligible(&LayerKind::conv(96, 11, 4, 0)));
        assert!(!winograd_eligible(&LayerKind::Depthwise {
            kernel: 3,
            stride: 1,
            padding: 1,
        }));
        assert!(!winograd_eligible(&LayerKind::Pointwise { kernels: 64 }));
        assert!(!winograd_eligible(&LayerKind::FullyConnected {
            outputs: 1000
        }));
    }

    #[test]
    fn unit_tile_formula() {
        // 64 kernels of 3×3×64 over a 56×56 output on Albireo-9:
        // ⌈64/9⌉ · ⌈56/2⌉ · ⌈28/5⌉ · ⌈64/3⌉ · ⌈16/9⌉ = 8·28·6·22·2,
        // exactly half the direct layer's 8·56·12·22·1 cycles.
        let chip = ChipConfig::albireo_9();
        let li = LayerInstance {
            name: "conv".into(),
            kind: LayerKind::conv(64, 3, 1, 1),
            input: VolumeShape::new(64, 56, 56),
            output: VolumeShape::new(64, 56, 56),
            is_branch: false,
        };
        assert_eq!(
            WinogradAccelerator::winograd_cycles(&chip, &li),
            8 * 28 * 6 * 22 * 2
        );
        assert_eq!(sched::layer_cycles(&chip, &li), 8 * 56 * 12 * 22);
    }

    #[test]
    fn mac_reduction_is_2_25x_on_even_tiles() {
        // 36 direct multiplies per 2×2 tile vs 16 transform-domain.
        let li = LayerInstance {
            name: "conv".into(),
            kind: LayerKind::conv(64, 3, 1, 1),
            input: VolumeShape::new(64, 56, 56),
            output: VolumeShape::new(64, 56, 56),
            is_branch: false,
        };
        let ratio = li.macs() as f64 / WinogradAccelerator::winograd_macs(&li) as f64;
        assert!((ratio - 2.25).abs() < 1e-12, "ratio = {ratio}");
    }

    #[test]
    fn vgg16_shifts_the_frontier() {
        let d = direct().cost(&zoo::vgg16());
        let w = winograd().cost(&zoo::vgg16());
        // All thirteen 3×3 convs transform; latency and energy drop
        // substantially (the FC tail is unchanged).
        assert!(
            w.latency_s < 0.6 * d.latency_s,
            "{} vs {}",
            w.latency_s,
            d.latency_s
        );
        assert!(w.energy_j < 0.6 * d.energy_j);
        // Photonic multiplies drop on the conv trunk.
        let d_macs: u64 = d.per_layer.iter().map(|l| l.macs).sum();
        let w_macs: u64 = w.per_layer.iter().map(|l| l.macs).sum();
        assert!(w_macs < d_macs);
    }

    #[test]
    fn mobilenet_is_untouched() {
        // MobileNet has zero eligible layers (stride-2 stem, then
        // depthwise/pointwise blocks): the fallback path must reproduce
        // the direct chip bit for bit.
        let d = direct().cost(&zoo::mobilenet());
        let w = winograd().cost(&zoo::mobilenet());
        assert_eq!(w.latency_s.to_bits(), d.latency_s.to_bits());
        assert_eq!(w.cycles, d.cycles);
        let d_macs: u64 = d.per_layer.iter().map(|l| l.macs).sum();
        let w_macs: u64 = w.per_layer.iter().map(|l| l.macs).sum();
        assert_eq!(w_macs, d_macs);
    }

    #[test]
    fn transform_energy_is_charged_but_small() {
        let w = winograd().cost(&zoo::vgg16());
        let photonic: f64 = w.per_layer.iter().map(|l| w.power_w * l.latency_s).sum();
        let adds = w.energy_j - photonic;
        assert!(adds > 0.0, "eligible layers must charge transform adds");
        assert!(
            adds < 0.01 * w.energy_j,
            "adds are electronic noise: {adds}"
        );
    }

    #[test]
    fn transform_domain_weights_inflate_setup() {
        // VGG16's trunk is all eligible: setup words grow toward 16/9×.
        let d = direct().cost(&zoo::vgg16());
        let w = winograd().cost(&zoo::vgg16());
        assert!(w.setup_s > d.setup_s);
        assert!(w.setup_s < d.setup_s * 16.0 / 9.0 + 1e-12);
        // MobileNet programs its direct weights.
        let dm = direct().cost(&zoo::mobilenet());
        let wm = winograd().cost(&zoo::mobilenet());
        assert_eq!(wm.setup_s.to_bits(), dm.setup_s.to_bits());
    }

    #[test]
    fn degradation_follows_the_group_count() {
        let w = winograd();
        let healthy = w.cost(&zoo::vgg16());
        let degraded = w.cost_with_groups(&zoo::vgg16(), 5);
        assert!(degraded.latency_s > healthy.latency_s);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_groups_rejected() {
        let _ = winograd().cost_with_groups(&zoo::tiny(), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        for model in zoo::all_benchmarks() {
            for l in winograd().cost(&model).per_layer {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&l.utilization),
                    "{}: {}",
                    l.name,
                    l.utilization
                );
            }
        }
    }

    #[test]
    fn idle_floor_matches_the_direct_chip() {
        assert_eq!(winograd().idle_power_w(), direct().idle_power_w());
    }
}

//! Alternative photonic operating modes — the same Albireo silicon, run
//! under different dataflows.
//!
//! The base simulator models exactly one dataflow: Albireo's depth-first
//! direct convolution (paper Algorithm 2). That choice is excellent for
//! CNN trunks and indifferent-to-poor for everything else: a stride-1
//! 3×3 convolution pays for all nine kernel taps even though a
//! transform-domain schedule needs only four multiplies per output, and
//! a fully-connected layer lights a single photodetector column per
//! PLCU because there is no parameter sharing to multicast.
//!
//! This crate adds two operating modes behind the existing
//! [`Accelerator`] trait, so everything downstream — `albireo compare`,
//! the serving fleet, the capacity planner — can mix them freely with
//! the direct-dataflow chips:
//!
//! * [`WinogradAccelerator`] — F(2×2, 3×3) tile-transform convolution
//!   (Mehrabian et al., arXiv:1906.10487, adapted to the Albireo analog
//!   model). Stride-1 3×3 layers run in the transform domain with 16
//!   photonic multiplies per 2×2 output tile instead of 36 — a 2.25×
//!   MAC reduction; every other layer falls back to the direct
//!   schedule, so whole networks still evaluate. The input/output tile
//!   transforms are pure add networks and are charged to the electronic
//!   side.
//! * [`GemmMode`] — an incoherent-MRR GEMM scheduler (parameter anchors
//!   from Sri Vatsavai et al., arXiv:2402.03149): weight-stationary
//!   tiles over the MRR transfer-function analog path, with converter
//!   energy counted per update (the `core::dataflow_alt` accounting)
//!   rather than as an always-on power budget. It makes
//!   `FullyConnected` and `Pointwise` layers first-class — the layers
//!   MLP-Mixer and transformer blocks are made of — and rejects conv
//!   trunks it cannot schedule.
//!
//! Fleet specs accept both as chip kinds (`winograd_27:C`, `gemm:M`, …)
//! and `albireo plan` searches over them, so a heterogeneous
//! direct+Winograd+GEMM fleet is one spec line away.

pub mod gemm;
pub mod winograd;

pub use albireo_core::accel::Accelerator;
pub use gemm::GemmMode;
pub use winograd::WinogradAccelerator;

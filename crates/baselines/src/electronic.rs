//! Electronic accelerator baselines — the reported numbers of Table IV.
//!
//! The paper compares Albireo against three energy-efficient electronic
//! accelerators using *their published results* (not re-simulation):
//! Eyeriss (65 nm, row-stationary dataflow), ENVISION (28 nm,
//! dynamic-voltage-accuracy-frequency scaling), and UNPU (65 nm, bit-serial
//! lookup tables). This module embeds exactly those Table IV numbers.

use albireo_core::accel::{Accelerator, NetworkCost};
use albireo_nn::Model;
use std::collections::BTreeMap;

/// One accelerator's reported per-network results.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportedAccelerator {
    /// Accelerator name.
    pub name: &'static str,
    /// Process technology, nm.
    pub technology_nm: u32,
    /// Per-network results keyed by network name.
    pub results: BTreeMap<&'static str, ReportedResult>,
}

/// Reported latency/energy for one network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportedResult {
    /// Inference latency, s.
    pub latency_s: f64,
    /// Inference energy, J.
    pub energy_j: f64,
    /// Reported area efficiency, GOPS/mm² (Table IV).
    pub gops_per_mm2: f64,
    /// Reported energy-area efficiency, GOPS/W/mm² (Table IV).
    pub gops_per_w_per_mm2: f64,
}

impl ReportedResult {
    /// Energy-delay product in the paper's units, mJ·ms.
    pub fn edp_mj_ms(&self) -> f64 {
        (self.energy_j * 1e3) * (self.latency_s * 1e3)
    }
}

impl Accelerator for ReportedAccelerator {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> String {
        format!("{} ({} nm, reported)", self.name, self.technology_nm)
    }

    /// Reported numbers describe a monolithic design: one compute group,
    /// no partial-degradation model.
    fn compute_groups(&self) -> usize {
        1
    }

    /// Only the networks the source papers measured are supported.
    fn supports(&self, model: &Model) -> bool {
        self.results.contains_key(model.name())
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert_eq!(
            active_groups, 1,
            "{}: reported designs have exactly one compute group",
            self.name
        );
        let r = self
            .results
            .get(model.name())
            .unwrap_or_else(|| panic!("{} has no reported result for {}", self.name, model.name()));
        NetworkCost {
            accelerator: self.name.to_string(),
            network: model.name().to_string(),
            // Published results carry no cycle counts, wavelengths, or
            // per-layer resolution; power is implied by energy/latency.
            cycles: 0,
            latency_s: r.latency_s,
            energy_j: r.energy_j,
            power_w: r.energy_j / r.latency_s,
            wavelengths: 0,
            setup_s: 0.0,
            setup_energy_j: 0.0,
            per_layer: Vec::new(),
        }
    }
}

/// The three electronic baselines with the exact Table IV values.
pub fn reported_accelerators() -> Vec<ReportedAccelerator> {
    let eyeriss = ReportedAccelerator {
        name: "Eyeriss",
        technology_nm: 65,
        results: BTreeMap::from([
            (
                "AlexNet",
                ReportedResult {
                    latency_s: 25.9e-3,
                    energy_j: 7.19e-3,
                    gops_per_mm2: 1.75,
                    gops_per_w_per_mm2: 6.29,
                },
            ),
            (
                "VGG16",
                ReportedResult {
                    latency_s: 1252e-3,
                    energy_j: 295.4e-3,
                    gops_per_mm2: 0.77,
                    gops_per_w_per_mm2: 3.3,
                },
            ),
        ]),
    };
    let envision = ReportedAccelerator {
        name: "ENVISION",
        technology_nm: 28,
        results: BTreeMap::from([
            (
                "AlexNet",
                ReportedResult {
                    latency_s: 21.3e-3,
                    energy_j: 0.94e-3,
                    gops_per_mm2: 18.2,
                    gops_per_w_per_mm2: 411.9,
                },
            ),
            (
                "VGG16",
                ReportedResult {
                    latency_s: 598.8e-3,
                    energy_j: 15.6e-3,
                    gops_per_mm2: 13.8,
                    gops_per_w_per_mm2: 531.3,
                },
            ),
        ]),
    };
    let unpu = ReportedAccelerator {
        name: "UNPU",
        technology_nm: 65,
        results: BTreeMap::from([
            (
                "AlexNet",
                ReportedResult {
                    latency_s: 2.89e-3,
                    energy_j: 0.84e-3,
                    gops_per_mm2: 15.7,
                    gops_per_w_per_mm2: 53.9,
                },
            ),
            (
                "VGG16",
                ReportedResult {
                    latency_s: 54.6e-3,
                    energy_j: 16.2e-3,
                    gops_per_mm2: 17.7,
                    gops_per_w_per_mm2: 59.1,
                },
            ),
        ]),
    };
    vec![eyeriss, envision, unpu]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_accelerators_with_both_networks() {
        let accs = reported_accelerators();
        assert_eq!(accs.len(), 3);
        for acc in &accs {
            assert!(acc.results.contains_key("AlexNet"), "{}", acc.name);
            assert!(acc.results.contains_key("VGG16"), "{}", acc.name);
        }
    }

    #[test]
    fn table_iv_edp_values_reproduce() {
        let accs = reported_accelerators();
        let eyeriss = &accs[0].results["AlexNet"];
        // Table IV: Eyeriss AlexNet EDP = 186.1 mJ·ms.
        assert!((eyeriss.edp_mj_ms() - 186.1).abs() / 186.1 < 0.01);
        let unpu = &accs[2].results["AlexNet"];
        // Table IV: UNPU AlexNet EDP = 2.42 mJ·ms.
        assert!((unpu.edp_mj_ms() - 2.42).abs() / 2.42 < 0.01);
        let envision = &accs[1].results["VGG16"];
        // Table IV: ENVISION VGG16 EDP = 9341 mJ·ms.
        assert!((envision.edp_mj_ms() - 9341.0).abs() / 9341.0 < 0.01);
    }

    #[test]
    fn eyeriss_is_the_edp_outlier() {
        // §IV-B: "Eyeriss is an outlier for EDP".
        let accs = reported_accelerators();
        let edps: Vec<f64> = accs
            .iter()
            .map(|a| a.results["VGG16"].edp_mj_ms())
            .collect();
        assert!(edps[0] > 10.0 * edps[1]);
        assert!(edps[0] > 10.0 * edps[2]);
    }

    #[test]
    fn unpu_is_fastest_electronic() {
        let accs = reported_accelerators();
        let lat: Vec<f64> = accs
            .iter()
            .map(|a| a.results["AlexNet"].latency_s)
            .collect();
        assert!(lat[2] < lat[0] && lat[2] < lat[1]);
    }

    #[test]
    fn trait_cost_carries_the_reported_numbers() {
        let accs = reported_accelerators();
        let unpu = &accs[2];
        let c = unpu.cost(&albireo_nn::zoo::alexnet());
        assert_eq!(c.latency_s, unpu.results["AlexNet"].latency_s);
        assert_eq!(c.energy_j, unpu.results["AlexNet"].energy_j);
        assert!((c.power_w - c.energy_j / c.latency_s).abs() < 1e-15);
        assert_eq!(c.setup_s, 0.0);
        // Zero reported wavelengths must not break the WDM metric.
        assert!(c.energy_per_wavelength().is_finite());
    }

    #[test]
    #[should_panic(expected = "no reported result")]
    fn unsupported_network_panics() {
        let accs = reported_accelerators();
        let _ = accs[0].cost(&albireo_nn::zoo::resnet18());
    }

    #[test]
    fn technologies() {
        let accs = reported_accelerators();
        assert_eq!(accs[0].technology_nm, 65);
        assert_eq!(accs[1].technology_nm, 28);
        assert_eq!(accs[2].technology_nm, 65);
    }
}

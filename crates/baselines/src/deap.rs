//! DEAP-CNN (paper ref. \[5\]) — MRR weight-bank accelerator model.
//!
//! DEAP-CNN computes dot products with microring weight banks and
//! accumulates partial sums across filter channels via voltage addition.
//! The Albireo paper's comparison methodology, reproduced here:
//!
//! * one engine supports 3×3 kernels up to 113 channels (9 × 113 = 1017
//!   weight MRRs, hence the quoted 2034 DACs — one per weight MRR plus one
//!   per input modulator — and 113 TIAs),
//! * kernels deeper than 113 channels are *optimistically* assumed to be
//!   supported via multiple passes with digital partial sums,
//! * the same conservative device powers apply, and the design is held to
//!   the 60 W budget (which fits exactly one engine: the 2034 DACs alone
//!   consume ~53 W),
//! * the clock is 5 GHz (paper §IV-A).
//!
//! The engine produces one output activation per cycle per pass.

use albireo_core::accel::{Accelerator, NetworkCost};
use albireo_core::config::TechnologyEstimate;
use albireo_nn::layer::LayerKind;
use albireo_nn::Model;

/// Analytical DEAP-CNN model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeapCnn {
    /// Parallel engines (the 60 W budget fits one).
    pub engines: usize,
    /// Modulation clock, Hz (paper: 5 GHz).
    pub clock_hz: f64,
    /// Maximum kernel channels per pass.
    pub max_channels: usize,
    /// Kernel spatial taps per channel (3×3).
    pub taps: usize,
    /// Total design power, W.
    pub power_w: f64,
}

impl DeapCnn {
    /// Power of one engine under an estimate: 2034 DACs, 1017 weight MRRs,
    /// 1017 input modulator MRRs, 113 TIAs, 113 ADCs-equivalent readout
    /// (one per output channel bank is not needed — one activation per
    /// cycle ⇒ 1 ADC), and a laser per input wavelength group (9).
    pub fn engine_power_w(estimate: TechnologyEstimate) -> f64 {
        let p = estimate.device_powers();
        2034.0 * p.dac_w + 2.0 * 1017.0 * p.mrr_w + 113.0 * p.tia_w + p.adc_w + 9.0 * p.laser_w
    }

    /// Builds a DEAP-CNN design scaled to a power budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget does not fit a single engine.
    pub fn scaled_to_power(budget_w: f64, estimate: TechnologyEstimate) -> DeapCnn {
        let engine = DeapCnn::engine_power_w(estimate);
        let engines = (budget_w / engine).floor() as usize;
        assert!(
            engines >= 1,
            "budget {budget_w} W below one engine ({engine} W)"
        );
        DeapCnn {
            engines,
            clock_hz: 5e9,
            max_channels: 113,
            taps: 9,
            power_w: engines as f64 * engine,
        }
    }

    /// The paper's 60 W conservative-device configuration.
    pub fn paper_60w() -> DeapCnn {
        DeapCnn::scaled_to_power(60.0, TechnologyEstimate::Conservative)
    }

    /// Dot-product capacity of one engine per cycle.
    pub fn dot_capacity(&self) -> usize {
        self.max_channels * self.taps
    }

    /// Cycles to run one network on the design.
    pub fn total_cycles(&self, model: &Model) -> u64 {
        let cap = self.dot_capacity() as u64;
        let mut cycles: u64 = 0;
        for layer in model.layers() {
            let outputs = (layer.output.y * layer.output.x) as u64;
            cycles += match layer.kind {
                LayerKind::Conv {
                    kernels,
                    kernel_y,
                    kernel_x,
                    groups,
                    ..
                } => {
                    let k_elems = (kernel_y * kernel_x * (layer.input.z / groups)) as u64;
                    outputs * kernels as u64 * k_elems.div_ceil(cap)
                }
                LayerKind::Depthwise { kernel, .. } => {
                    // The engine's 113 per-channel TIAs read out 113
                    // depthwise channels in parallel (no cross-channel
                    // accumulation is needed).
                    let _ = kernel;
                    outputs * (layer.input.z as u64).div_ceil(self.max_channels as u64)
                }
                LayerKind::Pointwise { kernels } => {
                    let k_elems = layer.input.z as u64;
                    outputs * kernels as u64 * k_elems.div_ceil(cap)
                }
                LayerKind::FullyConnected { outputs: fc_out } => {
                    let k_elems = layer.input.elements() as u64;
                    fc_out as u64 * k_elems.div_ceil(cap)
                }
                LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => 0,
            };
        }
        cycles.div_ceil(self.engines as u64)
    }
}

impl Accelerator for DeapCnn {
    fn name(&self) -> &str {
        "DEAP-CNN"
    }

    fn description(&self) -> String {
        format!("DEAP-CNN ({:.0} W)", self.power_w)
    }

    /// Each dot-product engine is an interchangeable compute group.
    fn compute_groups(&self) -> usize {
        self.engines
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert!(
            active_groups > 0 && active_groups <= self.engines,
            "DEAP-CNN: active groups {active_groups} outside 1..={}",
            self.engines
        );
        let design = if active_groups == self.engines {
            *self
        } else {
            DeapCnn {
                engines: active_groups,
                power_w: self.power_w * active_groups as f64 / self.engines as f64,
                ..*self
            }
        };
        let cycles = design.total_cycles(model);
        let latency_s = cycles as f64 / design.clock_hz;
        // DEAP-CNN is weight-stationary: the MRR weight banks are
        // reprogrammed through the engines' DACs before a network runs, so
        // a micro-batch of same-network inferences shares one programming
        // pass — the same streaming model as Albireo's weight DACs.
        let dacs = 2034.0 * design.engines as f64;
        let setup_s = model.total_params() as f64 / (dacs * design.clock_hz);
        NetworkCost {
            accelerator: "DEAP-CNN".to_string(),
            network: model.name().to_string(),
            cycles,
            latency_s,
            energy_j: design.power_w * latency_s,
            power_w: design.power_w,
            // The engine's weight bank spans 1017 microrings but signals
            // share 9 input wavelength groups; the paper's WDM-efficiency
            // metric counts the wavelengths used for computation.
            wavelengths: design.taps * design.engines,
            setup_s,
            setup_energy_j: design.power_w * setup_s,
            per_layer: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn engine_power_is_dominated_by_dacs() {
        let p = DeapCnn::engine_power_w(TechnologyEstimate::Conservative);
        // 2034 × 26 mW ≈ 52.9 W of DACs alone; total just under 60 W.
        assert!((56.0..60.0).contains(&p), "p = {p}");
        let dacs = 2034.0 * 26e-3;
        assert!(dacs / p > 0.85);
    }

    #[test]
    fn sixty_watts_fits_exactly_one_engine() {
        let d = DeapCnn::paper_60w();
        assert_eq!(d.engines, 1);
        assert_eq!(d.dot_capacity(), 1017);
    }

    #[test]
    fn vgg_latency_is_single_digit_ms() {
        let d = DeapCnn::paper_60w();
        let e = d.cost(&zoo::vgg16());
        let ms = e.latency_s * 1e3;
        // Slower than Albireo-9 (2.9 ms) but far faster than PIXEL.
        assert!((4.0..12.0).contains(&ms), "latency = {ms} ms");
        assert_eq!(e.cycles, d.total_cycles(&zoo::vgg16()));
    }

    #[test]
    fn deep_kernels_need_multiple_passes() {
        let d = DeapCnn::paper_60w();
        // A 3×3×256 kernel has 2304 elements > 1017 ⇒ 3 passes.
        let mut b = albireo_nn::Model::builder("deep", albireo_nn::VolumeShape::new(256, 16, 16));
        b.push("conv", LayerKind::conv(1, 3, 1, 1)).unwrap();
        let deep = b.build().unwrap();
        assert_eq!(d.total_cycles(&deep), 16 * 16 * 3);
    }

    #[test]
    fn shallow_kernels_take_one_pass() {
        let d = DeapCnn::paper_60w();
        let mut b = albireo_nn::Model::builder("shallow", albireo_nn::VolumeShape::new(64, 16, 16));
        b.push("conv", LayerKind::conv(2, 3, 1, 1)).unwrap();
        let shallow = b.build().unwrap();
        assert_eq!(d.total_cycles(&shallow), 2 * 16 * 16);
    }

    #[test]
    fn setup_amortizes_like_a_weight_stationary_design() {
        let d = DeapCnn::paper_60w();
        let alex = d.cost(&zoo::alexnet());
        assert!(alex.setup_s > 0.0);
        assert!(
            alex.setup_s < alex.latency_s,
            "setup {} should not dominate latency {}",
            alex.setup_s,
            alex.latency_s
        );
        assert!((alex.setup_energy_j - d.power_w * alex.setup_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below one engine")]
    fn tiny_budget_panics() {
        let _ = DeapCnn::scaled_to_power(10.0, TechnologyEstimate::Conservative);
    }
}

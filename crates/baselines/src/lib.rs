//! Baseline accelerators for the Albireo comparison (paper §IV/V).
//!
//! Three classes of baseline:
//!
//! * [`pixel`] — the PIXEL photonic accelerator (paper ref. \[52\]): 8-bit
//!   "OO" optical MAC units at 10 GHz, modelled analytically from the
//!   Albireo paper's description and scaled to the shared 60 W budget with
//!   the same conservative device powers.
//! * [`deap`] — DEAP-CNN (paper ref. \[5\]): MRR weight-bank dot-product
//!   engines at 5 GHz with voltage addition across filter channels
//!   (2034 DACs / 113 TIAs per engine), with the paper's optimistic
//!   assumption that kernels deeper than 113 channels are supported via
//!   multiple passes.
//! * [`electronic`] — Eyeriss, ENVISION, and UNPU, using the reported
//!   numbers the paper itself compares against (Table IV).
//!
//! Every baseline implements the workspace-wide
//! [`Accelerator`] trait and returns the
//! canonical [`NetworkCost`], so the
//! Fig. 8 harness, the CLI `compare` command, and the `albireo-runtime`
//! serving simulator consume them interchangeably with Albireo itself.

pub mod deap;
pub mod electronic;
pub mod pixel;

pub use albireo_core::accel::{Accelerator, LayerCost, NetworkCost};
pub use deap::DeapCnn;
pub use electronic::{reported_accelerators, ReportedAccelerator, ReportedResult};
pub use pixel::Pixel;

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn all_baselines_are_trait_objects() {
        let accels: Vec<Box<dyn Accelerator>> =
            vec![Box::new(Pixel::paper_60w()), Box::new(DeapCnn::paper_60w())];
        for model in zoo::all_benchmarks() {
            for a in &accels {
                assert!(a.supports(&model));
                let c = a.cost(&model);
                assert_eq!(c.network, model.name());
                assert!(c.latency_s > 0.0 && c.energy_j > 0.0);
                assert!((c.edp_mj_ms() - c.energy_j * c.latency_s * 1e6).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reported_accelerators_support_only_their_networks() {
        for acc in reported_accelerators() {
            let a: &dyn Accelerator = &acc;
            assert!(a.supports(&zoo::alexnet()));
            assert!(a.supports(&zoo::vgg16()));
            assert!(!a.supports(&zoo::resnet18()));
            assert!(!a.supports(&zoo::mobilenet()));
        }
    }
}

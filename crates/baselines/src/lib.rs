//! Baseline accelerators for the Albireo comparison (paper §IV/V).
//!
//! Three classes of baseline:
//!
//! * [`pixel`] — the PIXEL photonic accelerator (paper ref. \[52\]): 8-bit
//!   "OO" optical MAC units at 10 GHz, modelled analytically from the
//!   Albireo paper's description and scaled to the shared 60 W budget with
//!   the same conservative device powers.
//! * [`deap`] — DEAP-CNN (paper ref. \[5\]): MRR weight-bank dot-product
//!   engines at 5 GHz with voltage addition across filter channels
//!   (2034 DACs / 113 TIAs per engine), with the paper's optimistic
//!   assumption that kernels deeper than 113 channels are supported via
//!   multiple passes.
//! * [`electronic`] — Eyeriss, ENVISION, and UNPU, using the reported
//!   numbers the paper itself compares against (Table IV).
//!
//! All photonic baselines share [`BaselineEvaluation`] so the Fig. 8
//! harness can tabulate them uniformly.

pub mod deap;
pub mod electronic;
pub mod pixel;

pub use deap::DeapCnn;
pub use electronic::{reported_accelerators, ReportedAccelerator, ReportedResult};
pub use pixel::Pixel;

/// Latency/energy result of running one network on a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEvaluation {
    /// Accelerator name.
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Inference latency, s.
    pub latency_s: f64,
    /// Inference energy, J.
    pub energy_j: f64,
    /// Wavelengths the design uses for computation (the paper's WDM
    /// efficiency metric divides energy by this).
    pub wavelengths: usize,
}

impl BaselineEvaluation {
    /// Energy-delay product in the paper's units, mJ·ms.
    pub fn edp_mj_ms(&self) -> f64 {
        (self.energy_j * 1e3) * (self.latency_s * 1e3)
    }

    /// The paper's WDM efficiency metric: energy per wavelength used, J.
    pub fn energy_per_wavelength(&self) -> f64 {
        self.energy_j / self.wavelengths.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_units() {
        let e = BaselineEvaluation {
            accelerator: "x".into(),
            network: "y".into(),
            latency_s: 2e-3,
            energy_j: 3e-3,
            wavelengths: 10,
        };
        assert!((e.edp_mj_ms() - 6.0).abs() < 1e-12);
        assert!((e.energy_per_wavelength() - 3e-4).abs() < 1e-15);
    }

    #[test]
    fn zero_wavelengths_does_not_divide_by_zero() {
        let e = BaselineEvaluation {
            accelerator: "x".into(),
            network: "y".into(),
            latency_s: 1.0,
            energy_j: 1.0,
            wavelengths: 0,
        };
        assert!(e.energy_per_wavelength().is_finite());
    }
}

//! PIXEL (paper ref. \[52\]) — mixed-signal photonic accelerator model.
//!
//! PIXEL's 8-bit "OO" optical MAC unit performs bitwise optical logic with
//! MRRs and analog accumulation with cascaded MZMs. As the Albireo paper
//! notes, PIXEL accumulates a single wavelength per MZM and does not
//! exploit WDM parallelism, so an 8×8-bit MAC is produced bit-serially.
//! The model here follows the Albireo paper's comparison methodology:
//!
//! * the same conservative device powers (Table I) are applied to PIXEL's
//!   per-unit device inventory,
//! * the number of OO MAC units is scaled to the 60 W budget,
//! * PIXEL runs at 10 GHz (paper §IV-A).
//!
//! The per-MAC cycle count (32) reflects the bit-serial partial-product
//! generation and cascaded accumulation of an 8×8-bit multiply on the OO
//! datapath; with it, the reproduced Albireo-vs-PIXEL ratios land on the
//! paper's reported 79.5× (Albireo-9) / 225× (Albireo-27) latency factors.

use albireo_core::accel::{Accelerator, NetworkCost};
use albireo_core::config::TechnologyEstimate;
use albireo_nn::Model;

/// Analytical PIXEL model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pixel {
    /// Number of 8-bit OO optical MAC units.
    pub units: usize,
    /// Modulation clock, Hz (paper: 10 GHz).
    pub clock_hz: f64,
    /// Cycles per 8-bit MAC per unit (bit-serial).
    pub cycles_per_mac: u64,
    /// Total design power, W.
    pub power_w: f64,
}

impl Pixel {
    /// Device inventory of one OO MAC unit: 2 × 8-MRR banks for the bitwise
    /// products, 9 cascaded accumulation MZMs, 2 DACs, 1 ADC, 1 TIA, and
    /// one laser.
    pub fn unit_power_w(estimate: TechnologyEstimate) -> f64 {
        let p = estimate.device_powers();
        16.0 * p.mrr_w + 9.0 * p.mzm_w + 2.0 * p.dac_w + p.adc_w + p.tia_w + p.laser_w
    }

    /// Builds a PIXEL design scaled to a power budget (paper: 60 W with
    /// conservative devices).
    ///
    /// # Panics
    ///
    /// Panics if the budget does not fit a single unit.
    pub fn scaled_to_power(budget_w: f64, estimate: TechnologyEstimate) -> Pixel {
        let unit = Pixel::unit_power_w(estimate);
        let units = (budget_w / unit).floor() as usize;
        assert!(units >= 1, "budget {budget_w} W below one unit ({unit} W)");
        Pixel {
            units,
            clock_hz: 10e9,
            cycles_per_mac: 32,
            power_w: units as f64 * unit,
        }
    }

    /// The paper's 60 W conservative-device configuration.
    pub fn paper_60w() -> Pixel {
        Pixel::scaled_to_power(60.0, TechnologyEstimate::Conservative)
    }

    /// Aggregate MAC throughput, MAC/s.
    pub fn macs_per_second(&self) -> f64 {
        self.units as f64 * self.clock_hz / self.cycles_per_mac as f64
    }
}

impl Accelerator for Pixel {
    fn name(&self) -> &str {
        "PIXEL"
    }

    fn description(&self) -> String {
        format!("PIXEL ({:.0} W)", self.power_w)
    }

    /// Each OO MAC unit is an interchangeable compute group.
    fn compute_groups(&self) -> usize {
        self.units
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert!(
            active_groups > 0 && active_groups <= self.units,
            "PIXEL: active groups {active_groups} outside 1..={}",
            self.units
        );
        // A degraded design is the same unit at the surviving count; power
        // scales with the per-unit inventory.
        let design = if active_groups == self.units {
            *self
        } else {
            Pixel {
                units: active_groups,
                power_w: self.power_w * active_groups as f64 / self.units as f64,
                ..*self
            }
        };
        let latency_s = model.total_macs() as f64 / design.macs_per_second();
        NetworkCost {
            accelerator: "PIXEL".to_string(),
            network: model.name().to_string(),
            cycles: (model.total_macs() * design.cycles_per_mac).div_ceil(design.units as u64),
            latency_s,
            energy_j: design.power_w * latency_s,
            power_w: design.power_w,
            // PIXEL does not exploit WDM: each MZM accumulates a single
            // wavelength, and the design reuses the same 8 bit-lane
            // wavelengths across units, so only 8 distinct wavelengths are
            // used for computation.
            wavelengths: 8,
            // Weights stream into the OO datapath cycle-by-cycle with the
            // activations — nothing is programmed and held, so a batch has
            // no one-time setup pass.
            setup_s: 0.0,
            setup_energy_j: 0.0,
            per_layer: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn unit_power_is_a_few_hundred_mw() {
        let p = Pixel::unit_power_w(TechnologyEstimate::Conservative);
        // 16·3.1 + 9·11.3 + 2·26 + 29 + 3 + 37.5 = 272.8 mW.
        assert!((p - 0.2728).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn sixty_watt_design_has_about_220_units() {
        let pixel = Pixel::paper_60w();
        assert!((200..240).contains(&pixel.units), "units = {}", pixel.units);
        assert!(pixel.power_w <= 60.0);
        assert!(pixel.power_w > 55.0, "should use most of the budget");
    }

    #[test]
    fn throughput_is_tens_of_gmacs() {
        let pixel = Pixel::paper_60w();
        let gmacs = pixel.macs_per_second() / 1e9;
        assert!((50.0..90.0).contains(&gmacs), "gmacs = {gmacs}");
    }

    #[test]
    fn vgg_latency_is_hundreds_of_ms() {
        let pixel = Pixel::paper_60w();
        let e = pixel.cost(&zoo::vgg16());
        let ms = e.latency_s * 1e3;
        assert!((150.0..350.0).contains(&ms), "latency = {ms} ms");
        assert_eq!(e.network, "VGG16");
        assert_eq!(e.accelerator, "PIXEL");
        assert!((e.energy_j - pixel.power_w * e.latency_s).abs() < 1e-12);
    }

    #[test]
    fn latency_scales_inverse_with_units() {
        let a = Pixel::scaled_to_power(30.0, TechnologyEstimate::Conservative);
        let b = Pixel::scaled_to_power(60.0, TechnologyEstimate::Conservative);
        let la = a.cost(&zoo::alexnet()).latency_s;
        let lb = b.cost(&zoo::alexnet()).latency_s;
        assert!(la > 1.9 * lb && la < 2.1 * lb);
    }

    #[test]
    fn degraded_design_matches_a_smaller_build() {
        let pixel = Pixel::paper_60w();
        let half = pixel.cost_with_groups(&zoo::alexnet(), pixel.units / 2);
        let full = pixel.cost(&zoo::alexnet());
        assert!(half.latency_s > 1.9 * full.latency_s);
        assert!(half.power_w < 0.6 * full.power_w);
    }

    #[test]
    #[should_panic(expected = "below one unit")]
    fn tiny_budget_panics() {
        let _ = Pixel::scaled_to_power(0.1, TechnologyEstimate::Conservative);
    }
}

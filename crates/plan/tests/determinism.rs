//! Integration tests for the planner's determinism contract and the
//! headline capacity-planning result.
//!
//! * The plan (JSON, CSV, digest) is byte-identical from 1 to 8 threads.
//! * Pruned and exhaustive searches emit byte-identical plans.
//! * On a bursty mixed AlexNet/MobileNet workload under `p99<5ms`, an
//!   elastic fleet beats every static fleet on energy while meeting the
//!   SLO — the planner's reason to exist.

use albireo_obs::Obs;
use albireo_parallel::Parallelism;
use albireo_plan::{plan, PlanSpec, GOLDEN_PLAN_SPEC};

#[test]
fn plan_json_is_byte_identical_from_one_to_eight_threads() {
    let spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).unwrap();
    let obs = Obs::disabled();
    let baseline = plan(&spec, Parallelism::with_threads(1), &obs, false).unwrap();
    for threads in 2..=8 {
        let run = plan(&spec, Parallelism::with_threads(threads), &obs, false).unwrap();
        assert_eq!(
            baseline.to_json(),
            run.to_json(),
            "JSON diverged at {threads} threads"
        );
        assert_eq!(
            baseline.to_csv(),
            run.to_csv(),
            "CSV diverged at {threads} threads"
        );
        assert_eq!(
            baseline.digest_hex(),
            run.digest_hex(),
            "digest diverged at {threads} threads"
        );
    }
}

#[test]
fn pruned_and_exhaustive_plans_are_byte_identical() {
    let spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).unwrap();
    let obs = Obs::disabled();
    let pruned = plan(&spec, Parallelism::with_threads(4), &obs, false).unwrap();
    let exhaustive = plan(&spec, Parallelism::with_threads(4), &obs, true).unwrap();
    assert_eq!(pruned.to_json(), exhaustive.to_json());
    assert_eq!(pruned.to_csv(), exhaustive.to_csv());
    assert_eq!(pruned.digest_hex(), exhaustive.digest_hex());
}

#[test]
fn elastic_beats_every_static_fleet_on_the_bursty_mixed_workload() {
    let spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).unwrap();
    let report = plan(&spec, Parallelism::with_threads(4), &Obs::disabled(), false).unwrap();
    let winner = report
        .winner()
        .expect("the golden scenario has feasible fleets");

    // The winner is an elastic fleet that actually scaled during the
    // run, met the SLO, and shed nothing.
    assert!(
        winner.autoscale_label.starts_with("elastic"),
        "expected an elastic winner, got {} / {}",
        winner.fleet_label,
        winner.autoscale_label
    );
    assert!(winner.p99_ms <= 5.0, "winner p99 {} ms", winner.p99_ms);
    assert_eq!(winner.shed_rate, 0.0);
    assert!(winner.spin_ups > 0, "an elastic winner must have spun up");

    // And it beats the best *static* feasible fleet on energy — idle
    // power parked between bursts is the planner-visible saving.
    let best_static = report
        .frontier
        .iter()
        .find(|e| e.autoscale_label == "static")
        .expect("a static fleet is feasible in the golden scenario");
    assert!(
        winner.energy_per_request_j < best_static.energy_per_request_j,
        "elastic {} J/req should beat static {} J/req",
        winner.energy_per_request_j,
        best_static.energy_per_request_j
    );
}

#[test]
fn obs_counters_record_the_search_effort() {
    let spec = PlanSpec::parse(GOLDEN_PLAN_SPEC).unwrap();
    let obs = Obs::enabled();
    let report = plan(&spec, Parallelism::with_threads(2), &obs, false).unwrap();
    let snapshot = obs.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter("plan.candidates"), report.candidates_total as u64);
    assert_eq!(counter("plan.screened"), report.candidates_total as u64);
    assert_eq!(counter("plan.pruned"), report.pruned as u64);
    assert_eq!(counter("plan.scored"), report.scored as u64);
    assert_eq!(counter("plan.feasible"), report.frontier.len() as u64);
    assert_eq!(report.pruned + report.scored, report.candidates_total);
}

//! Property tests pinning the planner grammar's round-trip contract:
//! for every [`PlanSpec`], [`SloSpec`], and
//! [`AutoscalePolicy`](albireo_runtime::AutoscalePolicy) the canonical
//! `Display` form parses back to the *identical* value — including
//! every `f64` bit, because `Display` uses `{}` (Rust's shortest
//! round-trip float representation) throughout. This is what makes a
//! plan reproducible from its one-line spec echo alone.

use albireo_plan::{PlanSpec, SloSpec};
use albireo_runtime::{
    ArrivalProcess, AutoscalePolicy, BatchPolicy, ClassSpec, FaultSpec, Workload,
};
use proptest::prelude::*;

fn slo_strategy() -> impl Strategy<Value = SloSpec> {
    (
        0.05f64..100.0,
        prop_oneof![1 => Just(None), 2 => (0.5f64..1.0).prop_map(Some)],
        prop_oneof![1 => Just(0.0f64), 2 => 1e-4f64..0.5],
    )
        .prop_map(|(p99_ms, min_attainment, max_shed_rate)| SloSpec {
            p99_ms,
            min_attainment,
            max_shed_rate,
        })
}

fn autoscale_strategy() -> impl Strategy<Value = AutoscalePolicy> {
    prop_oneof![
        1 => Just(AutoscalePolicy::None),
        1 => Just(AutoscalePolicy::Static),
        3 => (1usize..64, 0.0f64..0.05, 1usize..8).prop_map(|(up_depth, warmup_s, min_chips)| {
            AutoscalePolicy::Elastic { up_depth, warmup_s, min_chips }
        }),
    ]
}

fn arrival_strategy() -> impl Strategy<Value = ArrivalProcess> {
    let rate = 1.0f64..20_000.0;
    prop_oneof![
        2 => rate.clone().prop_map(|rate_rps| ArrivalProcess::Poisson { rate_rps }),
        1 => (rate.clone(), 1.001f64..20.0, 1e-3f64..0.1, 1e-3f64..0.5).prop_map(
            |(rate_rps, burst, on_s, off_s)| ArrivalProcess::Bursty { rate_rps, burst, on_s, off_s }
        ),
        1 => (rate.clone(), 1e-3f64..1.0, 0.01f64..100.0).prop_map(
            |(rate_rps, amplitude, period_s)| ArrivalProcess::Diurnal { rate_rps, amplitude, period_s }
        ),
        1 => (rate, 1.001f64..20.0, 0.0f64..1.0, 1e-3f64..1.0).prop_map(
            |(rate_rps, spike, at_s, decay_s)| ArrivalProcess::FlashCrowd { rate_rps, spike, at_s, decay_s }
        ),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        arrival_strategy(),
        prop::collection::vec(0.001f64..100.0, 1..4),
        prop::collection::vec(
            (
                0.001f64..100.0,
                prop_oneof![1 => Just(None), 1 => (0.1f64..50.0).prop_map(Some)],
            ),
            0..3,
        ),
    )
        .prop_map(|(process, mix_weights, class_params)| {
            let names = ["interactive", "batch", "bulk"];
            Workload {
                process,
                mix: mix_weights.into_iter().enumerate().collect(),
                classes: class_params
                    .into_iter()
                    .enumerate()
                    .map(|(i, (weight, slo_ms))| match slo_ms {
                        Some(slo) => ClassSpec::with_slo(names[i], weight, slo),
                        None => ClassSpec::best_effort(names[i], weight),
                    })
                    .collect(),
            }
        })
}

/// Fault scenarios built from generated clause strings (the grammar is
/// the canonical form, so parse(join(clauses)) both constructs the spec
/// and exercises the parser). Times render via `{}` — bit-exact through
/// a Display/parse cycle like every other float in the spec line.
fn faults_strategy() -> impl Strategy<Value = FaultSpec> {
    let clause = prop_oneof![
        (0usize..8, 0.0f64..5.0).prop_map(|(c, t)| format!("fail:{c}@{t}")),
        (0usize..8, 0.0f64..5.0).prop_map(|(c, t)| format!("recover:{c}@{t}")),
        (0usize..8, 0.0f64..5.0, 1usize..4).prop_map(|(c, t, n)| format!("degrade:{c}@{t}:{n}")),
        (0usize..4, 0usize..4, 0.0f64..5.0)
            .prop_map(|(a, b, t)| { format!("rack:{}-{}@{t}", a.min(b), a.max(b)) }),
        (0usize..4, 0usize..4, 0.0f64..5.0, 1e-3f64..5.0, 1usize..4).prop_map(
            |(a, b, start, len, n)| {
                format!(
                    "thermal:{}-{}@{start}-{}:{n}",
                    a.min(b),
                    a.max(b),
                    start + len
                )
            }
        ),
    ];
    (
        prop::collection::vec(clause, 0..4),
        prop_oneof![
            2 => Just(None),
            1 => (1usize..4, 1e-3f64..1.0, 0u64..1_000_000).prop_map(Some),
        ],
    )
        .prop_map(|(mut clauses, crews)| {
            if let Some((k, mean_s, seed)) = crews {
                clauses.push(format!("crews:{k}:{mean_s}:{seed}"));
            }
            if clauses.is_empty() {
                FaultSpec::none()
            } else {
                FaultSpec::parse(&clauses.join(",")).expect("generated clauses are valid")
            }
        })
}

fn plan_strategy() -> impl Strategy<Value = PlanSpec> {
    let search_axes = (
        // (kinds bitmask over 3 choices, max_chips)
        (1usize..8, 1usize..5),
        // policies: immediate always; optionally size:N and deadline
        (
            prop::bool::ANY,
            2usize..16,
            prop::bool::ANY,
            (1e-6f64..1e-2, 1usize..16),
        ),
        // autoscale: static always; optionally none and elastic
        (
            prop::bool::ANY,
            prop::bool::ANY,
            (1usize..32, 0.0f64..0.01, 1usize..4),
        ),
        // queue capacity
        prop_oneof![3 => (1usize..4096).prop_map(Some), 1 => Just(None)],
    );
    let run_shape = (
        10usize..2000,
        0.0f64..1.0, // screen fraction of requests
        0u64..u64::MAX,
        1usize..4,
    );
    (
        workload_strategy(),
        slo_strategy(),
        search_axes,
        run_shape,
        faults_strategy(),
    )
        .prop_map(|(workload, slo, axes, shape, faults)| {
            let ((kind_mask, max_chips), policy_axes, scale_axes, queue) = axes;
            let (requests, screen_frac, seed, replicas) = shape;
            let all_kinds = ["albireo_9:C", "albireo_27:C", "albireo_9:A"];
            let chip_kinds: Vec<String> = all_kinds
                .iter()
                .enumerate()
                .filter(|(i, _)| kind_mask & (1 << i) != 0)
                .map(|(_, k)| k.to_string())
                .collect();
            let (with_size, size, with_deadline, (max_wait_s, max_size)) = policy_axes;
            let mut policies = vec![BatchPolicy::Immediate];
            if with_size {
                policies.push(BatchPolicy::SizeN { size });
            }
            if with_deadline {
                policies.push(BatchPolicy::Deadline {
                    max_wait_s,
                    max_size,
                });
            }
            let (with_none, with_elastic, (up_depth, warmup_s, min_chips)) = scale_axes;
            let mut autoscale = vec![AutoscalePolicy::Static];
            if with_none {
                autoscale.push(AutoscalePolicy::None);
            }
            if with_elastic {
                autoscale.push(AutoscalePolicy::Elastic {
                    up_depth,
                    warmup_s,
                    min_chips,
                });
            }
            let screen_requests = 1 + (screen_frac * (requests - 1) as f64) as usize;
            PlanSpec {
                workload,
                requests,
                screen_requests: screen_requests.min(requests),
                seed,
                replicas,
                slo,
                chip_kinds,
                max_chips,
                policies,
                queue_capacity: queue.unwrap_or(usize::MAX),
                autoscale,
                faults,
            }
        })
}

proptest! {
    /// `SloSpec`: parse(display(x)) == x, bit-exact.
    #[test]
    fn slo_round_trips(slo in slo_strategy()) {
        let line = slo.to_string();
        let back = SloSpec::parse(&line).unwrap();
        prop_assert_eq!(back, slo);
    }

    /// `AutoscalePolicy`: parse(display(x)) == x, bit-exact (warm-up
    /// seconds are stored and rendered in the same unit, so no
    /// conversion can lose bits).
    #[test]
    fn autoscale_round_trips(policy in autoscale_strategy()) {
        let line = policy.to_string();
        let back = AutoscalePolicy::parse(&line).unwrap();
        prop_assert_eq!(back, policy);
    }

    /// `PlanSpec`: the full grammar — workload, SLO, and every search
    /// axis — survives a Display/parse cycle exactly.
    #[test]
    fn plan_spec_round_trips(spec in plan_strategy()) {
        prop_assert!(spec.validate().is_ok());
        let line = spec.to_string();
        let back = PlanSpec::parse(&line).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// The canonical form is a fixed point: display(parse(display(x)))
    /// == display(x).
    #[test]
    fn display_is_canonical(spec in plan_strategy()) {
        let line = spec.to_string();
        let reparsed = PlanSpec::parse(&line).unwrap();
        prop_assert_eq!(reparsed.to_string(), line);
    }
}

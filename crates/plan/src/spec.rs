//! Plan specifications: what workload the fleet must carry and what
//! service level it must hit.
//!
//! [`PlanSpec`] is the planner's single input. It reuses the runtime's
//! workload vocabulary (arrival processes, network mixes, multi-tenant
//! classes) and adds the search axes: which chip kinds may appear in a
//! fleet, how many chips a fleet may have, which batching policies and
//! [`AutoscalePolicy`] variants to consider, and the [`SloSpec`] every
//! candidate is judged against.
//!
//! Both types follow the workspace's `Display`/`parse` convention: the
//! `Display` form is canonical and `parse(display(x)) == x` **exactly**
//! (floats are rendered with `{}`, Rust's shortest round-trip
//! representation, so no precision is lost). Trace-backed arrival
//! processes are intentionally outside the grammar — a plan must be
//! reproducible from its one-line spec alone.

use albireo_runtime::{
    ArrivalProcess, AutoscalePolicy, BatchPolicy, ClassSpec, FaultSpec, Workload,
};
use std::fmt;

/// The service-level objective candidates must meet to be feasible.
///
/// Grammar (comma-separated, `p99` required, any order):
///
/// ```text
/// p99<5ms[,attain>=0.95][,shed<=0.01]
/// ```
///
/// * `p99<T ms` — the run's 99th-percentile latency must not exceed `T`.
/// * `attain>=A` — every SLO-carrying tenant class must finish at least
///   fraction `A` of its *offered* requests within its own per-class
///   SLO (shed requests count as misses). Vacuous when the workload
///   declares no SLO classes.
/// * `shed<=S` — the run's shed rate must not exceed `S`. Defaults to
///   `0` (a feasible fleet completes everything it is offered), and the
///   canonical `Display` form omits the clause at the default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// 99th-percentile latency ceiling, ms.
    pub p99_ms: f64,
    /// Per-class SLO-attainment floor (`None` = not enforced).
    pub min_attainment: Option<f64>,
    /// Shed-rate ceiling (default 0.0).
    pub max_shed_rate: f64,
}

impl SloSpec {
    /// An SLO that only bounds p99 latency (and forbids shedding).
    pub fn p99(p99_ms: f64) -> SloSpec {
        SloSpec {
            p99_ms,
            min_attainment: None,
            max_shed_rate: 0.0,
        }
    }

    /// Parses the `p99<..` grammar documented on the type.
    pub fn parse(spec: &str) -> Result<SloSpec, String> {
        let mut p99_ms = None;
        let mut min_attainment = None;
        let mut max_shed_rate = None;
        for part in spec.split(',') {
            let part = part.trim();
            if let Some(v) = part.strip_prefix("p99<") {
                let v = v.strip_suffix("ms").unwrap_or(v);
                let t: f64 = v
                    .parse()
                    .map_err(|_| format!("bad p99 bound in SLO `{spec}`"))?;
                if !(t.is_finite() && t > 0.0) {
                    return Err(format!("p99 bound must be positive in SLO `{spec}`"));
                }
                if p99_ms.replace(t).is_some() {
                    return Err(format!("duplicate p99 clause in SLO `{spec}`"));
                }
            } else if let Some(v) = part.strip_prefix("attain>=") {
                let a: f64 = v
                    .parse()
                    .map_err(|_| format!("bad attainment floor in SLO `{spec}`"))?;
                if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                    return Err(format!(
                        "attainment floor must be in (0, 1] in SLO `{spec}`"
                    ));
                }
                if min_attainment.replace(a).is_some() {
                    return Err(format!("duplicate attain clause in SLO `{spec}`"));
                }
            } else if let Some(v) = part.strip_prefix("shed<=") {
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("bad shed bound in SLO `{spec}`"))?;
                if !(s.is_finite() && (0.0..1.0).contains(&s)) {
                    return Err(format!("shed bound must be in [0, 1) in SLO `{spec}`"));
                }
                if max_shed_rate.replace(s).is_some() {
                    return Err(format!("duplicate shed clause in SLO `{spec}`"));
                }
            } else {
                return Err(format!(
                    "unknown SLO clause `{part}` (try: p99<5ms, attain>=0.95, shed<=0.01)"
                ));
            }
        }
        Ok(SloSpec {
            p99_ms: p99_ms.ok_or_else(|| format!("SLO `{spec}` needs a p99<..ms clause"))?,
            min_attainment,
            max_shed_rate: max_shed_rate.unwrap_or(0.0),
        })
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p99<{}ms", self.p99_ms)?;
        if let Some(a) = self.min_attainment {
            write!(f, ",attain>={a}")?;
        }
        if self.max_shed_rate != 0.0 {
            write!(f, ",shed<={}", self.max_shed_rate)?;
        }
        Ok(())
    }
}

/// The planner's input: the workload to carry, the SLO to meet, and the
/// search space of candidate fleets.
///
/// Grammar — `;`-separated `key=value` pairs. `rate`, `slo`, and `chips`
/// are required; everything else has the default shown:
///
/// ```text
/// arrival=poisson;rate=2000;mix=0:1;requests=2000;screen=300;seed=42;
/// replicas=1;slo=p99<5ms;chips=albireo_9:C;max-chips=3;
/// policies=immediate;queue-cap=64;autoscale=static
/// ```
///
/// `autoscale` defaults to `static` (not `none`): a capacity planner
/// must charge idle power, or every fleet size reports the same energy
/// per request and "more chips" is free. `none` remains available for
/// comparing against the legacy no-idle-accounting engine.
///
/// * `arrival` — `poisson`, `bursty:<BURST>:<ON_S>:<OFF_S>`,
///   `diurnal:<AMPLITUDE>:<PERIOD_S>`, or
///   `flash:<SPIKE>:<AT_S>:<DECAY_S>` (parameters in the runtime's
///   [`ArrivalProcess`] units; the mean rate comes from `rate`).
/// * `mix` — comma list of `NETWORK_INDEX:WEIGHT` over the model zoo.
/// * `classes` — optional comma list of `NAME:WEIGHT[:SLO_MS]` tenant
///   classes ([`ClassSpec::parse_list`] grammar).
/// * `requests` / `screen` — full scoring run length and the shorter
///   screening prefix used to prune hopeless candidates.
/// * `replicas` — scoring runs per candidate (split-seed replicas).
/// * `chips` — `|`-separated fleet entries (e.g. `albireo_9:C`), the
///   chip kinds fleets are composed from.
/// * `max-chips` — largest fleet size searched.
/// * `policies` — `|`-separated batching policies: `immediate`,
///   `size:<N>`, `deadline:<USEC>[:<MAX>]`, or the canonical exact form
///   `deadline_s:<SECONDS>:<MAX>`.
/// * `queue-cap` — shared queue capacity, or `unbounded`.
/// * `autoscale` — `|`-separated [`AutoscalePolicy`] specs.
/// * `faults` — optional correlated-fault scenario every candidate is
///   scored under ([`FaultSpec`] grammar: `fail:`, `recover:`,
///   `degrade:`, `rack:`, `thermal:`, `crews:` clauses), compiled per
///   candidate fleet size. Omitted = healthy fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// The request stream every candidate serves.
    pub workload: Workload,
    /// Full-length scoring run, requests.
    pub requests: usize,
    /// Screening-run prefix length, requests.
    pub screen_requests: usize,
    /// Master seed; replica `r` runs with a split of it.
    pub seed: u64,
    /// Scoring replicas per candidate.
    pub replicas: usize,
    /// The SLO candidates must meet.
    pub slo: SloSpec,
    /// Chip kinds (fleet-entry specs) fleets are composed from.
    pub chip_kinds: Vec<String>,
    /// Largest fleet size searched.
    pub max_chips: usize,
    /// Batching policies searched.
    pub policies: Vec<BatchPolicy>,
    /// Shared queue capacity (`usize::MAX` = unbounded).
    pub queue_capacity: usize,
    /// Autoscaling policies searched.
    pub autoscale: Vec<AutoscalePolicy>,
    /// Correlated-fault scenario candidates are scored under (empty =
    /// healthy fleet), compiled against each candidate's fleet size.
    pub faults: FaultSpec,
}

/// Canonical exact serialization of a batching policy: `immediate`,
/// `size:<N>`, or `deadline_s:<SECONDS>:<MAX>` (seconds via `{}` so the
/// float round-trips bit-exactly — the CLI's microsecond form divides
/// by 1e6, which is not an exact inverse of multiplication).
pub fn policy_spec(policy: &BatchPolicy) -> String {
    match policy {
        BatchPolicy::Immediate => "immediate".to_string(),
        BatchPolicy::SizeN { size } => format!("size:{size}"),
        BatchPolicy::Deadline {
            max_wait_s,
            max_size,
        } => format!("deadline_s:{max_wait_s}:{max_size}"),
    }
}

/// Parses [`policy_spec`]'s grammar plus everything
/// [`BatchPolicy::parse`] accepts.
pub fn parse_policy(spec: &str) -> Result<BatchPolicy, String> {
    if let Some(rest) = spec.trim().strip_prefix("deadline_s:") {
        let mut parts = rest.split(':');
        let max_wait_s: f64 = parts
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| format!("bad deadline in policy `{spec}`"))?;
        if !(max_wait_s.is_finite() && max_wait_s > 0.0) {
            return Err(format!("deadline must be positive in policy `{spec}`"));
        }
        let max_size: usize = parts
            .next()
            .ok_or_else(|| format!("policy `{spec}` needs deadline_s:<SECONDS>:<MAX>"))?
            .parse()
            .map_err(|_| format!("bad max batch size in policy `{spec}`"))?;
        if max_size == 0 {
            return Err("max batch size must be at least 1".to_string());
        }
        if parts.next().is_some() {
            return Err(format!("too many fields in policy `{spec}`"));
        }
        return Ok(BatchPolicy::Deadline {
            max_wait_s,
            max_size,
        });
    }
    BatchPolicy::parse(spec)
}

fn arrival_spec(process: &ArrivalProcess) -> String {
    match process {
        ArrivalProcess::Poisson { .. } => "poisson".to_string(),
        ArrivalProcess::Bursty {
            burst, on_s, off_s, ..
        } => format!("bursty:{burst}:{on_s}:{off_s}"),
        ArrivalProcess::Diurnal {
            amplitude,
            period_s,
            ..
        } => format!("diurnal:{amplitude}:{period_s}"),
        ArrivalProcess::FlashCrowd {
            spike,
            at_s,
            decay_s,
            ..
        } => format!("flash:{spike}:{at_s}:{decay_s}"),
        // Outside the reproducible grammar; `validate` rejects these.
        ArrivalProcess::Trace { .. } => "trace".to_string(),
        ArrivalProcess::TraceFile { path } => format!("trace_file:{path}"),
    }
}

fn parse_arrival(spec: &str, rate_rps: f64) -> Result<ArrivalProcess, String> {
    let field = |parts: &mut std::str::Split<'_, char>, name: &str| -> Result<f64, String> {
        parts
            .next()
            .ok_or_else(|| format!("arrival `{spec}` is missing its {name} field"))?
            .parse::<f64>()
            .map_err(|_| format!("bad {name} in arrival `{spec}`"))
    };
    let done = |parts: &mut std::str::Split<'_, char>| -> Result<(), String> {
        if parts.next().is_some() {
            Err(format!("too many fields in arrival `{spec}`"))
        } else {
            Ok(())
        }
    };
    if spec == "poisson" {
        return Ok(ArrivalProcess::Poisson { rate_rps });
    }
    if let Some(rest) = spec.strip_prefix("bursty:") {
        let mut parts = rest.split(':');
        let burst = field(&mut parts, "burst")?;
        let on_s = field(&mut parts, "on_s")?;
        let off_s = field(&mut parts, "off_s")?;
        done(&mut parts)?;
        if !(burst.is_finite() && burst > 1.0) {
            return Err(format!("burst must exceed 1 in arrival `{spec}`"));
        }
        if !(on_s.is_finite() && on_s > 0.0 && off_s.is_finite() && off_s > 0.0) {
            return Err(format!(
                "phase durations must be positive in arrival `{spec}`"
            ));
        }
        return Ok(ArrivalProcess::Bursty {
            rate_rps,
            burst,
            on_s,
            off_s,
        });
    }
    if let Some(rest) = spec.strip_prefix("diurnal:") {
        let mut parts = rest.split(':');
        let amplitude = field(&mut parts, "amplitude")?;
        let period_s = field(&mut parts, "period_s")?;
        done(&mut parts)?;
        if !(amplitude.is_finite() && amplitude > 0.0 && amplitude <= 1.0) {
            return Err(format!("amplitude must be in (0, 1] in arrival `{spec}`"));
        }
        if !(period_s.is_finite() && period_s > 0.0) {
            return Err(format!("period must be positive in arrival `{spec}`"));
        }
        return Ok(ArrivalProcess::Diurnal {
            rate_rps,
            amplitude,
            period_s,
        });
    }
    if let Some(rest) = spec.strip_prefix("flash:") {
        let mut parts = rest.split(':');
        let spike = field(&mut parts, "spike")?;
        let at_s = field(&mut parts, "at_s")?;
        let decay_s = field(&mut parts, "decay_s")?;
        done(&mut parts)?;
        if !(spike.is_finite() && spike > 1.0) {
            return Err(format!("spike must exceed 1 in arrival `{spec}`"));
        }
        if !(at_s.is_finite() && at_s >= 0.0) {
            return Err(format!(
                "spike onset must be non-negative in arrival `{spec}`"
            ));
        }
        if !(decay_s.is_finite() && decay_s > 0.0) {
            return Err(format!("decay must be positive in arrival `{spec}`"));
        }
        return Ok(ArrivalProcess::FlashCrowd {
            rate_rps,
            spike,
            at_s,
            decay_s,
        });
    }
    Err(format!(
        "unknown arrival `{spec}` (try: poisson, bursty:<BURST>:<ON_S>:<OFF_S>, \
         diurnal:<AMPLITUDE>:<PERIOD_S>, flash:<SPIKE>:<AT_S>:<DECAY_S>)"
    ))
}

impl PlanSpec {
    /// A p99-only plan over Poisson arrivals of network 0, searching
    /// fleets of up to `max_chips` copies of one chip kind under
    /// immediate dispatch with no autoscaling.
    pub fn poisson(rate_rps: f64, p99_ms: f64, chip_kind: &str, max_chips: usize) -> PlanSpec {
        PlanSpec {
            workload: Workload::poisson(rate_rps, 0),
            requests: 2000,
            screen_requests: 300,
            seed: 42,
            replicas: 1,
            slo: SloSpec::p99(p99_ms),
            chip_kinds: vec![chip_kind.to_string()],
            max_chips,
            policies: vec![BatchPolicy::Immediate],
            queue_capacity: 64,
            autoscale: vec![AutoscalePolicy::Static],
            faults: FaultSpec::none(),
        }
    }

    /// Parses the `key=value;...` grammar documented on the type.
    pub fn parse(spec: &str) -> Result<PlanSpec, String> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("plan spec entry `{part}` is not key=value"))?;
            let k = k.trim().to_string();
            if pairs.iter().any(|(seen, _)| *seen == k) {
                return Err(format!("duplicate key `{k}` in plan spec"));
            }
            pairs.push((k, v.trim().to_string()));
        }
        let mut take = |key: &str| -> Option<String> {
            let at = pairs.iter().position(|(k, _)| k == key)?;
            Some(pairs.remove(at).1)
        };

        let rate_rps: f64 = take("rate")
            .ok_or("plan spec needs rate=<RPS>")?
            .parse()
            .map_err(|_| "bad rate in plan spec".to_string())?;
        if !(rate_rps.is_finite() && rate_rps > 0.0) {
            return Err("rate must be positive".to_string());
        }
        let process = parse_arrival(take("arrival").as_deref().unwrap_or("poisson"), rate_rps)?;

        let mut mix: Vec<(usize, f64)> = Vec::new();
        for entry in take("mix").as_deref().unwrap_or("0:1").split(',') {
            let entry = entry.trim();
            let (idx, weight) = entry
                .split_once(':')
                .ok_or_else(|| format!("mix entry `{entry}` needs NETWORK:WEIGHT"))?;
            let idx: usize = idx
                .parse()
                .map_err(|_| format!("bad network index in mix entry `{entry}`"))?;
            let weight: f64 = weight
                .parse()
                .map_err(|_| format!("bad weight in mix entry `{entry}`"))?;
            if !(weight.is_finite() && weight > 0.0) {
                return Err(format!("mix weight must be positive in entry `{entry}`"));
            }
            if mix.iter().any(|&(seen, _)| seen == idx) {
                return Err(format!("duplicate network {idx} in mix"));
            }
            mix.push((idx, weight));
        }

        let classes = match take("classes") {
            Some(list) => ClassSpec::parse_list(&list, None)?,
            None => Vec::new(),
        };

        let parse_usize = |key: &str, value: Option<String>, default: usize| match value {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("bad {key} in plan spec")),
            None => Ok(default),
        };
        let requests = parse_usize("requests", take("requests"), 2000)?;
        let screen_requests = parse_usize("screen", take("screen"), 300)?;
        let seed: u64 = match take("seed") {
            Some(v) => v.parse().map_err(|_| "bad seed in plan spec".to_string())?,
            None => 42,
        };
        let replicas = parse_usize("replicas", take("replicas"), 1)?;
        let slo = SloSpec::parse(&take("slo").ok_or("plan spec needs slo=p99<..ms")?)?;

        let mut chip_kinds: Vec<String> = Vec::new();
        for kind in take("chips")
            .ok_or("plan spec needs chips=<ENTRY>|..")?
            .split('|')
        {
            let kind = kind.trim();
            if kind.is_empty() {
                return Err("empty chip kind in plan spec".to_string());
            }
            if chip_kinds.iter().any(|seen| seen == kind) {
                return Err(format!("duplicate chip kind `{kind}` in plan spec"));
            }
            chip_kinds.push(kind.to_string());
        }
        let max_chips = parse_usize("max-chips", take("max-chips"), 3)?;

        let mut policies: Vec<BatchPolicy> = Vec::new();
        for p in take("policies")
            .as_deref()
            .unwrap_or("immediate")
            .split('|')
        {
            let policy = parse_policy(p)?;
            if policies.contains(&policy) {
                return Err(format!(
                    "duplicate policy `{}` in plan spec",
                    policy.label()
                ));
            }
            policies.push(policy);
        }

        let queue_capacity = match take("queue-cap").as_deref() {
            None => 64,
            Some("unbounded") => usize::MAX,
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| "bad queue-cap in plan spec (try an integer or `unbounded`)")?,
        };

        let mut autoscale: Vec<AutoscalePolicy> = Vec::new();
        for a in take("autoscale").as_deref().unwrap_or("static").split('|') {
            let policy = AutoscalePolicy::parse(a)?;
            if autoscale.contains(&policy) {
                return Err(format!(
                    "duplicate autoscale policy `{policy}` in plan spec"
                ));
            }
            autoscale.push(policy);
        }

        let faults = match take("faults") {
            Some(v) => FaultSpec::parse(&v)?,
            None => FaultSpec::none(),
        };

        if let Some((k, _)) = pairs.first() {
            return Err(format!("unknown plan spec key `{k}`"));
        }

        let plan = PlanSpec {
            workload: Workload {
                process,
                mix,
                classes,
            },
            requests,
            screen_requests,
            seed,
            replicas,
            slo,
            chip_kinds,
            max_chips,
            policies,
            queue_capacity,
            autoscale,
            faults,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Checks the invariants the search relies on. `parse` calls this;
    /// hand-built specs should too before planning.
    pub fn validate(&self) -> Result<(), String> {
        match self.workload.process {
            ArrivalProcess::Trace { .. } | ArrivalProcess::TraceFile { .. } => {
                return Err(
                    "trace arrivals are not plannable (a plan must be reproducible from its \
                     spec line alone)"
                        .to_string(),
                )
            }
            _ => {}
        }
        if self.workload.mix.is_empty() {
            return Err("plan workload mix is empty".to_string());
        }
        if self.requests == 0 {
            return Err("requests must be at least 1".to_string());
        }
        if self.screen_requests == 0 || self.screen_requests > self.requests {
            return Err("screen run length must be in 1..=requests".to_string());
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".to_string());
        }
        if self.chip_kinds.is_empty() {
            return Err("plan spec names no chip kinds".to_string());
        }
        for kind in &self.chip_kinds {
            // Candidate fleets repeat kinds (2, 3, ... copies); a fixed
            // alias would collide with itself on the second copy.
            if kind.contains('=') {
                return Err(format!(
                    "chip kind `{kind}` carries an alias; the planner sizes fleets by \
                     repeating kinds, so aliases would collide — use the bare \
                     `<chip>[:<estimate>]` form"
                ));
            }
        }
        if self.max_chips == 0 {
            return Err("max-chips must be at least 1".to_string());
        }
        if self.policies.is_empty() {
            return Err("plan spec names no batching policies".to_string());
        }
        if self.autoscale.is_empty() {
            return Err("plan spec names no autoscale policies".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue-cap must be at least 1 (or `unbounded`)".to_string());
        }
        Ok(())
    }
}

impl fmt::Display for PlanSpec {
    /// The canonical spec line: every key emitted (except `classes` when
    /// empty), floats via `{}` so `parse` reproduces the value exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arrival={};rate={}",
            arrival_spec(&self.workload.process),
            self.workload.process.mean_rate_rps()
        )?;
        write!(f, ";mix=")?;
        for (i, (idx, weight)) in self.workload.mix.iter().enumerate() {
            write!(f, "{}{idx}:{weight}", if i > 0 { "," } else { "" })?;
        }
        if !self.workload.classes.is_empty() {
            write!(f, ";classes=")?;
            for (i, c) in self.workload.classes.iter().enumerate() {
                write!(f, "{}{}:{}", if i > 0 { "," } else { "" }, c.name, c.weight)?;
                if let Some(slo) = c.slo_ms {
                    write!(f, ":{slo}")?;
                }
            }
        }
        write!(
            f,
            ";requests={};screen={};seed={};replicas={};slo={}",
            self.requests, self.screen_requests, self.seed, self.replicas, self.slo
        )?;
        write!(f, ";chips={}", self.chip_kinds.join("|"))?;
        write!(f, ";max-chips={};policies=", self.max_chips)?;
        for (i, p) in self.policies.iter().enumerate() {
            write!(f, "{}{}", if i > 0 { "|" } else { "" }, policy_spec(p))?;
        }
        if self.queue_capacity == usize::MAX {
            write!(f, ";queue-cap=unbounded")?;
        } else {
            write!(f, ";queue-cap={}", self.queue_capacity)?;
        }
        write!(f, ";autoscale=")?;
        for (i, a) in self.autoscale.iter().enumerate() {
            write!(f, "{}{a}", if i > 0 { "|" } else { "" })?;
        }
        // Appended last, and only when present, so fault-free spec lines
        // (and their digests) are byte-identical to the pre-fault era.
        if !self.faults.is_empty() {
            write!(f, ";faults={}", self.faults)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_parses_and_round_trips() {
        let slo = SloSpec::parse("p99<5ms").unwrap();
        assert_eq!(slo, SloSpec::p99(5.0));
        assert_eq!(slo.to_string(), "p99<5ms");

        let full = SloSpec::parse("p99<2.5ms,attain>=0.95,shed<=0.01").unwrap();
        assert_eq!(full.p99_ms, 2.5);
        assert_eq!(full.min_attainment, Some(0.95));
        assert_eq!(full.max_shed_rate, 0.01);
        assert_eq!(SloSpec::parse(&full.to_string()).unwrap(), full);

        // Order-insensitive on input; canonical on output.
        let swapped = SloSpec::parse("shed<=0.01,p99<2.5,attain>=0.95").unwrap();
        assert_eq!(swapped, full);

        for bad in [
            "attain>=0.9",       // p99 missing
            "p99<0ms",           // non-positive bound
            "p99<5ms,p99<6ms",   // duplicate clause
            "p99<5ms,attain>=2", // out of range
            "p99<5ms,shed<=1",   // shed must stay below 1
            "p99<5ms,foo=bar",   // unknown clause
        ] {
            assert!(SloSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn plan_spec_round_trips_through_display() {
        let line = "arrival=bursty:8:0.01:0.04;rate=1500;mix=0:3,3:1;\
                    classes=interactive:3:5,batch:1;requests=1200;screen=200;seed=7;\
                    replicas=2;slo=p99<5ms,shed<=0.02;chips=albireo_9:C|albireo_27:C;\
                    max-chips=3;policies=immediate|size:4|deadline_s:0.0001:6;\
                    queue-cap=128;autoscale=none|static|elastic:8:0.002:1";
        let spec = PlanSpec::parse(line).unwrap();
        assert_eq!(PlanSpec::parse(&spec.to_string()).unwrap(), spec);
        assert_eq!(spec.chip_kinds.len(), 2);
        assert_eq!(spec.policies.len(), 3);
        assert_eq!(spec.autoscale.len(), 3);
        assert_eq!(spec.workload.classes[0].slo_ms, Some(5.0));
        assert_eq!(spec.workload.classes[1].slo_ms, None);
        assert!(spec.faults.is_empty());
        // A fault-free spec line never mentions faults (byte-compatible
        // with pre-fault spec lines and their golden digests).
        assert!(!spec.to_string().contains("faults"));
    }

    #[test]
    fn plan_spec_faults_round_trip_and_sit_last() {
        let line = "rate=2000;slo=p99<5ms;chips=albireo_9:C;\
                    faults=thermal:0-2@0.01-0.03:2,fail:1@0.02,crews:2:0.05:7";
        let spec = PlanSpec::parse(line).unwrap();
        assert!(!spec.faults.is_empty());
        let canon = spec.to_string();
        assert!(
            canon.ends_with(";faults=thermal:0-2@0.01-0.03:2,fail:1@0.02,crews:2:0.05:7"),
            "faults must be the final key: {canon}"
        );
        assert_eq!(PlanSpec::parse(&canon).unwrap(), spec);
        // The compiled scenario tracks the candidate fleet size.
        assert!(spec.faults.compile(3).events().len() > spec.faults.compile(1).events().len());
    }

    #[test]
    fn plan_spec_defaults_fill_in() {
        let spec = PlanSpec::parse("rate=2000;slo=p99<5ms;chips=albireo_9:C").unwrap();
        assert_eq!(
            spec.workload.process,
            ArrivalProcess::Poisson { rate_rps: 2000.0 }
        );
        assert_eq!(spec.workload.mix, vec![(0, 1.0)]);
        assert!(spec.workload.classes.is_empty());
        assert_eq!(spec.requests, 2000);
        assert_eq!(spec.screen_requests, 300);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.replicas, 1);
        assert_eq!(spec.max_chips, 3);
        assert_eq!(spec.policies, vec![BatchPolicy::Immediate]);
        assert_eq!(spec.queue_capacity, 64);
        assert_eq!(spec.autoscale, vec![AutoscalePolicy::Static]);
        // The default-filled spec still round-trips.
        assert_eq!(PlanSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn plan_spec_rejects_malformed_input() {
        for bad in [
            "slo=p99<5ms;chips=albireo_9:C",                       // rate missing
            "rate=2000;chips=albireo_9:C",                         // slo missing
            "rate=2000;slo=p99<5ms",                               // chips missing
            "rate=0;slo=p99<5ms;chips=albireo_9:C",                // bad rate
            "rate=2000;slo=p99<5ms;chips=albireo_9:C|albireo_9:C", // duplicate chip kind
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;rate=3000",   // duplicate key
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;bogus=1",     // unknown key
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;mix=0:1,0:2", // duplicate network
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;screen=0",    // screen too short
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;screen=9999", // screen > requests
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;queue-cap=0", // zero queue
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;policies=immediate|immediate",
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;autoscale=none|none",
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;arrival=bursty:8:0.01", // missing field
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;arrival=warp",          // unknown shape
            "rate=2000;slo=p99<5ms;chips=edge=albireo_9:C",                  // aliased kind
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;faults=melt:0@1",       // unknown clause
            "rate=2000;slo=p99<5ms;chips=albireo_9:C;faults=fail:0@-1",      // negative time
        ] {
            assert!(PlanSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn deadline_seconds_form_is_exact_where_microseconds_are_not() {
        // The canonical form stores seconds directly: whatever f64 the
        // spec carries is reproduced bit-exactly by parse(display).
        let policy = BatchPolicy::Deadline {
            max_wait_s: 0.000123456789,
            max_size: 6,
        };
        let spec = policy_spec(&policy);
        assert_eq!(parse_policy(&spec).unwrap(), policy);
        // The CLI microsecond grammar still parses.
        assert_eq!(
            parse_policy("deadline:100:6").unwrap(),
            BatchPolicy::Deadline {
                max_wait_s: 100.0 / 1e6,
                max_size: 6
            }
        );
    }
}

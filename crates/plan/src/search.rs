//! The deterministic coarse-to-fine search over candidate fleets.
//!
//! ## Candidate space
//!
//! A candidate is (chip multiset, batching policy, autoscale policy):
//! every multiset of the spec's chip kinds with 1..=`max_chips` chips,
//! crossed with every policy and autoscale entry. Multisets (not
//! sequences) because the serving engine dispatches to the first free
//! chip — chip order within a fleet does not change the run. Elastic
//! autoscaling whose floor covers the whole fleet is skipped: it
//! degenerates to `static` and would duplicate that candidate.
//!
//! ## Coarse-to-fine pruning
//!
//! Scoring every candidate with full-length replica runs is the
//! dominant cost, so the search first runs a short **screening**
//! simulation per candidate (`screen` requests, replica-0 seed). The
//! screening run is an exact *prefix* of the scoring run — same
//! workload, same seed, fewer requests — so its metrics are the real
//! run's opening window, not a noisy proxy. A candidate is pruned
//! without scoring when that window already misses the SLO by a wide
//! margin:
//!
//! * screening p99 above `4×` the target, or
//! * screening shed rate above `max(5%, 2×shed_budget + 2%)`.
//!
//! The slack absorbs small-sample noise and arrival nonstationarity
//! (a screening window that happens to cover a burst). The shed rule is
//! *exactly* sound when the spec's shed budget is zero: every shed in
//! the screening prefix also happens in the full run (same arrivals,
//! same decisions), so a shedding screen run proves the full run sheds
//! too. The latency rule is an engineering bound, not a theorem —
//! `exhaustive: true` scores everything, and the planner's determinism
//! tests assert that pruned and exhaustive searches produce
//! byte-identical plan JSON on the golden spec (pruning only ever
//! removes candidates that full scoring would also call infeasible).
//!
//! Screening also **auto-disables** when `screen × 4 > requests`: below
//! that gap the screen pass costs nearly as much as the scoring it
//! hopes to skip, and measured candidate throughput on the pruned path
//! falls *below* exhaustive. The report's `screen_auto_disabled` flag
//! (text rendering only) records when this fired.
//!
//! ## Fault-aware planning
//!
//! A spec may carry a `faults=` scenario ([`albireo_runtime::FaultSpec`]
//! grammar). It compiles once per fleet *size* — rack/thermal ranges
//! clip to the candidate's fleet — and every screen and scoring run
//! executes under it, so the frontier ranks candidates by how they
//! serve *through* the outage, not in a healthy vacuum. Screening
//! soundness is unchanged: the screen run is still an exact prefix of
//! scoring replica 0, faults included.
//!
//! ## Determinism
//!
//! The plan is a pure function of the spec. All candidates share the
//! same replica seeds (replica 0 = the spec seed, replica `r` =
//! `split_seed(seed, stream_id(PLAN_PASS, 0, r))`), so candidates are
//! compared on identical arrival sequences and the screening run is a
//! prefix of scoring replica 0. Fan-out goes through
//! [`Parallelism::map_indexed`], which preserves index order at any
//! thread count, and candidates are aggregated in enumeration order —
//! the report is byte-identical from `--threads 1` to `--threads N`.

use crate::report::{CandidateOutcome, PlanReport};
use crate::spec::PlanSpec;
use albireo_nn::zoo;
use albireo_obs::Obs;
use albireo_parallel::{split_seed, stream_id, Parallelism};
use albireo_runtime::{
    simulate, AdmissionControl, AutoscalePolicy, BatchPolicy, FaultScenario, FleetConfig,
    ServeConfig, ServiceReport,
};

/// Seed-split pass id for planner replicas (serving studies use
/// `0xA1B`; workload streams use `0x5E1..0x5E3`).
pub const PLAN_PASS: u64 = 0xA1C;

/// One point in the search space.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Candidate {
    /// Comma-joined fleet spec, parseable by [`FleetConfig::parse`].
    pub fleet_spec: String,
    /// Fleet size.
    pub chips: usize,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Autoscale policy.
    pub autoscale: AutoscalePolicy,
}

/// Enumerates chip multisets as nondecreasing index sequences, depth
/// first — `[0] [0,0] [0,0,1] [0,1] [1] ...` for two kinds — so the
/// candidate order is a pure function of the spec.
fn multisets(kinds: usize, max_chips: usize) -> Vec<Vec<usize>> {
    fn rec(
        kinds: usize,
        max: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !cur.is_empty() {
            out.push(cur.clone());
        }
        if cur.len() == max {
            return;
        }
        for k in start..kinds {
            cur.push(k);
            rec(kinds, max, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(kinds, max_chips, 0, &mut Vec::new(), &mut out);
    out
}

pub(crate) fn enumerate(spec: &PlanSpec) -> Vec<Candidate> {
    let mut out = Vec::new();
    for fleet in multisets(spec.chip_kinds.len(), spec.max_chips) {
        let fleet_spec = fleet
            .iter()
            .map(|&k| spec.chip_kinds[k].as_str())
            .collect::<Vec<_>>()
            .join(",");
        for &policy in &spec.policies {
            for &autoscale in &spec.autoscale {
                if let AutoscalePolicy::Elastic { min_chips, .. } = autoscale {
                    // A floor covering the whole fleet never parks a
                    // chip — identical to `static`, so skip the dup.
                    if min_chips >= fleet.len() {
                        continue;
                    }
                }
                out.push(Candidate {
                    fleet_spec: fleet_spec.clone(),
                    chips: fleet.len(),
                    policy,
                    autoscale,
                });
            }
        }
    }
    out
}

fn run_candidate(
    spec: &PlanSpec,
    candidate: &Candidate,
    fleet: &FleetConfig,
    faults: &FaultScenario,
    requests: usize,
    seed: u64,
) -> ServiceReport {
    let cfg = ServeConfig {
        workload: spec.workload.clone(),
        requests,
        seed,
        policy: candidate.policy,
        admission: if spec.queue_capacity == usize::MAX {
            AdmissionControl::unbounded()
        } else {
            AdmissionControl::bounded(spec.queue_capacity)
        },
        faults: faults.clone(),
        record_cap: 0,
        autoscale: candidate.autoscale,
        alert: albireo_runtime::AlertPolicy::standard(),
    };
    simulate(fleet, &cfg)
}

/// The per-replica numbers a candidate is judged and ranked on.
#[derive(Debug, Clone, Copy)]
struct RunStats {
    p99_ms: f64,
    shed_rate: f64,
    attainment: f64,
    energy_total_j: f64,
    energy_per_request_j: f64,
    goodput_rps: f64,
    spin_ups: u64,
    digest: u64,
}

fn run_stats(report: &ServiceReport) -> RunStats {
    RunStats {
        p99_ms: report.p99_ms,
        shed_rate: report.shed_rate,
        // The floor over SLO-carrying classes; 1.0 when the workload
        // declares none (the clause is then vacuous).
        attainment: report
            .classes
            .iter()
            .filter_map(|c| c.slo_attainment)
            .fold(1.0, f64::min),
        energy_total_j: report.energy_total_j,
        energy_per_request_j: report.energy_per_request_j,
        goodput_rps: report.goodput_rps,
        spin_ups: report.per_chip.iter().map(|c| c.spin_ups).sum(),
        digest: report.digest(),
    }
}

fn screen_survives(spec: &PlanSpec, report: &ServiceReport) -> bool {
    let shed_ceiling = (2.0 * spec.slo.max_shed_rate + 0.02).max(0.05);
    report.p99_ms <= 4.0 * spec.slo.p99_ms && report.shed_rate <= shed_ceiling
}

/// Runs the full planner search and returns the ranked plan.
///
/// `exhaustive: false` screens-then-scores (the default);
/// `exhaustive: true` skips screening and scores every candidate. Both
/// modes produce byte-identical plan JSON whenever pruning removes only
/// candidates that scoring would call infeasible — the mode only shows
/// up in the report's search counters (text rendering and obs metrics).
///
/// Obs counters: `plan.candidates`, `plan.screened`, `plan.pruned`,
/// `plan.scored`, `plan.feasible`.
pub fn plan(
    spec: &PlanSpec,
    par: Parallelism,
    obs: &Obs,
    exhaustive: bool,
) -> Result<PlanReport, String> {
    spec.validate()?;
    // The serving model table: the paper's four benchmarks at indices
    // 0–3 plus the dense extension workloads, so mixes can name
    // MLP-Mixer/Transformer-Enc and chip kinds can include the
    // winograd/gemm operating modes.
    let models = zoo::serving_models();
    for &(network, _) in &spec.workload.mix {
        if network >= models.len() {
            return Err(format!(
                "mix names network {network} but the model zoo has {} entries",
                models.len()
            ));
        }
    }
    for kind in &spec.chip_kinds {
        FleetConfig::parse(kind, zoo::serving_models())
            .map_err(|e| format!("chip kind `{kind}`: {e}"))?;
    }

    let candidates = enumerate(spec);
    // Parse each candidate's fleet exactly once, up front. Re-parsing
    // inside `run_candidate` charged every screen run, every scoring
    // replica, *and* the label lookup for a spec parse apiece — pure
    // overhead that dominated short-screen searches.
    let fleets: Vec<FleetConfig> = candidates
        .iter()
        .map(|c| {
            FleetConfig::parse(&c.fleet_spec, models.clone())
                .expect("candidate fleet specs are built from validated chip kinds")
        })
        .collect();
    // Operating-mode chips are partial: a gemm-only candidate fleet
    // cannot serve a CNN mix at all (support-aware dispatch would have
    // no chip to route to). Such candidates are infeasible by
    // construction and are dropped before any simulation — they can
    // never reach the frontier, so pruned and exhaustive searches still
    // agree byte for byte.
    let supported: Vec<bool> = fleets
        .iter()
        .map(|fleet| {
            spec.workload
                .mix
                .iter()
                .all(|&(network, _)| fleet.supports(&models[network]))
        })
        .collect();
    // The spec's fault scenario clips rack/thermal ranges to the fleet,
    // so it compiles per fleet *size* — once per size, shared by every
    // candidate of that size.
    let scenarios: Vec<FaultScenario> = (0..=spec.max_chips)
        .map(|size| spec.faults.compile(size))
        .collect();
    let seeds: Vec<u64> = (0..spec.replicas)
        .map(|r| {
            if r == 0 {
                spec.seed
            } else {
                split_seed(spec.seed, stream_id(PLAN_PASS, 0, r as u64))
            }
        })
        .collect();

    // Phase 1 — screening. Short prefix runs on the replica-0 seed cut
    // hopeless candidates before the expensive scoring fan-out. The
    // survivor list is a pure function of the spec (map_indexed is
    // order-preserving), so the scoring phase below sees the same jobs
    // in the same order at any thread count.
    // Screening only pays when the screen run is much shorter than the
    // scoring run: below a 4x gap the screen pass costs nearly as much
    // as the scoring it hopes to skip, and the measured throughput of
    // the pruned path drops *below* exhaustive (the screen runs are
    // pure overhead for every survivor). Auto-disable it there.
    let screen_worthwhile = spec.screen_requests * 4 <= spec.requests;
    let screen_everything = exhaustive || !screen_worthwhile;
    let (survivors, screened) = if screen_everything {
        ((0..candidates.len()).filter(|&i| supported[i]).collect(), 0)
    } else {
        let flags = par.map_indexed(candidates.len(), |i| {
            if !supported[i] {
                return false;
            }
            let report = run_candidate(
                spec,
                &candidates[i],
                &fleets[i],
                &scenarios[candidates[i].chips],
                spec.screen_requests,
                seeds[0],
            );
            screen_survives(spec, &report)
        });
        let survivors: Vec<usize> = (0..candidates.len()).filter(|&i| flags[i]).collect();
        (survivors, candidates.len())
    };
    let pruned = candidates.len() - survivors.len();

    // Phase 2 — scoring. Full-length runs, `replicas` per survivor, all
    // candidates on the same replica seeds so they are compared on
    // identical arrival sequences.
    let stats = par.map_indexed(survivors.len() * spec.replicas, |j| {
        let index = survivors[j / spec.replicas];
        let candidate = &candidates[index];
        run_stats(&run_candidate(
            spec,
            candidate,
            &fleets[index],
            &scenarios[candidate.chips],
            spec.requests,
            seeds[j % spec.replicas],
        ))
    });

    // Aggregate replicas conservatively: worst-case latency/shed/
    // attainment across replicas gate feasibility; energy and goodput
    // average. A candidate is feasible only if every replica is.
    let mut outcomes: Vec<CandidateOutcome> = Vec::new();
    for (s, &index) in survivors.iter().enumerate() {
        let candidate = &candidates[index];
        let runs = &stats[s * spec.replicas..(s + 1) * spec.replicas];
        let n = runs.len() as f64;
        let fleet_label = fleets[index].label();
        let mut digest = 0u64;
        for r in runs {
            digest = digest.rotate_left(13) ^ r.digest;
        }
        let p99_ms = runs.iter().map(|r| r.p99_ms).fold(0.0, f64::max);
        let shed_rate = runs.iter().map(|r| r.shed_rate).fold(0.0, f64::max);
        let attainment = runs.iter().map(|r| r.attainment).fold(1.0, f64::min);
        let feasible = p99_ms <= spec.slo.p99_ms
            && shed_rate <= spec.slo.max_shed_rate
            && spec
                .slo
                .min_attainment
                .is_none_or(|floor| attainment >= floor);
        outcomes.push(CandidateOutcome {
            fleet_spec: candidate.fleet_spec.clone(),
            fleet_label,
            chips: candidate.chips,
            policy_label: candidate.policy.label(),
            autoscale_label: candidate.autoscale.to_string(),
            p99_ms,
            shed_rate,
            attainment,
            energy_total_j: runs.iter().map(|r| r.energy_total_j).sum::<f64>() / n,
            energy_per_request_j: runs.iter().map(|r| r.energy_per_request_j).sum::<f64>() / n,
            goodput_rps: runs.iter().map(|r| r.goodput_rps).sum::<f64>() / n,
            spin_ups: runs.iter().map(|r| r.spin_ups).sum(),
            feasible,
            pareto: false,
            digest,
        });
    }

    // Rank the feasible set by mean energy per request (the objective),
    // tie-broken on latency then labels so the order is total.
    let mut frontier: Vec<CandidateOutcome> =
        outcomes.iter().filter(|o| o.feasible).cloned().collect();
    frontier.sort_by(|a, b| {
        a.energy_per_request_j
            .total_cmp(&b.energy_per_request_j)
            .then(a.p99_ms.total_cmp(&b.p99_ms))
            .then(a.fleet_spec.cmp(&b.fleet_spec))
            .then(a.policy_label.cmp(&b.policy_label))
            .then(a.autoscale_label.cmp(&b.autoscale_label))
    });
    for i in 0..frontier.len() {
        let dominated = frontier.iter().any(|other| {
            other.energy_per_request_j <= frontier[i].energy_per_request_j
                && other.p99_ms <= frontier[i].p99_ms
                && (other.energy_per_request_j < frontier[i].energy_per_request_j
                    || other.p99_ms < frontier[i].p99_ms)
        });
        frontier[i].pareto = !dominated;
    }

    let scored = survivors.len();
    let feasible = frontier.len();
    obs.counter("plan.candidates").add(candidates.len() as u64);
    obs.counter("plan.screened").add(screened as u64);
    obs.counter("plan.pruned").add(pruned as u64);
    obs.counter("plan.scored").add(scored as u64);
    obs.counter("plan.feasible").add(feasible as u64);

    Ok(PlanReport {
        spec_line: spec.to_string(),
        slo_line: spec.slo.to_string(),
        exhaustive: screen_everything,
        screen_auto_disabled: !exhaustive && !screen_worthwhile,
        candidates_total: candidates.len(),
        screened,
        pruned,
        scored,
        replicas: spec.replicas,
        frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_runtime::FaultSpec;

    #[test]
    fn multisets_enumerate_nondecreasing_sequences() {
        let sets = multisets(2, 2);
        assert_eq!(
            sets,
            vec![vec![0], vec![0, 0], vec![0, 1], vec![1], vec![1, 1],]
        );
        // Sanity: C(kinds + size - 1, size) summed over sizes.
        assert_eq!(multisets(3, 3).len(), 3 + 6 + 10);
    }

    #[test]
    fn enumerate_skips_degenerate_elastic_candidates() {
        let mut spec = PlanSpec::poisson(1000.0, 5.0, "albireo_9:C", 2);
        spec.autoscale = vec![
            AutoscalePolicy::Static,
            AutoscalePolicy::Elastic {
                up_depth: 8,
                warmup_s: 0.002,
                min_chips: 1,
            },
        ];
        let candidates = enumerate(&spec);
        // Size-1 fleets: static only (elastic floor covers the fleet).
        // Size-2 fleet: static + elastic.
        assert_eq!(candidates.len(), 3);
        assert!(candidates
            .iter()
            .all(|c| c.chips == 2 || c.autoscale == AutoscalePolicy::Static));
    }

    #[test]
    fn planner_finds_the_minimum_feasible_fleet() {
        // 8000 rps of AlexNet against a ~4500 rps chip: one chip is
        // overloaded, two chips are the minimum feasible fleet, three
        // meet the SLO too but pay an extra chip's idle power. The
        // winner must be the pair — under the default `static` idle
        // accounting, extra capacity costs energy.
        let spec = PlanSpec::parse(
            "rate=8000;requests=600;screen=150;slo=p99<5ms;chips=albireo_9:C;max-chips=3",
        )
        .unwrap();
        let report = plan(&spec, Parallelism::serial(), &Obs::disabled(), false).unwrap();
        assert_eq!(report.candidates_total, 3);
        assert_eq!(report.frontier.len(), 2, "two and three chips are feasible");
        let winner = report.winner().expect("a feasible fleet exists");
        assert_eq!(winner.chips, 2);
        assert!(winner.p99_ms <= 5.0);
        assert_eq!(winner.shed_rate, 0.0);
        assert!(
            winner.energy_per_request_j < report.frontier[1].energy_per_request_j,
            "the 3-chip fleet must pay for its idle chip"
        );
    }

    #[test]
    fn pruned_and_exhaustive_searches_agree() {
        // At 10000 rps the 1-chip fleet sheds hard inside the screening
        // window and is pruned; the scored sets differ between modes but
        // the feasible frontier (and thus JSON and digest) must not.
        let spec = PlanSpec::parse(
            "rate=10000;requests=600;screen=150;slo=p99<5ms;chips=albireo_9:C;max-chips=3",
        )
        .unwrap();
        let obs = Obs::disabled();
        let pruned = plan(&spec, Parallelism::serial(), &obs, false).unwrap();
        let exhaustive = plan(&spec, Parallelism::serial(), &obs, true).unwrap();
        assert!(pruned.pruned >= 1, "screening should cut the 1-chip fleet");
        assert!(pruned.scored < exhaustive.scored);
        assert_eq!(pruned.frontier, exhaustive.frontier);
        assert_eq!(pruned.to_json(), exhaustive.to_json());
        assert_eq!(pruned.digest(), exhaustive.digest());
    }

    #[test]
    fn screening_auto_disables_when_the_screen_is_too_long() {
        // screen*4 > requests: the screen pass would cost nearly as
        // much as scoring, so the search scores everything and says so.
        let spec = PlanSpec::parse(
            "rate=8000;requests=400;screen=150;slo=p99<5ms;chips=albireo_9:C;max-chips=2",
        )
        .unwrap();
        let obs = Obs::disabled();
        let auto = plan(&spec, Parallelism::serial(), &obs, false).unwrap();
        assert!(auto.exhaustive, "auto-disable must imply exhaustive");
        assert!(auto.screen_auto_disabled);
        assert_eq!((auto.screened, auto.pruned), (0, 0));
        assert!(auto.render_text().contains("screening auto-disabled"));
        // An explicit exhaustive run is byte-identical and not blamed
        // on the auto-disable rule.
        let explicit = plan(&spec, Parallelism::serial(), &obs, true).unwrap();
        assert!(!explicit.screen_auto_disabled);
        assert_eq!(auto.to_json(), explicit.to_json());
    }

    #[test]
    fn spec_faults_shift_the_winner_to_a_larger_fleet() {
        // Healthy, two chips suffice at 8000 rps (see the minimum-fleet
        // test). With chip 0 failed at t=0 and never repaired, every
        // fleet runs one chip short — the planner must spend a third
        // chip to stay feasible.
        let healthy = PlanSpec::parse(
            "rate=8000;requests=600;screen=150;slo=p99<5ms;chips=albireo_9:C;max-chips=3",
        )
        .unwrap();
        let mut faulty = healthy.clone();
        faulty.faults = FaultSpec::parse("fail:0@0").unwrap();
        let obs = Obs::disabled();
        let base = plan(&healthy, Parallelism::serial(), &obs, false).unwrap();
        let degraded = plan(&faulty, Parallelism::serial(), &obs, false).unwrap();
        assert_eq!(base.winner().expect("healthy winner").chips, 2);
        assert_eq!(degraded.winner().expect("degraded winner").chips, 3);
        assert!(
            degraded.spec_line.ends_with(";faults=fail:0@0"),
            "spec echo must carry the scenario: {}",
            degraded.spec_line
        );
    }

    #[test]
    fn plans_are_identical_at_any_thread_count() {
        let spec = PlanSpec::parse(
            "rate=1800;requests=400;screen=100;replicas=2;slo=p99<6ms;\
             chips=albireo_9:C|albireo_27:C;max-chips=2;autoscale=none|static",
        )
        .unwrap();
        let obs = Obs::disabled();
        let serial = plan(&spec, Parallelism::serial(), &obs, false).unwrap();
        for threads in [2, 5] {
            let parallel = plan(&spec, Parallelism::with_threads(threads), &obs, false).unwrap();
            assert_eq!(serial.to_json(), parallel.to_json());
            assert_eq!(serial.to_csv(), parallel.to_csv());
        }
    }

    #[test]
    fn mixed_mode_fleets_reach_the_frontier_on_cnn_plus_dense_mixes() {
        // A mixed CNN + dense workload: VGG16 (index 1) and MLP-Mixer
        // (index 4) in equal parts, with all three operating modes as
        // candidate chip kinds. gemm-only fleets cannot serve VGG16 and
        // must be dropped before simulation (never panicking the
        // engine); heterogeneous fleets mixing modes are admitted, and
        // at least one lands on the (energy, p99) frontier.
        let spec = PlanSpec::parse(
            "rate=800;requests=600;screen=100;slo=p99<8ms;mix=1:1,4:1;\
             chips=albireo_9:C|winograd_9:C|gemm_9:C;max-chips=2",
        )
        .unwrap();
        let report = plan(&spec, Parallelism::serial(), &Obs::disabled(), false).unwrap();
        // 3 singletons + 6 unordered pairs of the 3 kinds.
        assert_eq!(report.candidates_total, 9);
        assert!(!report.frontier.is_empty(), "no feasible fleet found");
        // The gemm-only fleets (gemm, gemm+gemm) never reach the
        // frontier — they cannot serve half the mix.
        for entry in &report.frontier {
            assert!(
                entry.fleet_label.contains("albireo") || entry.fleet_label.contains("winograd"),
                "gemm-only fleet `{}` should have been dropped",
                entry.fleet_label
            );
        }
        // Both new modes are admitted as frontier citizens, and at
        // least one frontier fleet mixes two different operating modes.
        let labels: Vec<&str> = report
            .frontier
            .iter()
            .map(|e| e.fleet_label.as_str())
            .collect();
        assert!(
            labels.iter().any(|l| l.contains("winograd")),
            "no winograd fleet on the frontier: {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("gemm")),
            "no gemm fleet on the frontier: {labels:?}"
        );
        let kinds = |label: &str| {
            let mut k: Vec<&str> = label
                .split('+')
                .map(|c| c.split('_').next().unwrap_or(c))
                .collect();
            k.sort_unstable();
            k.dedup();
            k.len()
        };
        assert!(
            labels.iter().any(|l| kinds(l) >= 2),
            "no mixed-mode fleet on the frontier: {labels:?}"
        );
    }

    #[test]
    fn invalid_plans_are_rejected_before_the_fan_out() {
        let mut spec = PlanSpec::poisson(1000.0, 5.0, "albireo_9:C", 1);
        spec.workload.mix = vec![(99, 1.0)];
        let err = plan(&spec, Parallelism::serial(), &Obs::disabled(), false).unwrap_err();
        assert!(err.contains("model zoo"), "got: {err}");

        let bad_chip = PlanSpec::poisson(1000.0, 5.0, "warp_drive", 1);
        let err = plan(&bad_chip, Parallelism::serial(), &Obs::disabled(), false).unwrap_err();
        assert!(err.contains("warp_drive"), "got: {err}");
    }
}

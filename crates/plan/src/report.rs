//! The ranked plan: the winning fleet, the full (energy, SLO) frontier,
//! and its text / CSV / JSON renderings.
//!
//! Conventions follow the runtime's serving report: floats render
//! through [`albireo_core::report::json`] (`{:.6}`), JSON is hand-rolled
//! against a versioned schema string (`albireo.plan/v1`), and the digest
//! is an order-sensitive fold (`d.rotate_left(13) ^ bits` here, distinct
//! from the serving report's `rotl 7` so the two digest families cannot
//! be confused).
//!
//! **Mode independence.** The JSON, CSV, and digest cover only fields
//! that are identical between pruned and exhaustive searches: the spec,
//! the candidate count, and the *feasible* frontier (pruning never
//! changes which candidates are feasible — see the search module's
//! soundness notes — and infeasible-but-scored candidates are excluded
//! precisely because the two modes score different infeasible sets).
//! Search counters (`screened`, `pruned`, `scored`) appear only in the
//! text rendering and obs metrics.

use albireo_core::report::json;

/// One scored candidate's aggregate over its replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateOutcome {
    /// Comma-joined fleet spec (machine-usable with `--fleet`).
    pub fleet_spec: String,
    /// Human fleet label (`albireo_9+albireo_27` style).
    pub fleet_label: String,
    /// Fleet size.
    pub chips: usize,
    /// Batching-policy label.
    pub policy_label: String,
    /// Autoscale-policy label.
    pub autoscale_label: String,
    /// Worst 99th-percentile latency across replicas, ms.
    pub p99_ms: f64,
    /// Worst shed rate across replicas.
    pub shed_rate: f64,
    /// Worst per-class SLO-attainment floor across replicas (1.0 when
    /// the workload declares no SLO classes).
    pub attainment: f64,
    /// Mean total energy across replicas, J.
    pub energy_total_j: f64,
    /// Mean energy per completed request across replicas, J — the
    /// ranking objective.
    pub energy_per_request_j: f64,
    /// Mean goodput across replicas, requests/s.
    pub goodput_rps: f64,
    /// Elastic spin-ups summed over chips and replicas.
    pub spin_ups: u64,
    /// Whether the candidate meets the SLO on every replica.
    pub feasible: bool,
    /// Pareto-optimal in (energy/request, p99) among feasible
    /// candidates.
    pub pareto: bool,
    /// Fold of the replica run digests (order-sensitive, `rotl 13`).
    pub digest: u64,
}

impl CandidateOutcome {
    /// `energy_per_request_j` in millijoules (the headline unit).
    pub fn energy_per_request_mj(&self) -> f64 {
        self.energy_per_request_j * 1e3
    }
}

/// The finished search: spec echo, search counters, and the ranked
/// feasible frontier (ascending energy per request; the winner is rank
/// 1 / index 0).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Canonical spec line ([`crate::PlanSpec`]'s `Display`).
    pub spec_line: String,
    /// Canonical SLO line.
    pub slo_line: String,
    /// Whether screening was skipped (every candidate scored).
    pub exhaustive: bool,
    /// Whether the search itself disabled screening because the screen
    /// length was too close to the scoring length to pay for itself
    /// (text rendering only — the JSON stays mode-independent).
    pub screen_auto_disabled: bool,
    /// Candidates enumerated.
    pub candidates_total: usize,
    /// Candidates screened (0 in exhaustive mode).
    pub screened: usize,
    /// Candidates pruned by screening.
    pub pruned: usize,
    /// Candidates fully scored.
    pub scored: usize,
    /// Scoring replicas per candidate.
    pub replicas: usize,
    /// Feasible candidates, ranked by mean energy per request.
    pub frontier: Vec<CandidateOutcome>,
}

fn fold(digest: u64, bits: u64) -> u64 {
    digest.rotate_left(13) ^ bits
}

impl PlanReport {
    /// The minimum-energy feasible candidate, if any exists.
    pub fn winner(&self) -> Option<&CandidateOutcome> {
        self.frontier.first()
    }

    /// Order-sensitive digest over the mode-independent plan: candidate
    /// count, frontier length, then every frontier entry's run digest
    /// and ranking metrics. Byte-identical JSON ⇒ equal digests, and
    /// the digest is cheap to compare across thread counts or search
    /// modes.
    pub fn digest(&self) -> u64 {
        let mut d = 0xF1EE_7A11_u64;
        d = fold(d, self.candidates_total as u64);
        d = fold(d, self.frontier.len() as u64);
        for entry in &self.frontier {
            d = fold(d, entry.digest);
            d = fold(d, entry.energy_per_request_j.to_bits());
            d = fold(d, entry.p99_ms.to_bits());
            d = fold(d, entry.chips as u64);
        }
        d
    }

    /// `digest()` as `0x`-prefixed hex.
    pub fn digest_hex(&self) -> String {
        format!("0x{:016x}", self.digest())
    }

    fn entry_json(entry: &CandidateOutcome, rank: usize) -> String {
        format!(
            "{{\"rank\": {rank}, \"fleet\": \"{}\", \"fleet_label\": \"{}\", \
             \"chips\": {}, \"policy\": \"{}\", \"autoscale\": \"{}\", \
             \"p99_ms\": {}, \"shed_rate\": {}, \"attainment\": {}, \
             \"energy_total_j\": {}, \"energy_per_request_mj\": {}, \
             \"goodput_rps\": {}, \"spin_ups\": {}, \"pareto\": {}, \
             \"digest\": \"0x{:016x}\"}}",
            entry.fleet_spec,
            entry.fleet_label,
            entry.chips,
            entry.policy_label,
            entry.autoscale_label,
            json::num(entry.p99_ms),
            json::num(entry.shed_rate),
            json::num(entry.attainment),
            json::num(entry.energy_total_j),
            json::num(entry.energy_per_request_mj()),
            json::num(entry.goodput_rps),
            entry.spin_ups,
            entry.pareto,
            entry.digest,
        )
    }

    /// The machine-readable plan, schema `albireo.plan/v1`. Contains
    /// only mode-independent fields (see module docs), so pruned and
    /// exhaustive searches of the same spec emit identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"albireo.plan/v1\",\n");
        out.push_str(&format!("  \"spec\": \"{}\",\n", self.spec_line));
        out.push_str(&format!("  \"slo\": \"{}\",\n", self.slo_line));
        out.push_str(&format!("  \"candidates\": {},\n", self.candidates_total));
        out.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        out.push_str(&format!("  \"feasible\": {},\n", self.frontier.len()));
        match self.winner() {
            Some(winner) => {
                out.push_str(&format!("  \"winner\": {},\n", Self::entry_json(winner, 1)))
            }
            None => out.push_str("  \"winner\": null,\n"),
        }
        out.push_str("  \"frontier\": [\n");
        for (i, entry) in self.frontier.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                Self::entry_json(entry, i + 1),
                json::sep(i, self.frontier.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"digest\": \"{}\"\n", self.digest_hex()));
        out.push_str("}\n");
        out
    }

    /// The frontier CSV header.
    pub fn csv_header() -> &'static str {
        "rank,fleet,chips,policy,autoscale,p99_ms,shed_rate,attainment,\
         energy_total_j,energy_per_request_mj,goodput_rps,spin_ups,pareto"
    }

    /// The ranked frontier as CSV (mode-independent, like the JSON).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for (i, e) in self.frontier.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                i + 1,
                e.fleet_label,
                e.chips,
                e.policy_label,
                e.autoscale_label,
                json::num(e.p99_ms),
                json::num(e.shed_rate),
                json::num(e.attainment),
                json::num(e.energy_total_j),
                json::num(e.energy_per_request_mj()),
                json::num(e.goodput_rps),
                e.spin_ups,
                e.pareto,
            ));
        }
        out
    }

    /// The human-oriented rendering: search counters (mode-dependent —
    /// this is the one place pruning statistics appear) plus the ranked
    /// frontier table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("plan: {}\n", self.spec_line));
        if self.exhaustive {
            out.push_str(&format!(
                "searched {} candidates exhaustively{} ({} scored x {} replica(s)) — {} feasible\n",
                self.candidates_total,
                if self.screen_auto_disabled {
                    " (screening auto-disabled: screen > requests/4)"
                } else {
                    ""
                },
                self.scored,
                self.replicas,
                self.frontier.len()
            ));
        } else {
            out.push_str(&format!(
                "searched {} candidates ({} screened, {} pruned, {} scored x {} replica(s)) — {} feasible\n",
                self.candidates_total,
                self.screened,
                self.pruned,
                self.scored,
                self.replicas,
                self.frontier.len()
            ));
        }
        match self.winner() {
            None => out.push_str(&format!(
                "no feasible fleet meets {} — raise max-chips, widen the chip/policy lists, \
                 or relax the SLO\n",
                self.slo_line
            )),
            Some(w) => {
                out.push_str(&format!(
                    "winner: {} ({} chip(s), policy {}, autoscale {}) — {:.3} mJ/request, \
                     p99 {:.4} ms vs {}\n",
                    w.fleet_label,
                    w.chips,
                    w.policy_label,
                    w.autoscale_label,
                    w.energy_per_request_mj(),
                    w.p99_ms,
                    self.slo_line
                ));
                out.push_str(&format!(
                    "{:<5} {:<28} {:<16} {:<20} {:>10} {:>9} {:>8} {:>10} {:>9} {:>7}\n",
                    "rank",
                    "fleet",
                    "policy",
                    "autoscale",
                    "mJ/req",
                    "p99 ms",
                    "shed %",
                    "attain",
                    "spin-ups",
                    "pareto"
                ));
                for (i, e) in self.frontier.iter().enumerate() {
                    out.push_str(&format!(
                        "{:<5} {:<28} {:<16} {:<20} {:>10.3} {:>9.4} {:>8.2} {:>10.4} {:>9} {:>7}\n",
                        i + 1,
                        e.fleet_label,
                        e.policy_label,
                        e.autoscale_label,
                        e.energy_per_request_mj(),
                        e.p99_ms,
                        e.shed_rate * 100.0,
                        e.attainment,
                        e.spin_ups,
                        if e.pareto { "*" } else { "" }
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(energy_j: f64, p99_ms: f64, pareto: bool) -> CandidateOutcome {
        CandidateOutcome {
            fleet_spec: "albireo_9:C".to_string(),
            fleet_label: "albireo_9_C".to_string(),
            chips: 1,
            policy_label: "immediate".to_string(),
            autoscale_label: "none".to_string(),
            p99_ms,
            shed_rate: 0.0,
            attainment: 1.0,
            energy_total_j: energy_j * 100.0,
            energy_per_request_j: energy_j,
            goodput_rps: 1000.0,
            spin_ups: 0,
            feasible: true,
            pareto,
            digest: 0xDEAD_BEEF,
        }
    }

    fn report(frontier: Vec<CandidateOutcome>) -> PlanReport {
        PlanReport {
            spec_line: "rate=1000;slo=p99<5ms;chips=albireo_9:C".to_string(),
            slo_line: "p99<5ms".to_string(),
            exhaustive: false,
            screen_auto_disabled: false,
            candidates_total: 3,
            screened: 3,
            pruned: 1,
            scored: 2,
            replicas: 1,
            frontier,
        }
    }

    #[test]
    fn json_is_mode_independent_and_carries_the_digest() {
        let mut pruned = report(vec![entry(0.002, 1.5, true)]);
        let mut exhaustive = pruned.clone();
        exhaustive.exhaustive = true;
        exhaustive.screened = 0;
        exhaustive.pruned = 0;
        exhaustive.scored = 3;
        assert_eq!(pruned.to_json(), exhaustive.to_json());
        assert_eq!(pruned.to_csv(), exhaustive.to_csv());
        assert_eq!(pruned.digest(), exhaustive.digest());
        assert!(pruned.to_json().contains("\"schema\": \"albireo.plan/v1\""));
        assert!(pruned.to_json().contains(&pruned.digest_hex()));
        // The digest reacts to frontier changes.
        exhaustive.frontier.push(entry(0.003, 2.0, false));
        assert_ne!(pruned.digest(), exhaustive.digest());
        // But the text renderings differ (search counters are visible).
        pruned.exhaustive = false;
        assert!(pruned.render_text().contains("pruned"));
        assert!(exhaustive.render_text().contains("exhaustively"));
    }

    #[test]
    fn empty_frontier_reports_no_winner() {
        let r = report(Vec::new());
        assert!(r.winner().is_none());
        assert!(r.to_json().contains("\"winner\": null"));
        assert!(r.render_text().contains("no feasible fleet"));
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec![PlanReport::csv_header()]);
    }

    #[test]
    fn csv_rows_follow_the_frontier_ranking() {
        let r = report(vec![entry(0.002, 1.5, true), entry(0.004, 1.0, true)]);
        let csv = r.to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        // The fleet column is the `+`-joined label: the spec form can
        // contain commas, which would break the CSV.
        assert!(rows[0].starts_with("1,albireo_9_C,1,immediate,none,"));
        assert!(!rows[0].contains("albireo_9:C"));
        assert!(rows[1].starts_with("2,"));
    }
}

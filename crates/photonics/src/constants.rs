//! Physical constants used throughout the photonic models.
//!
//! All values are CODATA 2018 in SI units.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Planck constant, J·s.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Photon energy at a given vacuum wavelength (meters), in joules.
///
/// ```
/// use albireo_photonics::constants::photon_energy;
/// // 1550 nm photons carry ~0.8 eV.
/// let ev = photon_energy(1550e-9) / 1.602e-19;
/// assert!((ev - 0.8).abs() < 0.01);
/// ```
pub fn photon_energy(wavelength_m: f64) -> f64 {
    PLANCK * SPEED_OF_LIGHT / wavelength_m
}

/// Optical frequency (Hz) corresponding to a vacuum wavelength (m).
pub fn frequency_of(wavelength_m: f64) -> f64 {
    SPEED_OF_LIGHT / wavelength_m
}

/// Vacuum wavelength (m) corresponding to an optical frequency (Hz).
pub fn wavelength_of(frequency_hz: f64) -> f64 {
    SPEED_OF_LIGHT / frequency_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_band_frequency_is_about_193_thz() {
        let f = frequency_of(1550e-9);
        assert!((f - 193.4e12).abs() / 193.4e12 < 0.01, "f = {f}");
    }

    #[test]
    fn wavelength_frequency_round_trip() {
        let lambda = 1550e-9;
        let back = wavelength_of(frequency_of(lambda));
        assert!((back - lambda).abs() < 1e-18);
    }

    #[test]
    fn photon_energy_positive_and_decreasing_with_wavelength() {
        assert!(photon_energy(1310e-9) > photon_energy(1550e-9));
        assert!(photon_energy(1550e-9) > 0.0);
    }
}

//! End-to-end optical link budget through the Albireo chip (paper Fig. 6).
//!
//! The optical path of one input signal is:
//!
//! ```text
//! laser → modulator MRR (drop) → waveguide → Y-branch broadcast tree (Ng)
//!       → AWG demux → star coupler multicast → MZM multiply
//!       → switching MRR (drop) → waveguide → photodiode
//! ```
//!
//! The budget determines the per-channel power reaching the balanced
//! photodiodes, which in turn sets the noise-limited precision via
//! [`crate::precision`].

use crate::units::Db;
use crate::ybranch::{BroadcastTree, YBranch};
use crate::OpticalParams;

/// A named stage in a link budget.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStage {
    /// Human-readable name of the stage.
    pub name: String,
    /// Power transfer of the stage (negative dB = loss).
    pub transfer: Db,
}

/// An ordered sequence of optical stages with loss accounting.
///
/// ```
/// use albireo_photonics::link::LinkBudget;
/// use albireo_photonics::params::OpticalParams;
///
/// let budget = LinkBudget::albireo_chip(&OpticalParams::paper(), 9, 3, 5, 3);
/// // The full chip path loses tens of dB; the PD still sees µW-scale power
/// // from a 37.5 mW conservative laser.
/// let p_pd = budget.output_power(37.5e-3);
/// assert!(p_pd > 1e-7 && p_pd < 1e-3, "p_pd = {p_pd}");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkBudget {
    stages: Vec<LinkStage>,
}

impl LinkBudget {
    /// Creates an empty budget.
    pub fn new() -> LinkBudget {
        LinkBudget::default()
    }

    /// Appends a stage.
    pub fn stage(&mut self, name: impl Into<String>, transfer: Db) -> &mut LinkBudget {
        self.stages.push(LinkStage {
            name: name.into(),
            transfer,
        });
        self
    }

    /// The stages in order.
    pub fn stages(&self) -> &[LinkStage] {
        &self.stages
    }

    /// Total transfer of the whole path.
    pub fn total_transfer(&self) -> Db {
        self.stages.iter().map(|s| s.transfer).sum()
    }

    /// Total loss magnitude in dB.
    pub fn total_loss_db(&self) -> f64 {
        self.total_transfer().loss_db()
    }

    /// Output power (W) for a given input power (W).
    pub fn output_power(&self, input_power_w: f64) -> f64 {
        self.total_transfer().apply(input_power_w)
    }

    /// Running power profile: `(stage name, power after stage)` for a given
    /// input power — useful for debugging which stage eats the budget.
    pub fn power_profile(&self, input_power_w: f64) -> Vec<(String, f64)> {
        let mut p = input_power_w;
        self.stages
            .iter()
            .map(|s| {
                p = s.transfer.apply(p);
                (s.name.clone(), p)
            })
            .collect()
    }

    /// Builds the paper's full chip path for a configuration with `ng`
    /// PLCGs, kernels of width `wx`, `nd` concurrent receptive fields, and
    /// `waveguide_cm` centimetres of on-chip straight routing (default
    /// chip-scale value: use ~1 cm).
    pub fn albireo_chip(
        params: &OpticalParams,
        ng: usize,
        wx: usize,
        nd: usize,
        waveguide_mm: u32,
    ) -> LinkBudget {
        let tree = BroadcastTree::new(YBranch::from_params(params), ng.max(1));
        let star_split = Db::from_linear(1.0 / wx.max(1) as f64);
        let wg_loss =
            Db::loss(params.waveguide.straight_loss_db_per_cm * f64::from(waveguide_mm) / 10.0);
        let _ = nd; // nd shapes the star coupler inputs, not its per-port loss
        let mut b = LinkBudget::new();
        b.stage("modulator MRR drop", params.mrr_drop_loss())
            .stage("waveguide routing", wg_loss)
            .stage("broadcast tree", tree.per_output_transfer())
            .stage("AWG demux", params.awg_loss())
            .stage(
                "star coupler split",
                star_split + params.star_coupler_loss(),
            )
            .stage("MZM insertion", params.mzm_loss())
            .stage("switching MRR drop", params.mrr_drop_loss());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_unity() {
        let b = LinkBudget::new();
        assert_eq!(b.total_loss_db(), 0.0);
        assert_eq!(b.output_power(1e-3), 1e-3);
    }

    #[test]
    fn stages_accumulate() {
        let mut b = LinkBudget::new();
        b.stage("a", Db::loss(1.0)).stage("b", Db::loss(2.0));
        assert!((b.total_loss_db() - 3.0).abs() < 1e-12);
        assert_eq!(b.stages().len(), 2);
    }

    #[test]
    fn albireo_chip_budget_is_in_plausible_range() {
        let b = LinkBudget::albireo_chip(&OpticalParams::paper(), 9, 3, 5, 10);
        let loss = b.total_loss_db();
        // 0.39+1.5+13.24(broadcast)+2.0+(4.77+1.3)(star)+1.2+0.39 ≈ 24.8 dB
        assert!((20.0..30.0).contains(&loss), "loss = {loss} dB");
    }

    #[test]
    fn bigger_fanout_loses_more() {
        let p = OpticalParams::paper();
        let b9 = LinkBudget::albireo_chip(&p, 9, 3, 5, 10);
        let b27 = LinkBudget::albireo_chip(&p, 27, 3, 5, 10);
        assert!(b27.total_loss_db() > b9.total_loss_db());
    }

    #[test]
    fn power_profile_is_monotonically_decreasing() {
        let b = LinkBudget::albireo_chip(&OpticalParams::paper(), 9, 3, 5, 10);
        let profile = b.power_profile(37.5e-3);
        let mut prev = 37.5e-3;
        for (_, p) in &profile {
            assert!(*p <= prev);
            prev = *p;
        }
        assert_eq!(profile.len(), 7);
    }

    #[test]
    fn conservative_laser_delivers_microwatts() {
        // 37.5 mW laser through ~25 dB ⇒ ~100 µW at the PD, enough for
        // ≥ 8-bit noise-limited precision per Fig. 3.
        let b = LinkBudget::albireo_chip(&OpticalParams::paper(), 9, 3, 5, 10);
        let p_pd = b.output_power(37.5e-3);
        assert!(p_pd > 5e-6, "p_pd = {p_pd}");
    }
}

//! Laser source model.
//!
//! Table I quotes the *electrical* power of the heterogeneously-integrated
//! DBR laser (37.5 mW at 20 °C, paper ref. \[15\]); the optical power
//! launched into the chip is that times the wall-plug efficiency. The
//! paper does not state an efficiency — its Fig. 3 reasons directly in
//! optical power — so this model makes the conversion explicit and lets
//! the power-delivery analysis report how much efficiency the conservative
//! device must achieve.

use crate::params::LaserParams;
use crate::units::rin_dbc_to_linear;
use crate::{check_positive, check_unit_interval, OpticalParams, Result};

/// A laser source: electrical drive power, wall-plug efficiency, and RIN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laser {
    /// Electrical drive power, W.
    electrical_w: f64,
    /// Wall-plug (electrical→optical) efficiency, in `(0, 1]`.
    wall_plug_efficiency: f64,
    /// RIN power spectral density, dBc/Hz.
    rin_dbc_per_hz: f64,
    /// Device footprint, m².
    area_m2: f64,
}

impl Laser {
    /// Builds a laser.
    ///
    /// # Errors
    ///
    /// Returns an error if the drive power is non-positive or the
    /// efficiency is outside `(0, 1]`.
    pub fn new(
        electrical_w: f64,
        wall_plug_efficiency: f64,
        params: &LaserParams,
    ) -> Result<Laser> {
        check_positive("electrical_w", electrical_w)?;
        check_unit_interval("wall_plug_efficiency", wall_plug_efficiency)?;
        check_positive("wall_plug_efficiency", wall_plug_efficiency)?;
        Ok(Laser {
            electrical_w,
            wall_plug_efficiency,
            rin_dbc_per_hz: params.rin_dbc_per_hz,
            area_m2: params.area_m2,
        })
    }

    /// The paper's conservative device at a given wall-plug efficiency.
    ///
    /// # Errors
    ///
    /// Returns an error if `wall_plug_efficiency` is outside `(0, 1]`.
    pub fn conservative(wall_plug_efficiency: f64) -> Result<Laser> {
        Laser::new(37.5e-3, wall_plug_efficiency, &OpticalParams::paper().laser)
    }

    /// Electrical drive power, W.
    pub fn electrical_w(&self) -> f64 {
        self.electrical_w
    }

    /// Wall-plug efficiency.
    pub fn wall_plug_efficiency(&self) -> f64 {
        self.wall_plug_efficiency
    }

    /// Optical output power, W.
    pub fn optical_w(&self) -> f64 {
        self.electrical_w * self.wall_plug_efficiency
    }

    /// RIN PSD, dBc/Hz.
    pub fn rin_dbc_per_hz(&self) -> f64 {
        self.rin_dbc_per_hz
    }

    /// RIN-induced optical power standard deviation over a bandwidth, W.
    pub fn rin_sigma_w(&self, bandwidth_hz: f64) -> f64 {
        self.optical_w() * (rin_dbc_to_linear(self.rin_dbc_per_hz) * bandwidth_hz).sqrt()
    }

    /// Electrical power for a *target optical* power at this efficiency, W.
    pub fn electrical_for_optical(optical_w: f64, wall_plug_efficiency: f64) -> f64 {
        optical_w / wall_plug_efficiency
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.area_m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optical_is_electrical_times_efficiency() {
        let l = Laser::conservative(0.2).unwrap();
        assert!((l.optical_w() - 7.5e-3).abs() < 1e-12);
        assert_eq!(l.electrical_w(), 37.5e-3);
    }

    #[test]
    fn unity_efficiency_is_the_paper_reading() {
        // The reproduction's link budgets treat the Table I laser power as
        // optical; that corresponds to η = 1.
        let l = Laser::conservative(1.0).unwrap();
        assert_eq!(l.optical_w(), l.electrical_w());
    }

    #[test]
    fn rin_sigma_scales_with_power_and_bandwidth() {
        let l = Laser::conservative(1.0).unwrap();
        let s1 = l.rin_sigma_w(5e9);
        let s2 = l.rin_sigma_w(20e9);
        assert!((s2 / s1 - 2.0).abs() < 1e-9);
        // −140 dBc/Hz over 5 GHz: σ/P = sqrt(1e-14·5e9) ≈ 0.71%.
        assert!((s1 / l.optical_w() - 0.00707).abs() < 1e-4);
    }

    #[test]
    fn electrical_for_optical_inverts() {
        let e = Laser::electrical_for_optical(9.2e-3, 0.25);
        assert!((e - 36.8e-3).abs() < 1e-6);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Laser::conservative(0.0).is_err());
        assert!(Laser::conservative(1.5).is_err());
        let p = OpticalParams::paper().laser;
        assert!(Laser::new(0.0, 0.5, &p).is_err());
    }
}

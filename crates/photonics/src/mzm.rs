//! Mach-Zehnder modulator: the analog optical multiplier (paper §II-B1).
//!
//! The MZM multiplies an optical signal by a scalar in `[0, 1]` via
//! destructive interference between its two arms (Eq. 2):
//!
//! ```text
//! Pout = Pin/2 + (Pin/2)·cos(Δφ),   0 ≤ Δφ ≤ π
//! ```
//!
//! Because the interference condition is wavelength-independent for balanced
//! arm lengths, a single MZM multiplies *every* wavelength on its input
//! waveguide by the same weight — the property Albireo exploits for
//! parameter sharing across overlapping receptive fields.

use crate::params::MzmParams;
use crate::units::Db;
use crate::{check_unit_interval, Result};

/// A Mach-Zehnder modulator holding one kernel weight.
///
/// ```
/// use albireo_photonics::mzm::Mzm;
/// use albireo_photonics::params::OpticalParams;
///
/// # fn main() -> Result<(), albireo_photonics::PhotonicsError> {
/// let mut mzm = Mzm::from_params(&OpticalParams::paper());
/// mzm.set_weight(0.25)?;
/// // A 1 mW input comes out at 0.25 mW, reduced by the 1.2 dB insertion loss.
/// let out = mzm.multiply(1e-3);
/// assert!((out - 0.25e-3 * 10f64.powf(-0.12)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzm {
    params: MzmParams,
    /// Differential phase shift between the arms, rad, in `[0, π]`.
    delta_phi: f64,
}

impl Mzm {
    /// Builds an MZM from explicit parameters, initially set to multiply by 1
    /// (`Δφ = 0`).
    pub fn new(params: MzmParams) -> Mzm {
        Mzm {
            params,
            delta_phi: 0.0,
        }
    }

    /// Builds the paper's MZM.
    pub fn from_params(params: &crate::OpticalParams) -> Mzm {
        Mzm::new(params.mzm)
    }

    /// Programs the modulator to multiply by `weight`.
    ///
    /// The weight is realized as the phase shift `Δφ = acos(2w − 1)` so that
    /// the ideal (lossless) transfer is exactly `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if `weight` is outside `[0, 1]`; weights must be
    /// normalized before being applied optically (paper §II-B1).
    pub fn set_weight(&mut self, weight: f64) -> Result<()> {
        let w = check_unit_interval("weight", weight)?;
        self.delta_phi = (2.0 * w - 1.0).acos();
        Ok(())
    }

    /// Sets the differential phase directly, clamped to `[0, π]`.
    pub fn set_phase(&mut self, delta_phi: f64) {
        self.delta_phi = delta_phi.clamp(0.0, std::f64::consts::PI);
    }

    /// The programmed differential phase shift, rad.
    pub fn phase(&self) -> f64 {
        self.delta_phi
    }

    /// The ideal multiplication factor implied by the current phase
    /// (Eq. 2 without insertion loss).
    pub fn weight(&self) -> f64 {
        (1.0 + self.delta_phi.cos()) / 2.0
    }

    /// The modulator's insertion loss.
    pub fn insertion_loss(&self) -> Db {
        Db::loss(self.params.loss_db)
    }

    /// Multiplies a single optical power (W) by the programmed weight,
    /// including insertion loss.
    pub fn multiply(&self, p_in: f64) -> f64 {
        p_in * self.weight() * self.insertion_loss().linear()
    }

    /// Multiplies every wavelength of a WDM input by the programmed weight
    /// (Fig. 2b): the same weight applies to all channels because the MZM is
    /// wavelength-independent.
    pub fn multiply_wdm(&self, p_in: &[f64]) -> Vec<f64> {
        let _prof = albireo_obs::profile::scope("photonics.mzm.multiply_wdm");
        let gain = self.weight() * self.insertion_loss().linear();
        p_in.iter().map(|p| p * gain).collect()
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.params.area_m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    fn mzm() -> Mzm {
        Mzm::from_params(&OpticalParams::paper())
    }

    #[test]
    fn phase_pi_multiplies_by_zero() {
        let mut m = mzm();
        m.set_weight(0.0).unwrap();
        assert!((m.phase() - std::f64::consts::PI).abs() < 1e-12);
        assert!(m.multiply(1e-3).abs() < 1e-18);
    }

    #[test]
    fn phase_zero_multiplies_by_one() {
        let mut m = mzm();
        m.set_weight(1.0).unwrap();
        assert!(m.phase().abs() < 1e-7);
        let out = m.multiply(1e-3);
        let expected = 1e-3 * Db::loss(1.2).linear();
        assert!((out - expected).abs() < 1e-12);
    }

    #[test]
    fn weight_round_trips_through_phase() {
        let mut m = mzm();
        for w in [0.0, 0.1, 0.33, 0.5, 0.75, 0.99, 1.0] {
            m.set_weight(w).unwrap();
            assert!((m.weight() - w).abs() < 1e-12, "weight {w}");
        }
    }

    #[test]
    fn rejects_out_of_range_weights() {
        let mut m = mzm();
        assert!(m.set_weight(-0.01).is_err());
        assert!(m.set_weight(1.01).is_err());
    }

    #[test]
    fn wdm_multiply_applies_same_weight_to_all_channels() {
        let mut m = mzm();
        m.set_weight(0.5).unwrap();
        let input = [1e-3, 2e-3, 0.5e-3];
        let out = m.multiply_wdm(&input);
        let gain = 0.5 * Db::loss(1.2).linear();
        for (o, i) in out.iter().zip(input.iter()) {
            assert!((o - i * gain).abs() < 1e-15);
        }
    }

    #[test]
    fn output_never_exceeds_input() {
        let mut m = mzm();
        for w in [0.0, 0.5, 1.0] {
            m.set_weight(w).unwrap();
            assert!(m.multiply(1e-3) <= 1e-3);
        }
    }

    #[test]
    fn set_phase_clamps() {
        let mut m = mzm();
        m.set_phase(10.0);
        assert!((m.phase() - std::f64::consts::PI).abs() < 1e-12);
        m.set_phase(-1.0);
        assert_eq!(m.phase(), 0.0);
    }

    #[test]
    fn new_mzm_passes_signal() {
        let m = mzm();
        assert!((m.weight() - 1.0).abs() < 1e-12);
    }
}

/// Phase-domain DAC driving an MZM: the weight DAC programs the *phase*
/// uniformly, but the weight transfer `w = (1 + cos Δφ)/2` is nonlinear, so
/// the representable weights are non-uniformly spaced — dense near 0 and 1,
/// sparse around 0.5. This quantifies how much weight precision the 8-bit
/// converters of Table I actually deliver at the MZM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MzmDac {
    bits: u32,
}

impl MzmDac {
    /// Builds a phase DAC with the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 24.
    pub fn new(bits: u32) -> MzmDac {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        MzmDac { bits }
    }

    /// The paper's 8-bit converter.
    pub fn paper() -> MzmDac {
        MzmDac::new(8)
    }

    /// DAC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct phase codes.
    pub fn codes(&self) -> u32 {
        1 << self.bits
    }

    /// The weight realized by a phase code (code 0 ⇒ Δφ = π ⇒ w = 0;
    /// max code ⇒ Δφ = 0 ⇒ w = 1).
    ///
    /// # Panics
    ///
    /// Panics if the code is out of range.
    pub fn weight_of_code(&self, code: u32) -> f64 {
        assert!(code < self.codes(), "code {code} out of range");
        let phi = std::f64::consts::PI * (1.0 - code as f64 / (self.codes() - 1) as f64);
        (1.0 + phi.cos()) / 2.0
    }

    /// The phase code whose weight is nearest to `weight` (clamped to
    /// `[0, 1]`).
    pub fn code_of_weight(&self, weight: f64) -> u32 {
        let w = weight.clamp(0.0, 1.0);
        // Invert w = (1+cos φ)/2 with φ mapped linearly to codes.
        let phi = (2.0 * w - 1.0).acos();
        let frac = 1.0 - phi / std::f64::consts::PI;
        (frac * (self.codes() - 1) as f64).round() as u32
    }

    /// Quantizes a weight to the nearest representable MZM transmission.
    pub fn quantize_weight(&self, weight: f64) -> f64 {
        self.weight_of_code(self.code_of_weight(weight))
    }

    /// Worst-case weight error across `[0, 1]`: half the largest gap
    /// between adjacent representable weights (at mid-scale, where
    /// `dw/dφ` peaks): `≈ π/(4·(2^bits − 1))`.
    pub fn max_weight_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for code in 0..self.codes() - 1 {
            let gap = self.weight_of_code(code + 1) - self.weight_of_code(code);
            worst = worst.max(gap / 2.0);
        }
        worst
    }

    /// Effective weight precision in bits: `log2(1 / (2·max_error))` —
    /// the uniform-quantizer resolution with the same worst-case error.
    pub fn effective_weight_bits(&self) -> f64 {
        (1.0 / (2.0 * self.max_weight_error())).log2()
    }
}

#[cfg(test)]
mod dac_tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let dac = MzmDac::paper();
        assert_eq!(dac.weight_of_code(0), 0.0);
        assert!((dac.weight_of_code(dac.codes() - 1) - 1.0).abs() < 1e-12);
        assert_eq!(dac.quantize_weight(0.0), 0.0);
        assert!((dac.quantize_weight(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn representable_weights_are_monotone() {
        let dac = MzmDac::new(6);
        let mut prev = -1.0;
        for code in 0..dac.codes() {
            let w = dac.weight_of_code(code);
            assert!(w > prev, "code {code}");
            prev = w;
        }
    }

    #[test]
    fn quantization_is_nearest_neighbour() {
        let dac = MzmDac::paper();
        for i in 0..=100 {
            let w = i as f64 / 100.0;
            let q = dac.quantize_weight(w);
            // Error bounded by the worst-case half-gap.
            assert!((q - w).abs() <= dac.max_weight_error() + 1e-12, "w={w}");
        }
    }

    #[test]
    fn eight_bit_phase_dac_costs_two_thirds_of_a_bit() {
        // Analytical: max half-gap ≈ π/(4·255) ≈ 3.08e-3 vs the uniform
        // 8-bit step of 1.96e-3 — ≈ 0.65 bit of weight precision lost to
        // the cosine transfer.
        let dac = MzmDac::paper();
        let analytic = std::f64::consts::PI / (4.0 * 255.0);
        assert!((dac.max_weight_error() - analytic).abs() / analytic < 0.02);
        let eff = dac.effective_weight_bits();
        assert!((7.2..7.5).contains(&eff), "effective bits = {eff}");
    }

    #[test]
    fn more_bits_less_error() {
        assert!(MzmDac::new(10).max_weight_error() < MzmDac::new(8).max_weight_error());
        assert!(MzmDac::new(8).effective_weight_bits() < MzmDac::new(10).effective_weight_bits());
    }

    #[test]
    fn weights_are_dense_near_endpoints() {
        // The cosine transfer packs codes tightly near w = 0 and w = 1
        // (where trained CNN weights live) and sparsely near 0.5.
        let dac = MzmDac::paper();
        let edge_gap = dac.weight_of_code(1) - dac.weight_of_code(0);
        let mid_code = dac.codes() / 2;
        let mid_gap = dac.weight_of_code(mid_code + 1) - dac.weight_of_code(mid_code);
        assert!(
            edge_gap < mid_gap / 10.0,
            "edge {edge_gap} vs mid {mid_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn code_range_checked() {
        let dac = MzmDac::new(4);
        let _ = dac.weight_of_code(16);
    }
}

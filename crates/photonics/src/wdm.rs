//! WDM channel planning for the Albireo distribution network.
//!
//! The paper's wavelength plan (§III-A/B): each PLCU needs
//! `Wy·(Nd + Wx − 1) = 21` wavelengths inside one ring FSR; each PLCU of a
//! PLCG "operates on a set of inputs that fall into a separate FSR"; and
//! the whole 63-channel plan must fit the 64-channel AWG whose own FSR is
//! 70 nm. This module builds and validates such plans.

use crate::mrr::Microring;
use crate::params::AwgParams;
use crate::{PhotonicsError, Result};

/// A single WDM channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Index of the PLCU (FSR window) the channel belongs to.
    pub plcu: usize,
    /// Slot within the PLCU's FSR window.
    pub slot: usize,
    /// Absolute wavelength, m.
    pub wavelength: f64,
}

/// A complete channel plan for one PLCG.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    channels: Vec<Channel>,
    base_wavelength: f64,
    fsr: f64,
    slots_per_fsr: usize,
}

impl ChannelPlan {
    /// Builds a plan: `plcus` consecutive FSR windows, each carrying
    /// `slots_per_fsr` uniformly spaced channels, starting at the ring's
    /// design wavelength.
    ///
    /// # Errors
    ///
    /// Returns an error if any count is zero.
    pub fn new(ring: &Microring, plcus: usize, slots_per_fsr: usize) -> Result<ChannelPlan> {
        if plcus == 0 || slots_per_fsr == 0 {
            return Err(PhotonicsError::Inconsistent(
                "channel plan needs at least one PLCU and one slot".into(),
            ));
        }
        let base = ring.resonant_wavelength();
        let fsr = ring.fsr();
        let spacing = fsr / slots_per_fsr as f64;
        let channels = (0..plcus)
            .flat_map(|p| {
                (0..slots_per_fsr).map(move |s| Channel {
                    plcu: p,
                    slot: s,
                    wavelength: base + p as f64 * fsr + s as f64 * spacing,
                })
            })
            .collect();
        Ok(ChannelPlan {
            channels,
            base_wavelength: base,
            fsr,
            slots_per_fsr,
        })
    }

    /// The paper's 3-PLCU × 21-slot plan on the Table II ring.
    pub fn albireo(ring: &Microring) -> ChannelPlan {
        ChannelPlan::new(ring, 3, 21).expect("paper plan is valid")
    }

    /// All channels in wavelength order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Total channel count.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Channel spacing inside one FSR window, m.
    pub fn spacing(&self) -> f64 {
        self.fsr / self.slots_per_fsr as f64
    }

    /// Total spectral span from first to last channel, m.
    pub fn span(&self) -> f64 {
        match (self.channels.first(), self.channels.last()) {
            (Some(first), Some(last)) => last.wavelength - first.wavelength,
            _ => 0.0,
        }
    }

    /// The channels a given PLCU's rings see.
    pub fn plcu_channels(&self, plcu: usize) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter(move |c| c.plcu == plcu)
    }

    /// Checks the plan fits a demultiplexer: enough AWG ports and a span
    /// inside the AWG's free spectral range.
    ///
    /// # Errors
    ///
    /// Returns an error describing the violated constraint.
    pub fn validate_against_awg(&self, awg: &AwgParams) -> Result<()> {
        if self.len() > awg.channels {
            return Err(PhotonicsError::Inconsistent(format!(
                "plan needs {} channels but the AWG has {}",
                self.len(),
                awg.channels
            )));
        }
        if self.span() >= awg.fsr {
            return Err(PhotonicsError::Inconsistent(format!(
                "plan spans {:.1} nm but the AWG FSR is {:.1} nm",
                self.span() * 1e9,
                awg.fsr * 1e9
            )));
        }
        Ok(())
    }

    /// Aliasing check: within one PLCU window, every pair of channels must
    /// be separated by at least `min_spacing` (m) to bound crosstalk.
    pub fn min_intra_window_spacing(&self) -> f64 {
        self.spacing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    fn plan() -> ChannelPlan {
        let ring = Microring::from_params(&OpticalParams::paper());
        ChannelPlan::albireo(&ring)
    }

    #[test]
    fn paper_plan_has_63_channels() {
        let p = plan();
        assert_eq!(p.len(), 63);
        assert_eq!(p.plcu_channels(0).count(), 21);
        assert_eq!(p.plcu_channels(2).count(), 21);
    }

    #[test]
    fn paper_plan_fits_the_64_channel_awg() {
        let p = plan();
        let awg = OpticalParams::paper().awg;
        p.validate_against_awg(&awg).expect("the paper plan fits");
        // Span = 3 FSRs minus one slot ≈ 48 nm < 70 nm AWG FSR.
        let span_nm = p.span() * 1e9;
        assert!((44.0..50.0).contains(&span_nm), "span = {span_nm} nm");
    }

    #[test]
    fn channels_are_strictly_increasing() {
        let p = plan();
        for w in p.channels().windows(2) {
            assert!(w[1].wavelength > w[0].wavelength);
        }
    }

    #[test]
    fn plcu_windows_do_not_overlap() {
        let p = plan();
        let max0 = p
            .plcu_channels(0)
            .map(|c| c.wavelength)
            .fold(f64::NEG_INFINITY, f64::max);
        let min1 = p
            .plcu_channels(1)
            .map(|c| c.wavelength)
            .fold(f64::INFINITY, f64::min);
        assert!(min1 > max0);
    }

    #[test]
    fn spacing_matches_fsr_division() {
        let ring = Microring::from_params(&OpticalParams::paper());
        let p = plan();
        assert!((p.spacing() - ring.fsr() / 21.0).abs() < 1e-18);
        assert!(p.min_intra_window_spacing() > 0.0);
    }

    #[test]
    fn too_many_channels_rejected_by_awg() {
        let ring = Microring::from_params(&OpticalParams::paper());
        let p = ChannelPlan::new(&ring, 4, 21).unwrap(); // 84 channels
        let awg = OpticalParams::paper().awg;
        assert!(p.validate_against_awg(&awg).is_err());
    }

    #[test]
    fn wide_span_rejected_by_awg() {
        let ring = Microring::from_params(&OpticalParams::paper());
        // 5 windows × 13 = 65 channels... still too many; use 5 × 12 = 60
        // channels spanning ~5 FSRs ≈ 81 nm > 70 nm.
        let p = ChannelPlan::new(&ring, 5, 12).unwrap();
        let awg = OpticalParams::paper().awg;
        assert!(p.validate_against_awg(&awg).is_err());
    }

    #[test]
    fn empty_plan_rejected() {
        let ring = Microring::from_params(&OpticalParams::paper());
        assert!(ChannelPlan::new(&ring, 0, 21).is_err());
        assert!(ChannelPlan::new(&ring, 3, 0).is_err());
    }

    #[test]
    fn channels_sit_near_c_band() {
        let p = plan();
        for c in p.channels() {
            assert!((1.5e-6..1.65e-6).contains(&c.wavelength));
        }
    }
}

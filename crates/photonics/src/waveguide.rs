//! Silicon strip waveguide propagation model.

use crate::params::WaveguideParams;
use crate::units::Db;
use crate::{check_positive, Result};

/// A silicon waveguide segment with a fixed geometry and loss profile.
///
/// ```
/// use albireo_photonics::waveguide::Waveguide;
/// use albireo_photonics::params::OpticalParams;
///
/// let wg = Waveguide::from_params(&OpticalParams::paper());
/// // 1 cm of straight waveguide loses 1.5 dB.
/// let loss = wg.straight_loss(0.01);
/// assert!((loss.loss_db() - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waveguide {
    params: WaveguideParams,
    wavelength: f64,
}

impl Waveguide {
    /// Builds a waveguide from explicit parameters at a design wavelength.
    ///
    /// # Errors
    ///
    /// Returns an error if the wavelength or indices are non-positive.
    pub fn new(params: WaveguideParams, wavelength: f64) -> Result<Waveguide> {
        check_positive("wavelength", wavelength)?;
        check_positive("n_eff", params.n_eff)?;
        check_positive("n_group", params.n_group)?;
        Ok(Waveguide { params, wavelength })
    }

    /// Builds the paper's waveguide from a full parameter set.
    pub fn from_params(params: &crate::OpticalParams) -> Waveguide {
        Waveguide {
            params: params.waveguide,
            wavelength: params.wavelength,
        }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &WaveguideParams {
        &self.params
    }

    /// Design wavelength, m.
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Propagation constant β = 2π·n_eff/λ, rad/m.
    pub fn beta(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.params.n_eff / self.wavelength
    }

    /// Phase accumulated over `length` meters, rad.
    pub fn phase(&self, length: f64) -> f64 {
        self.beta() * length
    }

    /// Group velocity, m/s.
    pub fn group_velocity(&self) -> f64 {
        crate::constants::SPEED_OF_LIGHT / self.params.n_group
    }

    /// Propagation delay over `length` meters, s.
    pub fn delay(&self, length: f64) -> f64 {
        length / self.group_velocity()
    }

    /// Loss of a straight segment of `length` meters.
    pub fn straight_loss(&self, length: f64) -> Db {
        Db::loss(self.params.straight_loss_db_per_cm * length * 100.0)
    }

    /// Loss of a bent segment of `length` meters.
    pub fn bent_loss(&self, length: f64) -> Db {
        Db::loss(self.params.bent_loss_db_per_cm * length * 100.0)
    }

    /// Power loss coefficient α for bent waveguide, 1/m, such that the
    /// power transmission over length L is `exp(-α·L)`.
    pub fn bent_alpha_per_m(&self) -> f64 {
        // dB/cm → 1/m:  T = 10^(-dB/10) = e^(-αL)  ⇒  α = ln(10)/10 · dB/m
        self.params.bent_loss_db_per_cm * 100.0 * std::f64::consts::LN_10 / 10.0
    }

    /// Single-pass amplitude transmission `a` around a ring of circumference
    /// `length` (so that the power transmission is `a²`).
    pub fn ring_amplitude_transmission(&self, length: f64) -> f64 {
        (-self.bent_alpha_per_m() * length / 2.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    fn wg() -> Waveguide {
        Waveguide::from_params(&OpticalParams::paper())
    }

    #[test]
    fn beta_matches_definition() {
        let w = wg();
        let expected = 2.0 * std::f64::consts::PI * 2.33 / 1550e-9;
        assert!((w.beta() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn group_velocity_is_c_over_ng() {
        let w = wg();
        let v = w.group_velocity();
        assert!((v - 299_792_458.0 / 4.68).abs() < 1.0);
    }

    #[test]
    fn delay_scales_linearly() {
        let w = wg();
        let d1 = w.delay(1e-3);
        let d2 = w.delay(2e-3);
        assert!((d2 - 2.0 * d1).abs() < 1e-18);
    }

    #[test]
    fn bent_loss_exceeds_straight_loss() {
        let w = wg();
        let l = 0.005;
        assert!(w.bent_loss(l).loss_db() > w.straight_loss(l).loss_db());
    }

    #[test]
    fn alpha_consistent_with_db_loss() {
        let w = wg();
        let length = 0.01; // 1 cm
        let via_alpha = (-w.bent_alpha_per_m() * length).exp();
        let via_db = w.bent_loss(length).linear();
        assert!((via_alpha - via_db).abs() < 1e-12);
    }

    #[test]
    fn ring_amplitude_near_unity_for_small_ring() {
        let w = wg();
        let circumference = 2.0 * std::f64::consts::PI * 5e-6;
        let a = w.ring_amplitude_transmission(circumference);
        assert!(a > 0.99 && a < 1.0, "a = {a}");
    }

    #[test]
    fn invalid_wavelength_rejected() {
        let p = OpticalParams::paper();
        assert!(Waveguide::new(p.waveguide, 0.0).is_err());
        assert!(Waveguide::new(p.waveguide, -1e-6).is_err());
    }
}

//! Unit helpers: decibel arithmetic and typed wrappers.
//!
//! Optical link budgets are naturally expressed in decibels while the signal
//! models work on linear power ratios; [`Db`] keeps the two domains from
//! being mixed up accidentally.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A power ratio expressed in decibels.
///
/// Positive values are gain, negative values are loss. Losses in the paper's
/// Table II are quoted as positive "loss" numbers; use [`Db::loss`] to build
/// those so the sign convention stays consistent.
///
/// ```
/// use albireo_photonics::units::Db;
/// let loss = Db::loss(3.0);
/// assert!((loss.linear() - 0.5012).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

impl Db {
    /// Zero decibels (unity gain).
    pub const ZERO: Db = Db(0.0);

    /// Creates a value directly in dB (positive = gain).
    pub fn new(db: f64) -> Db {
        Db(db)
    }

    /// Creates a *loss* of `db` decibels (stored as a negative gain).
    ///
    /// # Panics
    ///
    /// Panics if `db` is negative; a negative loss should be built with
    /// [`Db::new`] as an explicit gain instead.
    pub fn loss(db: f64) -> Db {
        assert!(db >= 0.0, "loss must be non-negative, got {db}");
        Db(-db)
    }

    /// Creates a `Db` from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    pub fn from_linear(ratio: f64) -> Db {
        assert!(ratio > 0.0, "linear ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// The raw decibel value (positive = gain, negative = loss).
    pub fn db(self) -> f64 {
        self.0
    }

    /// The magnitude of the loss in dB (0 for gains).
    pub fn loss_db(self) -> f64 {
        (-self.0).max(0.0)
    }

    /// Converts to a linear power ratio.
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Applies this gain/loss to a power in watts.
    pub fn apply(self, power_w: f64) -> f64 {
        power_w * self.linear()
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        iter.fold(Db::ZERO, |acc, x| acc + x)
    }
}

/// Converts dBm to watts.
///
/// ```
/// use albireo_photonics::units::dbm_to_watts;
/// assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-12);
/// assert!((dbm_to_watts(10.0) - 1e-2).abs() < 1e-12);
/// ```
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

/// Converts watts to dBm.
///
/// # Panics
///
/// Panics if `watts` is not strictly positive.
pub fn watts_to_dbm(watts: f64) -> f64 {
    assert!(watts > 0.0, "power must be positive, got {watts}");
    10.0 * (watts / 1e-3).log10()
}

/// Converts a RIN power spectral density in dBc/Hz to its linear value
/// (1/Hz).
pub fn rin_dbc_to_linear(rin_dbc_per_hz: f64) -> f64 {
    10f64.powf(rin_dbc_per_hz / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_db_is_half_power() {
        assert!((Db::loss(3.0103).linear() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn db_add_is_linear_multiply() {
        let a = Db::loss(1.2);
        let b = Db::loss(0.3);
        let combined = (a + b).linear();
        assert!((combined - a.linear() * b.linear()).abs() < 1e-12);
    }

    #[test]
    fn from_linear_round_trip() {
        for ratio in [0.001, 0.5, 1.0, 2.0, 1000.0] {
            let back = Db::from_linear(ratio).linear();
            assert!((back - ratio).abs() / ratio < 1e-12);
        }
    }

    #[test]
    fn loss_db_reports_magnitude() {
        assert_eq!(Db::loss(2.5).loss_db(), 2.5);
        assert_eq!(Db::new(4.0).loss_db(), 0.0);
    }

    #[test]
    fn apply_scales_power() {
        let p = Db::loss(10.0).apply(1e-3);
        assert!((p - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn dbm_round_trip() {
        for dbm in [-30.0, -3.0, 0.0, 3.0, 20.0] {
            let back = watts_to_dbm(dbm_to_watts(dbm));
            assert!((back - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn rin_conversion() {
        let lin = rin_dbc_to_linear(-140.0);
        assert!((lin - 1e-14).abs() < 1e-20);
    }

    #[test]
    fn sum_of_losses() {
        let total: Db = [Db::loss(1.0), Db::loss(2.0), Db::loss(3.0)]
            .into_iter()
            .sum();
        assert!((total.db() + 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss must be non-negative")]
    fn negative_loss_panics() {
        let _ = Db::loss(-1.0);
    }

    #[test]
    fn display_formats_db() {
        assert_eq!(Db::loss(1.5).to_string(), "-1.50 dB");
    }
}

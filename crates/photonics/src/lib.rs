//! Silicon-photonic device models for the Albireo CNN accelerator.
//!
//! This crate is the *physics substrate* of the Albireo reproduction. It
//! provides analytical models for every optical device the paper's
//! architecture is built from, replacing the Lumerical INTERCONNECT
//! simulations used by the authors:
//!
//! * [`mzm`] — Mach-Zehnder modulators used as analog multipliers (Eq. 2).
//! * [`mrr`] — double-bus microring resonators used as wavelength-selective
//!   switches and accumulators, including free-spectral range (Eq. 7),
//!   finesse (Eq. 8), FWHM (Eq. 9), drop/through-port spectra (Fig. 4a) and
//!   photon-lifetime-limited temporal response (Fig. 4b).
//! * [`coupler`] — passive star couplers and arrayed waveguide gratings.
//! * [`photodiode`] — PIN photodiodes and the balanced-detector subtraction
//!   producing `Iout = R0·ΣP⁺ − R1·ΣP⁻` (Eq. 4).
//! * [`noise`] — relative intensity noise, shot noise (Eq. 5) and
//!   Johnson–Nyquist thermal noise (Eq. 6).
//! * [`precision`] — the separable-level analysis that converts noise and
//!   inter-channel crosstalk into "bits of precision" (Figs. 3 and 4c).
//! * [`link`] — end-to-end optical link budgets through the Albireo chip.
//!
//! # Example
//!
//! Compute the free spectral range of the paper's 5 µm-radius ring and check
//! it against the 16.1 nm reported in Table II:
//!
//! ```
//! use albireo_photonics::mrr::Microring;
//! use albireo_photonics::params::OpticalParams;
//!
//! let ring = Microring::from_params(&OpticalParams::paper());
//! let fsr_nm = ring.fsr() * 1e9;
//! assert!((fsr_nm - 16.1).abs() < 0.5, "fsr was {fsr_nm} nm");
//! ```

pub mod constants;
pub mod coupler;
pub mod laser;
pub mod link;
pub mod mrr;
pub mod mzm;
pub mod noise;
pub mod params;
pub mod photodiode;
pub mod precision;
pub mod thermal;
pub mod units;
pub mod waveguide;
pub mod wdm;
pub mod ybranch;

pub use params::OpticalParams;
pub use units::Db;

use std::error::Error;
use std::fmt;

/// Errors produced by photonic device model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// A parameter that must lie in `[0, 1]` (coupling coefficient, weight,
    /// transmission) was outside that interval.
    OutOfUnitInterval {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be strictly positive was zero or negative.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A requested configuration is physically inconsistent.
    Inconsistent(String),
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhotonicsError::OutOfUnitInterval { name, value } => {
                write!(f, "parameter `{name}` must be in [0, 1], got {value}")
            }
            PhotonicsError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            PhotonicsError::Inconsistent(msg) => write!(f, "inconsistent configuration: {msg}"),
        }
    }
}

impl Error for PhotonicsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PhotonicsError>;

pub(crate) fn check_unit_interval(name: &'static str, value: f64) -> Result<f64> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(PhotonicsError::OutOfUnitInterval { name, value })
    }
}

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(PhotonicsError::NonPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = PhotonicsError::OutOfUnitInterval {
            name: "k2",
            value: 1.5,
        };
        let msg = err.to_string();
        assert!(msg.contains("k2"));
        assert!(msg.contains("1.5"));
    }

    #[test]
    fn check_unit_interval_accepts_bounds() {
        assert_eq!(check_unit_interval("x", 0.0), Ok(0.0));
        assert_eq!(check_unit_interval("x", 1.0), Ok(1.0));
        assert!(check_unit_interval("x", -0.1).is_err());
        assert!(check_unit_interval("x", 1.1).is_err());
    }

    #[test]
    fn check_positive_rejects_zero_and_nan() {
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", f64::NAN).is_err());
        assert!(check_positive("x", f64::INFINITY).is_err());
        assert_eq!(check_positive("x", 2.0), Ok(2.0));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhotonicsError>();
    }
}

//! Thermal sensitivity of microring resonators.
//!
//! Silicon's thermo-optic coefficient makes MRR resonances drift with
//! temperature, which is the main operational hazard for the dense WDM
//! grids Albireo relies on: a drifted ring both *loses* its own channel and
//! *leaks* its neighbours'. The paper's device powers implicitly include
//! ring tuning; this module makes the trade-off explicit so the precision
//! analysis can be extended with thermal drift (an ablation DESIGN.md calls
//! out), using standard silicon-photonics values:
//!
//! * thermo-optic coefficient `dn/dT ≈ 1.86×10⁻⁴ /K`,
//! * resulting resonance drift `dλ/dT = λ·(dn/dT)/n_g ≈ 62 pm/K`,
//! * micro-heater tuning efficiency of a few mW per nm of shift.

use crate::mrr::Microring;
use crate::{check_positive, Result};

/// Silicon thermo-optic coefficient, 1/K.
pub const SILICON_DN_DT: f64 = 1.86e-4;

/// Thermal model for a ring resonator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Thermo-optic coefficient dn/dT, 1/K.
    pub dn_dt: f64,
    /// Heater tuning efficiency, W per meter of resonance shift
    /// (e.g. 2.4 mW/nm ⇒ 2.4e6 W/m).
    pub heater_w_per_m: f64,
    /// Design wavelength, m.
    pub wavelength: f64,
    /// Group index of the ring waveguide.
    pub n_group: f64,
}

impl ThermalModel {
    /// A typical silicon micro-heater model at the paper's design point.
    pub fn silicon() -> ThermalModel {
        ThermalModel {
            dn_dt: SILICON_DN_DT,
            heater_w_per_m: 2.4e-3 / 1e-9, // 2.4 mW per nm
            wavelength: 1550e-9,
            n_group: 4.68,
        }
    }

    /// Builds a model with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is non-positive.
    pub fn new(
        dn_dt: f64,
        heater_w_per_m: f64,
        wavelength: f64,
        n_group: f64,
    ) -> Result<ThermalModel> {
        check_positive("dn_dt", dn_dt)?;
        check_positive("heater_w_per_m", heater_w_per_m)?;
        check_positive("wavelength", wavelength)?;
        check_positive("n_group", n_group)?;
        Ok(ThermalModel {
            dn_dt,
            heater_w_per_m,
            wavelength,
            n_group,
        })
    }

    /// Resonance drift per kelvin, m/K (`dλ/dT = λ·(dn/dT)/n_g`).
    pub fn drift_per_kelvin(&self) -> f64 {
        self.wavelength * self.dn_dt / self.n_group
    }

    /// Resonance shift for a temperature excursion, m.
    pub fn drift(&self, delta_t_kelvin: f64) -> f64 {
        self.drift_per_kelvin() * delta_t_kelvin
    }

    /// Drop-port transmission of a ring whose resonance has drifted by
    /// `delta_t_kelvin` while the signal stays on the nominal grid.
    pub fn drifted_drop(&self, ring: &Microring, delta_t_kelvin: f64) -> f64 {
        ring.drop_transmission(self.drift(delta_t_kelvin))
    }

    /// Signal power penalty (linear, ≤ 1) caused by a temperature
    /// excursion: the drifted drop transmission relative to the on-grid
    /// peak.
    pub fn drift_penalty(&self, ring: &Microring, delta_t_kelvin: f64) -> f64 {
        self.drifted_drop(ring, delta_t_kelvin) / ring.drop_peak()
    }

    /// Temperature excursion (K) at which the ring's drop transmission
    /// falls to half its peak: `FWHM/2 / (dλ/dT)`.
    pub fn half_power_excursion(&self, ring: &Microring) -> f64 {
        ring.fwhm() / 2.0 / self.drift_per_kelvin()
    }

    /// Heater power to hold one ring on grid against a worst-case
    /// excursion of `delta_t_kelvin`, W.
    pub fn tuning_power(&self, delta_t_kelvin: f64) -> f64 {
        self.drift(delta_t_kelvin.abs()) * self.heater_w_per_m
    }

    /// Total chip tuning power for `ring_count` rings held against a
    /// worst-case excursion, W.
    pub fn chip_tuning_power(&self, ring_count: usize, delta_t_kelvin: f64) -> f64 {
        self.tuning_power(delta_t_kelvin) * ring_count as f64
    }
}

impl Default for ThermalModel {
    fn default() -> ThermalModel {
        ThermalModel::silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    fn ring() -> Microring {
        Microring::from_params(&OpticalParams::paper())
    }

    #[test]
    fn drift_is_about_60_pm_per_kelvin() {
        let t = ThermalModel::silicon();
        let pm_per_k = t.drift_per_kelvin() * 1e12;
        assert!((55.0..70.0).contains(&pm_per_k), "{pm_per_k} pm/K");
    }

    #[test]
    fn drift_penalty_decreases_with_excursion() {
        let t = ThermalModel::silicon();
        let r = ring();
        let p0 = t.drift_penalty(&r, 0.0);
        let p1 = t.drift_penalty(&r, 1.0);
        let p3 = t.drift_penalty(&r, 3.0);
        assert!((p0 - 1.0).abs() < 1e-9);
        assert!(p1 < p0 && p3 < p1);
    }

    #[test]
    fn half_power_point_is_single_digit_kelvin() {
        // k² = 0.03 ring: FWHM ≈ 0.17 nm ⇒ half-power at ~1.3 K — the
        // classic reason dense WDM rings need active tuning.
        let t = ThermalModel::silicon();
        let k = t.half_power_excursion(&ring());
        assert!((0.5..4.0).contains(&k), "{k} K");
    }

    #[test]
    fn penalty_at_half_power_excursion_is_half() {
        let t = ThermalModel::silicon();
        let r = ring();
        let dt = t.half_power_excursion(&r);
        let p = t.drift_penalty(&r, dt);
        assert!((p - 0.5).abs() < 0.05, "penalty = {p}");
    }

    #[test]
    fn tuning_power_is_linear_in_excursion() {
        let t = ThermalModel::silicon();
        let p1 = t.tuning_power(1.0);
        let p5 = t.tuning_power(5.0);
        assert!((p5 - 5.0 * p1).abs() < 1e-12);
        // Holding 1 K costs ~0.15 mW per ring with a 2.4 mW/nm heater.
        assert!((0.05e-3..0.5e-3).contains(&p1), "{p1} W");
    }

    #[test]
    fn chip_tuning_budget_reasonable() {
        // 2430 switching rings held against ±5 K: a watt-scale budget,
        // comparable to Table III's conservative MRR row.
        let t = ThermalModel::silicon();
        let total = t.chip_tuning_power(2430, 5.0);
        assert!((0.5..5.0).contains(&total), "{total} W");
    }

    #[test]
    fn negative_excursion_costs_same_power() {
        let t = ThermalModel::silicon();
        assert_eq!(t.tuning_power(-2.0), t.tuning_power(2.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ThermalModel::new(0.0, 1.0, 1550e-9, 4.68).is_err());
        assert!(ThermalModel::new(1e-4, -1.0, 1550e-9, 4.68).is_err());
    }
}

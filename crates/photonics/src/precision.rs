//! Precision analysis: separable output levels under noise and crosstalk
//! (paper §II-C, Figures 3 and 4c).
//!
//! "Bits of precision" for analog photonic computation is the `log2` of the
//! number of separable optical power amplitudes at the output.
//!
//! # Noise-limited precision (Fig. 3)
//!
//! The receiver noise is signal-dependent: thermal noise is constant, shot
//! noise grows with `√I`, and RIN grows with `I`. Levels can therefore be
//! packed more densely at low amplitudes; the number of separable levels for
//! full-scale current `I_fs` is
//!
//! ```text
//! levels = 1 + (1/z) ∫₀^{I_fs} dI / σ(I)
//! ```
//!
//! where `z` is the separation (in standard deviations) required between
//! adjacent level means. The default `z = 4` (±2σ per decision boundary)
//! reproduces the paper's anchor of **10 bits at 2 mW laser power with
//! 20 wavelengths**, and simultaneously reproduces the crosstalk anchor
//! below, so one calibration constant serves both analyses.
//!
//! # Crosstalk-limited precision (Fig. 4c)
//!
//! For `N` wavelengths uniformly spaced inside one FSR, each accumulating
//! MRR picks up a fraction `T_drop(Δφ_j)` of every foreign channel. With
//! independent uniform data on the foreign channels the interference has
//! standard deviation `σ_xt = sqrt(Σ_j T_j²/12)` of full scale, giving
//! `levels = 1 + 1/(z·σ_xt)`. With the paper's `k² = 0.03` ring this yields
//! **6 bits at 20 wavelengths** (7 bits with the negative rail), matching
//! §II-C2.

use crate::mrr::Microring;
use crate::noise::NoiseParams;
use crate::{check_positive, Result};

/// Number of trapezoid panels for the level integral.
const INTEGRATION_STEPS: usize = 4096;

/// The precision model combining receiver noise and MRR crosstalk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionModel {
    noise: NoiseParams,
    /// Photodiode responsivity, A/W.
    responsivity: f64,
    /// Required separation between adjacent level means, in σ.
    separation_sigmas: f64,
}

impl PrecisionModel {
    /// Builds the model with the paper's noise parameters, the Table II
    /// responsivity (1.1 A/W) and the calibrated separation `z = 4`.
    pub fn paper() -> PrecisionModel {
        PrecisionModel {
            noise: NoiseParams::paper(),
            responsivity: 1.1,
            separation_sigmas: 4.0,
        }
    }

    /// Builds a model with explicit components.
    ///
    /// # Errors
    ///
    /// Returns an error if `responsivity` or `separation_sigmas` is not
    /// strictly positive.
    pub fn new(
        noise: NoiseParams,
        responsivity: f64,
        separation_sigmas: f64,
    ) -> Result<PrecisionModel> {
        check_positive("responsivity", responsivity)?;
        check_positive("separation_sigmas", separation_sigmas)?;
        Ok(PrecisionModel {
            noise,
            responsivity,
            separation_sigmas,
        })
    }

    /// The noise parameters in use.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// Replaces the noise parameters (e.g. for an 8 GHz bandwidth study).
    pub fn with_noise(self, noise: NoiseParams) -> PrecisionModel {
        PrecisionModel { noise, ..self }
    }

    /// Number of noise-limited separable levels for `n_wavelengths`
    /// channels each delivering `per_channel_power_w` to the photodiode.
    ///
    /// # Panics
    ///
    /// Panics if `n_wavelengths` is zero or the power is negative.
    pub fn noise_limited_levels(&self, n_wavelengths: usize, per_channel_power_w: f64) -> f64 {
        assert!(n_wavelengths > 0, "need at least one wavelength");
        assert!(per_channel_power_w >= 0.0, "power must be non-negative");
        let i_fs = self.responsivity * n_wavelengths as f64 * per_channel_power_w;
        if i_fs == 0.0 {
            return 1.0;
        }
        // Trapezoid rule over f(I) = 1/σ(I); σ(0) = σ_thermal > 0 so the
        // integrand is bounded.
        let h = i_fs / INTEGRATION_STEPS as f64;
        let f = |i: f64| 1.0 / self.noise.total_sigma(i, n_wavelengths);
        let mut sum = 0.5 * (f(0.0) + f(i_fs));
        for k in 1..INTEGRATION_STEPS {
            sum += f(k as f64 * h);
        }
        1.0 + sum * h / self.separation_sigmas
    }

    /// Noise-limited precision in bits (`log2` of the level count).
    pub fn noise_limited_bits(&self, n_wavelengths: usize, per_channel_power_w: f64) -> f64 {
        self.noise_limited_levels(n_wavelengths, per_channel_power_w)
            .log2()
    }

    /// Number of crosstalk-limited separable levels for an MRR accumulator
    /// with `n_wavelengths` channels in one FSR.
    pub fn crosstalk_limited_levels(&self, ring: &Microring, n_wavelengths: usize) -> f64 {
        let sigma = ring.rms_crosstalk(n_wavelengths);
        if sigma == 0.0 {
            return f64::INFINITY;
        }
        1.0 + 1.0 / (self.separation_sigmas * sigma)
    }

    /// Crosstalk-limited precision in bits.
    pub fn crosstalk_limited_bits(&self, ring: &Microring, n_wavelengths: usize) -> f64 {
        self.crosstalk_limited_levels(ring, n_wavelengths).log2()
    }

    /// Crosstalk-limited levels when the interfering data has the RMS of
    /// trained (bell-shaped) kernel weights rather than uniform data —
    /// the paper's §II-C2 observation that an MRR accumulator "could
    /// possibly support more optical power levels" for real CNN weights.
    ///
    /// `weight_rms` is the RMS of the normalized weights (uniform `[0,1]`
    /// data has RMS deviation `sqrt(1/12) ≈ 0.289` around its mean; a
    /// Gaussian weight distribution with σ = 0.15 of full scale has
    /// RMS 0.15).
    pub fn crosstalk_limited_levels_with_weight_rms(
        &self,
        ring: &Microring,
        n_wavelengths: usize,
        weight_rms: f64,
    ) -> f64 {
        let sigma = ring.rms_crosstalk_with_variance(n_wavelengths, weight_rms * weight_rms);
        if sigma == 0.0 {
            return f64::INFINITY;
        }
        1.0 + 1.0 / (self.separation_sigmas * sigma)
    }

    /// Crosstalk-limited levels when every accumulator ring has drifted
    /// `drift_m` meters off its grid slot (e.g. thermally, via
    /// [`crate::thermal::ThermalModel::drift`]).
    pub fn crosstalk_limited_levels_with_drift(
        &self,
        ring: &Microring,
        n_wavelengths: usize,
        drift_m: f64,
    ) -> f64 {
        let sigma = ring.rms_crosstalk_with_drift(n_wavelengths, drift_m);
        if sigma == 0.0 {
            return f64::INFINITY;
        }
        1.0 + 1.0 / (self.separation_sigmas * sigma)
    }

    /// Combined levels when both noise and crosstalk act: the effective
    /// relative uncertainties add in quadrature, so
    /// `1/(L−1)² = 1/(Ln−1)² + 1/(Lx−1)²`.
    pub fn combined_levels(
        &self,
        ring: &Microring,
        n_wavelengths: usize,
        per_channel_power_w: f64,
    ) -> f64 {
        let ln = self.noise_limited_levels(n_wavelengths, per_channel_power_w) - 1.0;
        let lx = self.crosstalk_limited_levels(ring, n_wavelengths) - 1.0;
        if !lx.is_finite() {
            return ln + 1.0;
        }
        if ln <= 0.0 || lx <= 0.0 {
            return 1.0;
        }
        1.0 + 1.0 / (1.0 / (ln * ln) + 1.0 / (lx * lx)).sqrt()
    }

    /// Combined precision in bits.
    pub fn combined_bits(
        &self,
        ring: &Microring,
        n_wavelengths: usize,
        per_channel_power_w: f64,
    ) -> f64 {
        self.combined_levels(ring, n_wavelengths, per_channel_power_w)
            .log2()
    }

    /// Applies the negative accumulation rail (paper §II-C2): doubling the
    /// representable values adds about one bit without adding wavelengths.
    pub fn with_negative_rail(levels: f64) -> f64 {
        2.0 * levels - 1.0
    }

    /// Whole bits of precision *fully supported* (no decision-boundary
    /// overlap): `floor(log2(levels))`, as in the paper's 8.81-bit example
    /// supporting 8 bits.
    pub fn supported_bits(levels: f64) -> u32 {
        if levels < 2.0 {
            0
        } else {
            levels.log2().floor() as u32
        }
    }
}

impl Default for PrecisionModel {
    fn default() -> PrecisionModel {
        PrecisionModel::paper()
    }
}

/// One row of the Fig. 3 sweep: noise-limited bits vs. wavelength count for
/// a per-channel laser power.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePrecisionSweep {
    /// Per-channel laser power, W.
    pub laser_power_w: f64,
    /// `(wavelength count, bits)` series.
    pub series: Vec<(usize, f64)>,
}

/// Regenerates the Fig. 3 data: precision vs. number of wavelengths for each
/// laser power, noise only (crosstalk excluded).
pub fn fig3_noise_sweep(
    model: &PrecisionModel,
    laser_powers_w: &[f64],
    max_wavelengths: usize,
) -> Vec<NoisePrecisionSweep> {
    laser_powers_w
        .iter()
        .map(|&p| NoisePrecisionSweep {
            laser_power_w: p,
            series: (1..=max_wavelengths)
                .map(|n| (n, model.noise_limited_bits(n, p)))
                .collect(),
        })
        .collect()
}

/// One row of the Fig. 4c sweep: crosstalk-limited bits vs. wavelength count
/// for a ring coupling coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkPrecisionSweep {
    /// Power cross-coupling coefficient k².
    pub k2: f64,
    /// `(wavelength count, bits)` series.
    pub series: Vec<(usize, f64)>,
}

/// Regenerates the Fig. 4c data: precision vs. number of wavelengths for an
/// MRR accumulator at each `k²`.
pub fn fig4c_crosstalk_sweep(
    model: &PrecisionModel,
    params: &crate::OpticalParams,
    k2_values: &[f64],
    max_wavelengths: usize,
) -> Vec<CrosstalkPrecisionSweep> {
    k2_values
        .iter()
        .map(|&k2| {
            let ring = Microring::with_k2(params, k2);
            CrosstalkPrecisionSweep {
                k2,
                series: (2..=max_wavelengths)
                    .map(|n| (n, model.crosstalk_limited_bits(&ring, n)))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    #[test]
    fn paper_anchor_10_bits_at_2mw_20_wavelengths() {
        // §II-C1: "10 bits of precision is achievable with a 2 mW optical
        // laser source with as few as 20 wavelengths".
        let m = PrecisionModel::paper();
        let bits = m.noise_limited_bits(20, 2e-3);
        assert!((9.0..11.0).contains(&bits), "bits = {bits}");
    }

    #[test]
    fn paper_anchor_6_bits_crosstalk_at_k2_003_20_wavelengths() {
        // §II-C2: "For around 20 wavelengths, k² = 0.03 can support 6 bits
        // of precision, but this is only for positive accumulation."
        let m = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let bits = m.crosstalk_limited_bits(&ring, 20);
        assert!((5.5..6.6).contains(&bits), "bits = {bits}");
    }

    #[test]
    fn negative_rail_adds_about_one_bit() {
        let m = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let levels = m.crosstalk_limited_levels(&ring, 20);
        let with_neg = PrecisionModel::with_negative_rail(levels);
        let gain = with_neg.log2() - levels.log2();
        assert!((0.8..=1.0).contains(&gain), "gain = {gain}");
        // §II-C2: "7 bits is the worst case precision for k² = 0.03 with
        // 20 wavelengths".
        assert!((6.5..7.6).contains(&with_neg.log2()), "{}", with_neg.log2());
    }

    #[test]
    fn precision_increases_with_laser_power_with_diminishing_returns() {
        let m = PrecisionModel::paper();
        let b05 = m.noise_limited_bits(20, 0.5e-3);
        let b1 = m.noise_limited_bits(20, 1e-3);
        let b2 = m.noise_limited_bits(20, 2e-3);
        let b4 = m.noise_limited_bits(20, 4e-3);
        assert!(b05 < b1 && b1 < b2 && b2 < b4);
        // Diminishing returns: each doubling gains less.
        assert!((b2 - b1) < (b1 - b05) + 1e-9);
        assert!((b4 - b2) < (b2 - b1) + 1e-9);
    }

    #[test]
    fn crosstalk_precision_decreases_with_wavelengths() {
        let m = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let b8 = m.crosstalk_limited_bits(&ring, 8);
        let b20 = m.crosstalk_limited_bits(&ring, 20);
        let b40 = m.crosstalk_limited_bits(&ring, 40);
        assert!(b8 > b20 && b20 > b40);
    }

    #[test]
    fn lower_k2_supports_more_bits() {
        let m = PrecisionModel::paper();
        let p = OpticalParams::paper();
        let r02 = Microring::with_k2(&p, 0.02);
        let r05 = Microring::with_k2(&p, 0.05);
        assert!(m.crosstalk_limited_bits(&r02, 20) > m.crosstalk_limited_bits(&r05, 20));
    }

    #[test]
    fn k2_002_and_003_support_8_bits_at_few_wavelengths() {
        // §II-C2: "both k² = 0.02 and k² = 0.03 can support 8 bits of
        // precision for a small number of wavelengths".
        let m = PrecisionModel::paper();
        let p = OpticalParams::paper();
        for k2 in [0.02, 0.03] {
            let ring = Microring::with_k2(&p, k2);
            let bits = m.crosstalk_limited_bits(&ring, 6);
            assert!(bits >= 8.0, "k²={k2}: bits = {bits}");
        }
    }

    #[test]
    fn combined_is_below_both_limits() {
        let m = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let combined = m.combined_levels(&ring, 20, 2e-3);
        assert!(combined <= m.noise_limited_levels(20, 2e-3));
        assert!(combined <= m.crosstalk_limited_levels(&ring, 20));
        assert!(combined > 1.0);
    }

    #[test]
    fn supported_bits_floor_semantics() {
        // log2(450) ≈ 8.81 ⇒ the paper says 8 bits fully supported.
        assert_eq!(PrecisionModel::supported_bits(450.0), 8);
        assert_eq!(PrecisionModel::supported_bits(1.0), 0);
        assert_eq!(PrecisionModel::supported_bits(2.0), 1);
    }

    #[test]
    fn zero_power_gives_single_level() {
        let m = PrecisionModel::paper();
        assert_eq!(m.noise_limited_levels(20, 0.0), 1.0);
    }

    #[test]
    fn fig3_sweep_shape() {
        let m = PrecisionModel::paper();
        let sweeps = fig3_noise_sweep(&m, &[0.5e-3, 2e-3], 32);
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].series.len(), 32);
        // Higher power series dominates everywhere.
        for (lo, hi) in sweeps[0].series.iter().zip(sweeps[1].series.iter()) {
            assert!(hi.1 >= lo.1);
        }
    }

    #[test]
    fn fig4c_sweep_shape() {
        let m = PrecisionModel::paper();
        let p = OpticalParams::paper();
        let sweeps = fig4c_crosstalk_sweep(&m, &p, &[0.02, 0.03, 0.05], 40);
        assert_eq!(sweeps.len(), 3);
        for s in &sweeps {
            assert_eq!(s.series.len(), 39);
        }
        // Lower k² dominates at every wavelength count.
        for (a, b) in sweeps[0].series.iter().zip(sweeps[1].series.iter()) {
            assert!(a.1 >= b.1);
        }
    }

    #[test]
    fn invalid_model_parameters_rejected() {
        assert!(PrecisionModel::new(NoiseParams::paper(), 0.0, 4.0).is_err());
        assert!(PrecisionModel::new(NoiseParams::paper(), 1.1, 0.0).is_err());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::thermal::ThermalModel;
    use crate::OpticalParams;

    fn ring() -> Microring {
        Microring::from_params(&OpticalParams::paper())
    }

    #[test]
    fn bell_shaped_weights_gain_levels() {
        // §II-C2: trained weights are bell-shaped ⇒ lower interference
        // variance ⇒ more supported levels than the uniform-data analysis.
        let m = PrecisionModel::paper();
        let r = ring();
        let uniform = m.crosstalk_limited_levels(&r, 20);
        let gaussian = m.crosstalk_limited_levels_with_weight_rms(&r, 20, 0.15);
        assert!(gaussian > uniform, "{gaussian} vs {uniform}");
        // ~1 bit of headroom for σ = 0.15 weights.
        let gain_bits = gaussian.log2() - uniform.log2();
        assert!((0.5..1.5).contains(&gain_bits), "gain = {gain_bits}");
    }

    #[test]
    fn weight_rms_equal_to_uniform_matches_baseline() {
        let m = PrecisionModel::paper();
        let r = ring();
        let uniform = m.crosstalk_limited_levels(&r, 20);
        let matched = m.crosstalk_limited_levels_with_weight_rms(&r, 20, (1.0f64 / 12.0).sqrt());
        assert!((uniform - matched).abs() / uniform < 1e-9);
    }

    #[test]
    fn zero_drift_matches_baseline() {
        let m = PrecisionModel::paper();
        let r = ring();
        let base = m.crosstalk_limited_levels(&r, 20);
        let drifted = m.crosstalk_limited_levels_with_drift(&r, 20, 0.0);
        assert!((base - drifted).abs() / base < 0.02, "{base} vs {drifted}");
    }

    #[test]
    fn thermal_drift_costs_precision() {
        let m = PrecisionModel::paper();
        let r = ring();
        let t = ThermalModel::silicon();
        let base = m.crosstalk_limited_levels_with_drift(&r, 20, 0.0).log2();
        let half_k = m
            .crosstalk_limited_levels_with_drift(&r, 20, t.drift(0.5))
            .log2();
        let two_k = m
            .crosstalk_limited_levels_with_drift(&r, 20, t.drift(2.0))
            .log2();
        assert!(half_k < base);
        assert!(two_k < half_k);
        // A 2 K uncorrected excursion costs multiple bits — the argument
        // for active ring tuning.
        assert!(base - two_k > 1.0, "loss = {}", base - two_k);
    }
}

//! Y-branch splitters and broadcast trees.
//!
//! Albireo broadcasts the modulated input volume to all `Ng` PLCGs by
//! splitting the signal through a tree of Y-branches (Fig. 6a). Each 1→2
//! split halves the power and adds the excess insertion loss of the branch.

use crate::params::YBranchParams;
use crate::units::Db;

/// A single 1→2 Y-branch splitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YBranch {
    params: YBranchParams,
}

impl YBranch {
    /// Builds a Y-branch from its parameters.
    pub fn new(params: YBranchParams) -> YBranch {
        YBranch { params }
    }

    /// Builds the paper's Y-branch.
    pub fn from_params(params: &crate::OpticalParams) -> YBranch {
        YBranch {
            params: params.ybranch,
        }
    }

    /// Excess insertion loss of the branch (not counting the 3 dB split).
    pub fn excess_loss(&self) -> Db {
        Db::loss(self.params.loss_db)
    }

    /// Per-output power transfer of one split: half the input, further
    /// reduced by the excess insertion loss.
    pub fn split_transfer(&self) -> Db {
        Db::from_linear(0.5) + self.excess_loss()
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.params.area_m2
    }
}

/// A binary broadcast tree delivering one input to `fanout` outputs.
///
/// The tree has `ceil(log2(fanout))` levels; every output traverses that many
/// Y-branches.
///
/// ```
/// use albireo_photonics::ybranch::{BroadcastTree, YBranch};
/// use albireo_photonics::params::OpticalParams;
///
/// let tree = BroadcastTree::new(YBranch::from_params(&OpticalParams::paper()), 9);
/// assert_eq!(tree.levels(), 4);
/// // 4 levels: 4 × (3 dB + 0.3 dB) ≈ 13.2 dB per output.
/// assert!((tree.per_output_transfer().loss_db() - 13.24).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BroadcastTree {
    branch: YBranch,
    fanout: usize,
}

impl BroadcastTree {
    /// Builds a broadcast tree with the given fanout.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn new(branch: YBranch, fanout: usize) -> BroadcastTree {
        assert!(fanout > 0, "fanout must be at least 1");
        BroadcastTree { branch, fanout }
    }

    /// Number of destinations served.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of Y-branch levels each output signal traverses.
    pub fn levels(&self) -> u32 {
        if self.fanout <= 1 {
            0
        } else {
            usize::BITS - (self.fanout - 1).leading_zeros()
        }
    }

    /// Total number of Y-branch devices in the tree (a full binary tree with
    /// `fanout` leaves has `fanout − 1` internal splits).
    pub fn branch_count(&self) -> usize {
        self.fanout.saturating_sub(1)
    }

    /// Power transfer from the tree input to any single output.
    pub fn per_output_transfer(&self) -> Db {
        self.branch.split_transfer() * f64::from(self.levels())
    }

    /// Total area of the tree's Y-branches, m².
    pub fn area_m2(&self) -> f64 {
        self.branch.area_m2() * self.branch_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticalParams;

    fn branch() -> YBranch {
        YBranch::from_params(&OpticalParams::paper())
    }

    #[test]
    fn split_transfer_is_half_minus_excess() {
        let b = branch();
        let t = b.split_transfer().linear();
        let expected = 0.5 * Db::loss(0.3).linear();
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn levels_for_common_fanouts() {
        let b = branch();
        assert_eq!(BroadcastTree::new(b, 1).levels(), 0);
        assert_eq!(BroadcastTree::new(b, 2).levels(), 1);
        assert_eq!(BroadcastTree::new(b, 3).levels(), 2);
        assert_eq!(BroadcastTree::new(b, 4).levels(), 2);
        assert_eq!(BroadcastTree::new(b, 9).levels(), 4);
        assert_eq!(BroadcastTree::new(b, 16).levels(), 4);
        assert_eq!(BroadcastTree::new(b, 27).levels(), 5);
    }

    #[test]
    fn branch_count_is_fanout_minus_one() {
        let b = branch();
        assert_eq!(BroadcastTree::new(b, 9).branch_count(), 8);
        assert_eq!(BroadcastTree::new(b, 1).branch_count(), 0);
    }

    #[test]
    fn unity_transfer_for_fanout_one() {
        let tree = BroadcastTree::new(branch(), 1);
        assert!((tree.per_output_transfer().linear() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_trees_lose_more_power() {
        let b = branch();
        let t9 = BroadcastTree::new(b, 9).per_output_transfer().linear();
        let t27 = BroadcastTree::new(b, 27).per_output_transfer().linear();
        assert!(t27 < t9);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn zero_fanout_panics() {
        let _ = BroadcastTree::new(branch(), 0);
    }
}

//! Optical device parameters (paper Table II).
//!
//! [`OpticalParams::paper`] returns the exact values from Table II of the
//! Albireo paper, which are shared by all three technology estimates
//! (conservative / moderate / aggressive); only the *electrical* device
//! powers differ between estimates and those live in `albireo-core`.

use crate::units::Db;

/// Silicon strip waveguide parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveguideParams {
    /// Cross-section width, m (Table II: 500 nm).
    pub width: f64,
    /// Cross-section height, m (Table II: 220 nm).
    pub height: f64,
    /// Effective refractive index at the design wavelength.
    pub n_eff: f64,
    /// Group refractive index at the design wavelength.
    pub n_group: f64,
    /// Propagation loss of straight sections, dB/cm.
    pub straight_loss_db_per_cm: f64,
    /// Propagation loss of bent sections, dB/cm.
    pub bent_loss_db_per_cm: f64,
}

/// Y-branch splitter parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YBranchParams {
    /// Insertion loss per branch, dB.
    pub loss_db: f64,
    /// Device footprint, m².
    pub area_m2: f64,
}

/// Double-bus microring resonator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrrParams {
    /// Ring radius, m (Table II: 5 µm).
    pub radius: f64,
    /// Drop-port insertion loss, dB (Table II: 0.39 dB).
    pub drop_loss_db: f64,
    /// Power cross-coupling coefficient k² (Table II: 0.03).
    pub k2: f64,
    /// Device footprint, m² (Table II: 20×20 µm²).
    pub area_m2: f64,
}

/// Mach-Zehnder modulator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MzmParams {
    /// Insertion loss, dB (Table II: 1.2 dB).
    pub loss_db: f64,
    /// Device footprint, m² (Table II: 300×50 µm²).
    pub area_m2: f64,
}

/// Star coupler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarCouplerParams {
    /// Insertion loss, dB (Table II: 1.3 dB).
    pub loss_db: f64,
    /// Device footprint, m² (Table II: 750×350 µm²).
    pub area_m2: f64,
}

/// Arrayed waveguide grating parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwgParams {
    /// Number of demultiplexed channels (Table II: 64).
    pub channels: usize,
    /// Insertion loss, dB (Table II: 2.0 dB).
    pub loss_db: f64,
    /// Inter-channel crosstalk, dB (Table II: −34 dB).
    pub crosstalk_db: f64,
    /// Free spectral range, m (Table II: 70 nm).
    pub fsr: f64,
    /// Device footprint, m² (Table II: 5×2 mm²).
    pub area_m2: f64,
}

/// Laser source parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaserParams {
    /// Relative intensity noise power spectral density, dBc/Hz.
    pub rin_dbc_per_hz: f64,
    /// Device footprint, m² (Table II: 400×300 µm²).
    pub area_m2: f64,
}

/// PIN photodiode parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotodiodeParams {
    /// Responsivity, A/W (Table II: 1.1 A/W).
    pub responsivity: f64,
    /// Dark current, A (Table II: 25 pA at 1 V).
    pub dark_current: f64,
    /// Device footprint, m² (Table II: 40×40 µm²).
    pub area_m2: f64,
}

/// The complete set of optical device parameters from paper Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalParams {
    /// Design wavelength, m (1550 nm C-band).
    pub wavelength: f64,
    /// Waveguide parameters.
    pub waveguide: WaveguideParams,
    /// Y-branch parameters.
    pub ybranch: YBranchParams,
    /// Microring parameters.
    pub mrr: MrrParams,
    /// Mach-Zehnder modulator parameters.
    pub mzm: MzmParams,
    /// Star coupler parameters.
    pub star_coupler: StarCouplerParams,
    /// Arrayed waveguide grating parameters.
    pub awg: AwgParams,
    /// Laser parameters.
    pub laser: LaserParams,
    /// Photodiode parameters.
    pub photodiode: PhotodiodeParams,
}

impl OpticalParams {
    /// The exact parameter set from Table II of the paper.
    pub fn paper() -> OpticalParams {
        OpticalParams {
            wavelength: 1550e-9,
            waveguide: WaveguideParams {
                width: 500e-9,
                height: 220e-9,
                n_eff: 2.33,
                n_group: 4.68,
                straight_loss_db_per_cm: 1.5,
                bent_loss_db_per_cm: 3.8,
            },
            ybranch: YBranchParams {
                loss_db: 0.3,
                area_m2: 1.2e-6 * 2.2e-6,
            },
            mrr: MrrParams {
                radius: 5e-6,
                drop_loss_db: 0.39,
                k2: 0.03,
                area_m2: 20e-6 * 20e-6,
            },
            mzm: MzmParams {
                loss_db: 1.2,
                area_m2: 300e-6 * 50e-6,
            },
            star_coupler: StarCouplerParams {
                loss_db: 1.3,
                area_m2: 750e-6 * 350e-6,
            },
            awg: AwgParams {
                channels: 64,
                loss_db: 2.0,
                crosstalk_db: -34.0,
                fsr: 70e-9,
                area_m2: 5e-3 * 2e-3,
            },
            laser: LaserParams {
                rin_dbc_per_hz: -140.0,
                area_m2: 400e-6 * 300e-6,
            },
            photodiode: PhotodiodeParams {
                responsivity: 1.1,
                dark_current: 25e-12,
                area_m2: 40e-6 * 40e-6,
            },
        }
    }

    /// Insertion loss of the microring drop path as a [`Db`].
    pub fn mrr_drop_loss(&self) -> Db {
        Db::loss(self.mrr.drop_loss_db)
    }

    /// Insertion loss of an MZM as a [`Db`].
    pub fn mzm_loss(&self) -> Db {
        Db::loss(self.mzm.loss_db)
    }

    /// Insertion loss of a star coupler as a [`Db`].
    pub fn star_coupler_loss(&self) -> Db {
        Db::loss(self.star_coupler.loss_db)
    }

    /// Insertion loss of the AWG as a [`Db`].
    pub fn awg_loss(&self) -> Db {
        Db::loss(self.awg.loss_db)
    }

    /// Insertion loss of one Y-branch as a [`Db`].
    pub fn ybranch_loss(&self) -> Db {
        Db::loss(self.ybranch.loss_db)
    }
}

impl Default for OpticalParams {
    fn default() -> OpticalParams {
        OpticalParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_ii() {
        let p = OpticalParams::paper();
        assert_eq!(p.wavelength, 1550e-9);
        assert_eq!(p.waveguide.n_eff, 2.33);
        assert_eq!(p.waveguide.n_group, 4.68);
        assert_eq!(p.mrr.k2, 0.03);
        assert_eq!(p.mrr.radius, 5e-6);
        assert_eq!(p.awg.channels, 64);
        assert_eq!(p.photodiode.responsivity, 1.1);
        assert_eq!(p.laser.rin_dbc_per_hz, -140.0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(OpticalParams::default(), OpticalParams::paper());
    }

    #[test]
    fn areas_are_positive() {
        let p = OpticalParams::paper();
        for a in [
            p.ybranch.area_m2,
            p.mrr.area_m2,
            p.mzm.area_m2,
            p.star_coupler.area_m2,
            p.awg.area_m2,
            p.laser.area_m2,
            p.photodiode.area_m2,
        ] {
            assert!(a > 0.0);
        }
    }

    #[test]
    fn awg_is_10_mm2() {
        let p = OpticalParams::paper();
        assert!((p.awg.area_m2 - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn loss_accessors_are_losses() {
        let p = OpticalParams::paper();
        assert!(p.mzm_loss().db() < 0.0);
        assert!(p.awg_loss().db() < 0.0);
        assert!(p.star_coupler_loss().db() < 0.0);
        assert!(p.ybranch_loss().db() < 0.0);
        assert!(p.mrr_drop_loss().db() < 0.0);
    }
}

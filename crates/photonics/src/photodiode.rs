//! PIN photodiodes and balanced detection (paper §II-B2/B3).
//!
//! Photodiodes convert the total incident optical power across all
//! wavelengths into a proportional current; a balanced pair subtracts the
//! negative-rail current from the positive-rail current to complete the
//! signed dot product (Eq. 4):
//!
//! ```text
//! Iout = R0·Σ P⁺ − R1·Σ P⁻
//! ```

use crate::params::PhotodiodeParams;
use crate::{OpticalParams, Result};

/// A single PIN photodiode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodiode {
    params: PhotodiodeParams,
}

impl Photodiode {
    /// Builds a photodiode from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the responsivity is non-positive.
    pub fn new(params: PhotodiodeParams) -> Result<Photodiode> {
        crate::check_positive("responsivity", params.responsivity)?;
        Ok(Photodiode { params })
    }

    /// Builds the paper's photodiode (R = 1.1 A/W, 25 pA dark current).
    pub fn from_params(params: &OpticalParams) -> Photodiode {
        Photodiode {
            params: params.photodiode,
        }
    }

    /// Responsivity, A/W.
    pub fn responsivity(&self) -> f64 {
        self.params.responsivity
    }

    /// Dark current, A.
    pub fn dark_current(&self) -> f64 {
        self.params.dark_current
    }

    /// Photocurrent for the *total* incident optical power (W) summed over
    /// all wavelengths — the optical addition step.
    pub fn detect_total(&self, total_power_w: f64) -> f64 {
        self.params.responsivity * total_power_w + self.params.dark_current
    }

    /// Photocurrent for a set of per-wavelength powers: the PD integrates
    /// across wavelengths, so combining signals on one waveguide *is* the
    /// addition.
    pub fn detect(&self, powers_w: &[f64]) -> f64 {
        self.detect_total(powers_w.iter().sum())
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.params.area_m2
    }
}

/// A balanced photodiode pair implementing signed accumulation (Fig. 2d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedPd {
    positive: Photodiode,
    negative: Photodiode,
}

impl BalancedPd {
    /// Builds a balanced pair from two photodiodes. The paper uses
    /// `R0 = R1` in all designs, but the model permits mismatch for
    /// sensitivity studies.
    pub fn new(positive: Photodiode, negative: Photodiode) -> BalancedPd {
        BalancedPd { positive, negative }
    }

    /// Builds a matched balanced pair from the paper's photodiode.
    pub fn from_params(params: &OpticalParams) -> BalancedPd {
        let pd = Photodiode::from_params(params);
        BalancedPd {
            positive: pd,
            negative: pd,
        }
    }

    /// The positive-rail photodiode.
    pub fn positive(&self) -> &Photodiode {
        &self.positive
    }

    /// The negative-rail photodiode.
    pub fn negative(&self) -> &Photodiode {
        &self.negative
    }

    /// Computes `Iout = R0·Σ P⁺ − R1·Σ P⁻` (Eq. 4). Dark currents cancel
    /// for a matched pair.
    pub fn output_current(&self, positive_powers: &[f64], negative_powers: &[f64]) -> f64 {
        self.positive.detect(positive_powers) - self.negative.detect(negative_powers)
    }

    /// Output current from pre-summed rail powers.
    pub fn output_current_total(&self, p_pos: f64, p_neg: f64) -> f64 {
        self.positive.detect_total(p_pos) - self.negative.detect_total(p_neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd() -> Photodiode {
        Photodiode::from_params(&OpticalParams::paper())
    }

    #[test]
    fn detection_is_linear_in_power() {
        let d = pd();
        let i1 = d.detect_total(1e-3) - d.dark_current();
        let i2 = d.detect_total(2e-3) - d.dark_current();
        assert!((i2 - 2.0 * i1).abs() < 1e-15);
        assert!((i1 - 1.1e-3).abs() < 1e-12);
    }

    #[test]
    fn detect_sums_wavelengths() {
        let d = pd();
        let total = d.detect(&[1e-3, 2e-3, 3e-3]);
        assert!((total - d.detect_total(6e-3)).abs() < 1e-18);
    }

    #[test]
    fn balanced_pair_subtracts() {
        let b = BalancedPd::from_params(&OpticalParams::paper());
        let i = b.output_current(&[2e-3], &[0.5e-3]);
        assert!((i - 1.1 * 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn matched_pair_cancels_dark_current() {
        let b = BalancedPd::from_params(&OpticalParams::paper());
        let i = b.output_current(&[], &[]);
        assert!(i.abs() < 1e-18);
    }

    #[test]
    fn negative_rail_dominance_gives_negative_current() {
        let b = BalancedPd::from_params(&OpticalParams::paper());
        assert!(b.output_current(&[1e-4], &[1e-3]) < 0.0);
    }

    #[test]
    fn balanced_is_linear() {
        let b = BalancedPd::from_params(&OpticalParams::paper());
        let a = b.output_current_total(3e-3, 1e-3);
        let c = b.output_current_total(6e-3, 2e-3);
        assert!((c - 2.0 * a).abs() < 1e-15);
    }

    #[test]
    fn invalid_responsivity_rejected() {
        let mut p = OpticalParams::paper().photodiode;
        p.responsivity = 0.0;
        assert!(Photodiode::new(p).is_err());
    }
}

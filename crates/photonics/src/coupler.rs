//! Passive distribution devices: star couplers and arrayed waveguide
//! gratings (paper §III-C).
//!
//! * The **AWG** demultiplexes the 63/64 WDM channels arriving at a PLCG
//!   into individual waveguides.
//! * The **star coupler** is a free-propagation region that mixes its
//!   inputs onto every output — Albireo uses one per kernel row to multicast
//!   the `Nd + Wx − 1` input elements of that row to the `Wx` MZM columns.
//!
//! Both are passive and consume no electrical power; they only contribute
//! insertion loss, crosstalk, and (a large amount of) area.

use crate::params::{AwgParams, StarCouplerParams};
use crate::units::Db;
use crate::{OpticalParams, PhotonicsError, Result};

/// An `n_in → n_out` star coupler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarCoupler {
    params: StarCouplerParams,
    inputs: usize,
    outputs: usize,
}

impl StarCoupler {
    /// Builds a star coupler with the given port counts.
    ///
    /// # Errors
    ///
    /// Returns an error if either port count is zero.
    pub fn new(params: StarCouplerParams, inputs: usize, outputs: usize) -> Result<StarCoupler> {
        if inputs == 0 || outputs == 0 {
            return Err(PhotonicsError::Inconsistent(format!(
                "star coupler needs at least one input and output, got {inputs}x{outputs}"
            )));
        }
        Ok(StarCoupler {
            params,
            inputs,
            outputs,
        })
    }

    /// Builds the paper's star coupler for one PLCU row: `Nd + Wx − 1`
    /// inputs multicast onto `Wx` outputs.
    pub fn for_plcu_row(params: &OpticalParams, nd: usize, wx: usize) -> Result<StarCoupler> {
        StarCoupler::new(params.star_coupler, nd + wx - 1, wx)
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Power transfer from any input to any single output: the free
    /// propagation region splits each input evenly across the outputs, plus
    /// the insertion loss.
    pub fn port_transfer(&self) -> Db {
        Db::from_linear(1.0 / self.outputs as f64) + Db::loss(self.params.loss_db)
    }

    /// Insertion (excess) loss only.
    pub fn insertion_loss(&self) -> Db {
        Db::loss(self.params.loss_db)
    }

    /// Multicasts a set of per-input WDM powers to every output port.
    ///
    /// `inputs[i]` is the optical power on input port `i`; the return value
    /// is `outputs × inputs` — every output port carries an attenuated copy
    /// of every input signal (each on its own wavelength, so they add
    /// without interference).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the configured input count.
    pub fn multicast(&self, inputs: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            inputs.len(),
            self.inputs,
            "expected {} inputs, got {}",
            self.inputs,
            inputs.len()
        );
        let gain = self.port_transfer().linear();
        (0..self.outputs)
            .map(|_| inputs.iter().map(|p| p * gain).collect())
            .collect()
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.params.area_m2
    }
}

/// An arrayed waveguide grating demultiplexer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Awg {
    params: AwgParams,
}

impl Awg {
    /// Builds an AWG from explicit parameters.
    pub fn new(params: AwgParams) -> Awg {
        Awg { params }
    }

    /// Builds the paper's 64-channel AWG.
    pub fn from_params(params: &OpticalParams) -> Awg {
        Awg { params: params.awg }
    }

    /// Number of wavelength channels.
    pub fn channels(&self) -> usize {
        self.params.channels
    }

    /// Insertion loss on the demultiplexed path.
    pub fn insertion_loss(&self) -> Db {
        Db::loss(self.params.loss_db)
    }

    /// Linear crosstalk leaking from each foreign channel into a given
    /// output port.
    pub fn crosstalk_linear(&self) -> f64 {
        Db::new(self.params.crosstalk_db).linear()
    }

    /// Demultiplexes per-channel powers: output `i` carries channel `i`
    /// attenuated by the insertion loss plus the summed crosstalk of all
    /// foreign channels.
    ///
    /// # Errors
    ///
    /// Returns an error if more channels are presented than the AWG supports.
    pub fn demultiplex(&self, channel_powers: &[f64]) -> Result<Vec<f64>> {
        if channel_powers.len() > self.params.channels {
            return Err(PhotonicsError::Inconsistent(format!(
                "AWG supports {} channels, got {}",
                self.params.channels,
                channel_powers.len()
            )));
        }
        let il = self.insertion_loss().linear();
        let xt = self.crosstalk_linear();
        let total: f64 = channel_powers.iter().sum();
        Ok(channel_powers
            .iter()
            .map(|&p| il * (p + xt * (total - p)))
            .collect())
    }

    /// Device footprint, m².
    pub fn area_m2(&self) -> f64 {
        self.params.area_m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OpticalParams {
        OpticalParams::paper()
    }

    #[test]
    fn plcu_row_star_coupler_has_paper_shape() {
        // Nd = 5, Wx = 3 ⇒ 7 inputs, 3 outputs.
        let sc = StarCoupler::for_plcu_row(&params(), 5, 3).unwrap();
        assert_eq!(sc.inputs(), 7);
        assert_eq!(sc.outputs(), 3);
    }

    #[test]
    fn port_transfer_includes_split_and_loss() {
        let sc = StarCoupler::for_plcu_row(&params(), 5, 3).unwrap();
        let expected = (1.0 / 3.0) * Db::loss(1.3).linear();
        assert!((sc.port_transfer().linear() - expected).abs() < 1e-12);
    }

    #[test]
    fn multicast_copies_every_input_to_every_output() {
        let sc = StarCoupler::for_plcu_row(&params(), 5, 3).unwrap();
        let inputs = [1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3, 7e-3];
        let out = sc.multicast(&inputs);
        assert_eq!(out.len(), 3);
        for port in &out {
            assert_eq!(port.len(), 7);
            for (o, i) in port.iter().zip(inputs.iter()) {
                assert!((o / i - sc.port_transfer().linear()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multicast_conserves_no_more_than_input_power() {
        let sc = StarCoupler::for_plcu_row(&params(), 5, 3).unwrap();
        let inputs = vec![1e-3; 7];
        let out = sc.multicast(&inputs);
        let total_out: f64 = out.iter().flatten().sum();
        let total_in: f64 = inputs.iter().sum();
        assert!(total_out <= total_in);
    }

    #[test]
    #[should_panic(expected = "expected 7 inputs")]
    fn multicast_checks_arity() {
        let sc = StarCoupler::for_plcu_row(&params(), 5, 3).unwrap();
        let _ = sc.multicast(&[1.0, 2.0]);
    }

    #[test]
    fn zero_ports_rejected() {
        let p = params().star_coupler;
        assert!(StarCoupler::new(p, 0, 3).is_err());
        assert!(StarCoupler::new(p, 3, 0).is_err());
    }

    #[test]
    fn awg_demux_attenuates_and_leaks() {
        let awg = Awg::from_params(&params());
        let powers = vec![1e-3; 10];
        let out = awg.demultiplex(&powers).unwrap();
        let il = Db::loss(2.0).linear();
        for o in &out {
            // Main term plus 9 × (−34 dB) crosstalk.
            let expected = il * (1e-3 + 9.0 * 1e-3 * Db::new(-34.0).linear());
            assert!((o - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn awg_rejects_too_many_channels() {
        let awg = Awg::from_params(&params());
        let powers = vec![1e-3; 65];
        assert!(awg.demultiplex(&powers).is_err());
    }

    #[test]
    fn awg_crosstalk_is_small() {
        let awg = Awg::from_params(&params());
        assert!(awg.crosstalk_linear() < 1e-3);
    }

    #[test]
    fn awg_supports_63_albireo_channels() {
        let awg = Awg::from_params(&params());
        let powers = vec![1e-3; 63];
        assert!(awg.demultiplex(&powers).is_ok());
        assert_eq!(awg.channels(), 64);
    }
}

//! Double-bus microring resonator (paper §II-B2, §II-C2).
//!
//! MRRs are the wavelength filters Albireo uses for optical accumulation:
//! each ring demultiplexes its resonant wavelength onto a shared combination
//! waveguide (positive or negative rail, Fig. 2d). The model implements:
//!
//! * resonance condition `λres = n_eff·L/m` (Eq. 3),
//! * free spectral range `FSR = λ²res/(n_g·L)` (Eq. 7),
//! * finesse `FSR/FWHM` (Eq. 8),
//! * FWHM of the double-bus ring (Eq. 9),
//! * drop/through-port power transfer vs. detuning (Fig. 4a), from the
//!   standard coupled-mode treatment of Bogaerts et al. (paper ref. \[6\]),
//! * photon-lifetime-limited temporal response (Fig. 4b).

use crate::waveguide::Waveguide;
use crate::{check_positive, check_unit_interval, OpticalParams, Result};
use std::f64::consts::PI;

/// Operating state of a switching ring (paper §II-B2: rings can be "turned
/// off" by shifting their resonance away from the signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingState {
    /// The ring is on resonance and drops its wavelength.
    #[default]
    On,
    /// The ring is detuned off resonance and passes its wavelength.
    Off,
}

/// A double-bus microring resonator.
///
/// ```
/// use albireo_photonics::mrr::Microring;
/// use albireo_photonics::params::OpticalParams;
///
/// let ring = Microring::from_params(&OpticalParams::paper());
/// // Table II: FSR = 16.1 nm, k² = 0.03.
/// assert!((ring.fsr() * 1e9 - 16.1).abs() < 0.5);
/// // On resonance, nearly all power reaches the drop port.
/// assert!(ring.drop_transmission(0.0) > 0.9);
/// // Far off resonance, nearly nothing does.
/// assert!(ring.drop_transmission(ring.fsr() / 2.0) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microring {
    /// Ring circumference L, m.
    circumference: f64,
    /// Power cross-coupling coefficient of the input coupler, k₁².
    k1_sq: f64,
    /// Power cross-coupling coefficient of the drop coupler, k₂².
    k2_sq: f64,
    /// Single-pass amplitude transmission `a` (power transmission `a²`).
    single_pass_a: f64,
    /// Design wavelength, m.
    wavelength: f64,
    /// Group index of the ring waveguide.
    n_group: f64,
    /// Effective index of the ring waveguide.
    n_eff: f64,
    /// Switching state.
    state: RingState,
}

impl Microring {
    /// Builds a ring with symmetric coupling (`k₁² = k₂² = k2`), the critical
    /// coupling criterion used throughout the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if `radius` or the indices are non-positive, or if
    /// `k2` is outside `(0, 1)`.
    pub fn symmetric(
        radius: f64,
        k2: f64,
        wavelength: f64,
        n_eff: f64,
        n_group: f64,
        single_pass_a: f64,
    ) -> Result<Microring> {
        check_positive("radius", radius)?;
        check_positive("wavelength", wavelength)?;
        check_positive("n_eff", n_eff)?;
        check_positive("n_group", n_group)?;
        check_unit_interval("k2", k2)?;
        check_unit_interval("single_pass_a", single_pass_a)?;
        if k2 == 0.0 {
            return Err(crate::PhotonicsError::NonPositive {
                name: "k2",
                value: k2,
            });
        }
        Ok(Microring {
            circumference: 2.0 * PI * radius,
            k1_sq: k2,
            k2_sq: k2,
            single_pass_a,
            wavelength,
            n_group,
            n_eff,
            state: RingState::On,
        })
    }

    /// Builds the paper's ring (r = 5 µm, k² = 0.03, bent-waveguide loss)
    /// from a full parameter set.
    pub fn from_params(params: &OpticalParams) -> Microring {
        Microring::with_k2(params, params.mrr.k2)
    }

    /// Builds the paper's ring but with an explicit coupling coefficient —
    /// the Fig. 4 design-space exploration sweeps `k²`.
    ///
    /// # Panics
    ///
    /// Panics if `k2` is outside `(0, 1]`; the Table II geometry is otherwise
    /// always valid.
    pub fn with_k2(params: &OpticalParams, k2: f64) -> Microring {
        let wg = Waveguide::from_params(params);
        let circumference = 2.0 * PI * params.mrr.radius;
        let a = wg.ring_amplitude_transmission(circumference);
        Microring::symmetric(
            params.mrr.radius,
            k2,
            params.wavelength,
            params.waveguide.n_eff,
            params.waveguide.n_group,
            a,
        )
        .expect("Table II ring geometry is valid")
    }

    /// Ring circumference L, m.
    pub fn circumference(&self) -> f64 {
        self.circumference
    }

    /// Power cross-coupling coefficient k² (symmetric couplers).
    pub fn k2(&self) -> f64 {
        self.k2_sq
    }

    /// Single-pass amplitude transmission `a`.
    pub fn single_pass_a(&self) -> f64 {
        self.single_pass_a
    }

    /// Switching state.
    pub fn state(&self) -> RingState {
        self.state
    }

    /// Sets the switching state.
    pub fn set_state(&mut self, state: RingState) {
        self.state = state;
    }

    /// The longitudinal mode number m closest to the design wavelength
    /// (Eq. 3: `λres = n_eff·L/m`).
    pub fn mode_number(&self) -> u32 {
        (self.n_eff * self.circumference / self.wavelength).round() as u32
    }

    /// Resonant wavelength for the nearest mode, m (Eq. 3).
    pub fn resonant_wavelength(&self) -> f64 {
        self.n_eff * self.circumference / f64::from(self.mode_number())
    }

    /// Free spectral range, m (Eq. 7).
    pub fn fsr(&self) -> f64 {
        self.wavelength * self.wavelength / (self.n_group * self.circumference)
    }

    /// Full width at half maximum of the drop resonance, m (Eq. 9).
    pub fn fwhm(&self) -> f64 {
        let t1t2a = self.t1() * self.t2() * self.single_pass_a;
        (1.0 - t1t2a) * self.wavelength * self.wavelength
            / (PI * self.n_group * self.circumference * t1t2a.sqrt())
    }

    /// Finesse = FSR / FWHM (Eq. 8).
    pub fn finesse(&self) -> f64 {
        self.fsr() / self.fwhm()
    }

    /// Optical 3 dB bandwidth of the resonance, Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        crate::constants::SPEED_OF_LIGHT * self.fwhm() / (self.wavelength * self.wavelength)
    }

    /// Photon-lifetime time constant of the loaded ring, s.
    ///
    /// The Lorentzian resonance of full width `Δν` behaves as a single-pole
    /// low-pass filter with pole at `Δν/2`, i.e. `τ = 1/(π·Δν)`.
    pub fn time_constant(&self) -> f64 {
        1.0 / (PI * self.bandwidth_hz())
    }

    fn t1(&self) -> f64 {
        (1.0 - self.k1_sq).sqrt()
    }

    fn t2(&self) -> f64 {
        (1.0 - self.k2_sq).sqrt()
    }

    /// Round-trip phase detuning (rad) corresponding to a wavelength detuning
    /// from resonance (m). One FSR of detuning maps to 2π.
    pub fn phase_detuning(&self, delta_lambda: f64) -> f64 {
        2.0 * PI * delta_lambda / self.fsr()
    }

    /// Drop-port power transmission at a wavelength detuning `Δλ` (m) from
    /// resonance.
    ///
    /// When the ring is [`RingState::Off`], the resonance is modelled as
    /// shifted by half an FSR (the anti-resonance point), so the nominal
    /// wavelength passes to the through port.
    pub fn drop_transmission(&self, delta_lambda: f64) -> f64 {
        let delta = match self.state {
            RingState::On => delta_lambda,
            RingState::Off => delta_lambda + self.fsr() / 2.0,
        };
        self.drop_at_phase(self.phase_detuning(delta))
    }

    /// Through-port power transmission at a wavelength detuning `Δλ` (m).
    pub fn through_transmission(&self, delta_lambda: f64) -> f64 {
        let delta = match self.state {
            RingState::On => delta_lambda,
            RingState::Off => delta_lambda + self.fsr() / 2.0,
        };
        self.through_at_phase(self.phase_detuning(delta))
    }

    /// Drop-port power transmission at a round-trip phase detuning (rad).
    pub fn drop_at_phase(&self, phi: f64) -> f64 {
        let t1 = self.t1();
        let t2 = self.t2();
        let a = self.single_pass_a;
        let num = self.k1_sq * self.k2_sq * a;
        let t1t2a = t1 * t2 * a;
        let den = 1.0 - 2.0 * t1t2a * phi.cos() + t1t2a * t1t2a;
        num / den
    }

    /// Through-port power transmission at a round-trip phase detuning (rad).
    pub fn through_at_phase(&self, phi: f64) -> f64 {
        let t1 = self.t1();
        let t2 = self.t2();
        let a = self.single_pass_a;
        let t1t2a = t1 * t2 * a;
        let num = t2 * t2 * a * a - 2.0 * t1t2a * phi.cos() + t1 * t1;
        let den = 1.0 - 2.0 * t1t2a * phi.cos() + t1t2a * t1t2a;
        num / den
    }

    /// Drop-port transmission exactly on resonance.
    pub fn drop_peak(&self) -> f64 {
        self.drop_at_phase(0.0)
    }

    /// Power transfer of the drop port at a given intensity-modulation
    /// frequency (Hz), relative to DC, from the single-pole equivalent.
    pub fn modulation_response(&self, f_mod_hz: f64) -> f64 {
        let x = 2.0 * f_mod_hz / self.bandwidth_hz();
        1.0 / (1.0 + x * x)
    }

    /// Normalized drop-port power during a step of input power applied at
    /// `t = 0` (Fig. 4b): the ring charges with its photon lifetime.
    ///
    /// Returns a value in `[0, drop_peak()]`.
    pub fn step_response(&self, t_seconds: f64) -> f64 {
        if t_seconds <= 0.0 {
            return 0.0;
        }
        self.drop_peak() * (1.0 - (-t_seconds / self.time_constant()).exp())
    }

    /// Samples the drop-port spectrum over ±`span` (m) around resonance
    /// with `points` samples. Returns `(detuning_m, transmission)` pairs.
    ///
    /// This regenerates Fig. 4a.
    pub fn drop_spectrum(&self, span: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two sample points");
        let _prof = albireo_obs::profile::scope("photonics.mrr.spectrum");
        (0..points)
            .map(|i| {
                let frac = i as f64 / (points - 1) as f64;
                let d = -span + 2.0 * span * frac;
                (d, self.drop_transmission(d))
            })
            .collect()
    }

    /// Worst-case aggregate crosstalk seen by one ring from `n − 1` foreign
    /// channels uniformly spaced across one FSR: `Σ_j T_drop(j·FSR/n)`.
    pub fn aggregate_crosstalk(&self, n_channels: usize) -> f64 {
        if n_channels < 2 {
            return 0.0;
        }
        let _prof = albireo_obs::profile::scope("photonics.mrr.crosstalk");
        let spacing = self.fsr() / n_channels as f64;
        (1..n_channels)
            .map(|j| self.drop_at_phase(self.phase_detuning(j as f64 * spacing)))
            .sum()
    }

    /// RMS crosstalk (standard deviation of the interference) assuming the
    /// foreign channels carry independent data uniform in `[0, 1]`:
    /// `sqrt(Σ_j T_j² / 12)`.
    pub fn rms_crosstalk(&self, n_channels: usize) -> f64 {
        self.rms_crosstalk_with_variance(n_channels, 1.0 / 12.0)
    }

    /// RMS crosstalk for foreign channels carrying data with an arbitrary
    /// variance (uniform `[0,1]` data has variance 1/12). The paper
    /// observes (§II-C2) that trained kernel weights are bell-shaped, which
    /// lowers the interference variance and lets the accumulator support
    /// more levels.
    pub fn rms_crosstalk_with_variance(&self, n_channels: usize, data_variance: f64) -> f64 {
        if n_channels < 2 {
            return 0.0;
        }
        let spacing = self.fsr() / n_channels as f64;
        let sum_sq: f64 = (1..n_channels)
            .map(|j| {
                let t = self.drop_at_phase(self.phase_detuning(j as f64 * spacing));
                t * t
            })
            .sum();
        (sum_sq * data_variance).sqrt()
    }

    /// RMS crosstalk when this ring's resonance has drifted by `drift`
    /// meters off its grid slot (e.g. thermally): the interference is the
    /// foreign-channel pickup *relative to the (reduced) main signal*.
    pub fn rms_crosstalk_with_drift(&self, n_channels: usize, drift: f64) -> f64 {
        if n_channels < 2 {
            return 0.0;
        }
        let spacing = self.fsr() / n_channels as f64;
        let main = self.drop_transmission(drift).max(f64::MIN_POSITIVE);
        let sum_sq: f64 = (1..n_channels)
            .flat_map(|j| {
                // Foreign channels on both sides, now asymmetric.
                let up = self.drop_transmission(j as f64 * spacing - drift);
                let down = self.drop_transmission(-(j as f64) * spacing - drift);
                [up, down]
            })
            .map(|t| t * t)
            .sum::<f64>()
            / 2.0; // the symmetric baseline counts each spacing once
        ((sum_sq / 12.0).sqrt()) * (self.drop_peak() / main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Microring {
        Microring::from_params(&OpticalParams::paper())
    }

    #[test]
    fn fsr_matches_table_ii() {
        let fsr_nm = ring().fsr() * 1e9;
        assert!((fsr_nm - 16.1).abs() < 0.4, "fsr = {fsr_nm} nm");
    }

    #[test]
    fn resonant_wavelength_near_design() {
        let r = ring();
        let lres = r.resonant_wavelength();
        // The nearest mode is within half an FSR of 1550 nm.
        assert!((lres - r.wavelength).abs() < r.fsr() / 2.0 + 1e-12);
    }

    #[test]
    fn near_critical_coupling_drop_peak_is_high() {
        let r = ring();
        assert!(r.drop_peak() > 0.9, "peak = {}", r.drop_peak());
        assert!(r.drop_peak() <= 1.0);
    }

    #[test]
    fn finesse_is_fsr_over_fwhm() {
        let r = ring();
        assert!((r.finesse() - r.fsr() / r.fwhm()).abs() < 1e-9);
        // k² = 0.03 gives a finesse near 100.
        assert!(r.finesse() > 60.0 && r.finesse() < 140.0, "{}", r.finesse());
    }

    #[test]
    fn lower_k2_narrows_fwhm_and_raises_finesse() {
        let p = OpticalParams::paper();
        let r02 = Microring::with_k2(&p, 0.02);
        let r03 = Microring::with_k2(&p, 0.03);
        let r10 = Microring::with_k2(&p, 0.10);
        assert!(r02.fwhm() < r03.fwhm());
        assert!(r03.fwhm() < r10.fwhm());
        assert!(r02.finesse() > r03.finesse());
        // FSR is independent of k².
        assert!((r02.fsr() - r10.fsr()).abs() < 1e-18);
    }

    #[test]
    fn passivity_drop_plus_through_at_most_one() {
        let r = ring();
        for i in 0..200 {
            let d = (i as f64 / 199.0 - 0.5) * r.fsr();
            let total = r.drop_transmission(d) + r.through_transmission(d);
            assert!(total <= 1.0 + 1e-9, "total {total} at detuning {d}");
            assert!(total >= 0.0);
        }
    }

    #[test]
    fn spectrum_is_symmetric_and_peaked_at_zero() {
        let r = ring();
        let spec = r.drop_spectrum(r.fsr() / 4.0, 101);
        let peak = spec
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(peak.0.abs() < r.fsr() / 100.0, "peak at {}", peak.0);
        // symmetry
        for i in 0..50 {
            let lo = spec[i].1;
            let hi = spec[100 - i].1;
            assert!((lo - hi).abs() < 1e-9);
        }
    }

    #[test]
    fn fwhm_consistent_with_spectrum() {
        let r = ring();
        // Transmission at ±FWHM/2 should be close to half the peak.
        let half = r.drop_transmission(r.fwhm() / 2.0);
        assert!(
            (half - r.drop_peak() / 2.0).abs() / r.drop_peak() < 0.05,
            "half-power point off: {half} vs peak {}",
            r.drop_peak()
        );
    }

    #[test]
    fn off_state_passes_signal() {
        let mut r = ring();
        r.set_state(RingState::Off);
        assert!(r.drop_transmission(0.0) < 0.01);
        assert!(r.through_transmission(0.0) > 0.9);
    }

    #[test]
    fn temporal_response_monotonic_and_bounded() {
        let r = ring();
        let tau = r.time_constant();
        let mut prev = 0.0;
        for i in 1..=10 {
            let v = r.step_response(i as f64 * tau / 2.0);
            assert!(v >= prev);
            assert!(v <= r.drop_peak() + 1e-12);
            prev = v;
        }
        assert!((r.step_response(20.0 * tau) - r.drop_peak()).abs() < 1e-6);
        assert_eq!(r.step_response(-1e-12), 0.0);
    }

    #[test]
    fn lower_k2_is_slower() {
        let p = OpticalParams::paper();
        let r02 = Microring::with_k2(&p, 0.02);
        let r05 = Microring::with_k2(&p, 0.05);
        assert!(r02.time_constant() > r05.time_constant());
        assert!(r02.modulation_response(5e9) < r05.modulation_response(5e9));
    }

    #[test]
    fn bandwidth_for_k2_003_supports_5ghz() {
        // The paper picks k² = 0.03 for "temporal performance" at 5 GHz.
        let r = ring();
        assert!(
            r.bandwidth_hz() > 10e9,
            "bw = {} GHz",
            r.bandwidth_hz() / 1e9
        );
        assert!(r.modulation_response(5e9) > 0.5);
    }

    #[test]
    fn crosstalk_grows_with_channel_count() {
        let r = ring();
        let x8 = r.aggregate_crosstalk(8);
        let x20 = r.aggregate_crosstalk(20);
        let x40 = r.aggregate_crosstalk(40);
        assert!(x8 < x20 && x20 < x40);
        assert_eq!(r.aggregate_crosstalk(1), 0.0);
    }

    #[test]
    fn lower_k2_has_less_crosstalk() {
        let p = OpticalParams::paper();
        let r02 = Microring::with_k2(&p, 0.02);
        let r05 = Microring::with_k2(&p, 0.05);
        assert!(r02.rms_crosstalk(20) < r05.rms_crosstalk(20));
    }

    #[test]
    fn crosstalk_magnitude_anchor() {
        // Analytical anchor from the design doc: k² = 0.03, 20 channels
        // ⇒ nearest-neighbour drop ≈ −20 dB, aggregate ≈ 0.031.
        let r = ring();
        let x = r.aggregate_crosstalk(20);
        assert!((0.02..0.045).contains(&x), "aggregate crosstalk {x}");
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Microring::symmetric(0.0, 0.03, 1550e-9, 2.33, 4.68, 1.0).is_err());
        assert!(Microring::symmetric(5e-6, 0.0, 1550e-9, 2.33, 4.68, 1.0).is_err());
        assert!(Microring::symmetric(5e-6, 1.5, 1550e-9, 2.33, 4.68, 1.0).is_err());
    }

    #[test]
    fn mode_number_is_physical() {
        let r = ring();
        // n_eff·L/λ ≈ 2.33·31.4µm/1550nm ≈ 47.
        assert!((40..60).contains(&r.mode_number()), "{}", r.mode_number());
    }
}

//! Noise sources of the photonic dot product (paper §II-C1).
//!
//! Three sources limit the number of discernible output levels:
//!
//! * **RIN** — relative intensity noise of the lasers, a power-proportional
//!   fluctuation with PSD given in dBc/Hz. With one independent laser per
//!   wavelength, the per-channel fluctuations add in variance, so for a total
//!   photocurrent `I` spread over `N` channels the RIN variance is
//!   `I²·rin·Δf/N`.
//! * **Shot noise** (Eq. 5) — `σ² = 2·qe·I_PD·Δf`.
//! * **Thermal (Johnson–Nyquist) noise** (Eq. 6) — `σ² = 4·kB·T·Δf/Rf`,
//!   where `Rf` is the TIA feedback resistance.
//!
//! The paper's parameters are `Δf = 5 GHz`, `T = 300 K`, `RIN = −140 dBc/Hz`.
//! `Rf` is not given in the paper; the default of 5 kΩ is a typical value
//! for 5 GHz silicon-photonic receiver TIAs and is recorded as an assumption
//! in EXPERIMENTS.md.

use crate::constants::{BOLTZMANN, ELEMENTARY_CHARGE};
use crate::units::rin_dbc_to_linear;

/// Parameters of the receiver noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Detection bandwidth Δf, Hz (paper: 5 GHz).
    pub bandwidth_hz: f64,
    /// Temperature, K (paper: 300 K).
    pub temperature_k: f64,
    /// Laser RIN PSD, dBc/Hz (paper: −140 dBc/Hz).
    pub rin_dbc_per_hz: f64,
    /// TIA feedback resistance, Ω (assumed 5 kΩ; see module docs).
    pub tia_feedback_ohms: f64,
}

impl NoiseParams {
    /// The paper's §II-C1 noise parameters.
    pub fn paper() -> NoiseParams {
        NoiseParams {
            bandwidth_hz: 5e9,
            temperature_k: 300.0,
            rin_dbc_per_hz: -140.0,
            tia_feedback_ohms: 5e3,
        }
    }

    /// Same parameters at a different detection bandwidth (the aggressive
    /// estimate runs converters at 8 GS/s).
    pub fn with_bandwidth(self, bandwidth_hz: f64) -> NoiseParams {
        NoiseParams {
            bandwidth_hz,
            ..self
        }
    }

    /// Shot-noise current variance (A²) at photocurrent `i_pd` (Eq. 5).
    pub fn shot_variance(&self, i_pd: f64) -> f64 {
        2.0 * ELEMENTARY_CHARGE * i_pd.abs() * self.bandwidth_hz
    }

    /// Thermal-noise current variance (A²) (Eq. 6).
    pub fn thermal_variance(&self) -> f64 {
        4.0 * BOLTZMANN * self.temperature_k * self.bandwidth_hz / self.tia_feedback_ohms
    }

    /// RIN current variance (A²) for total photocurrent `i_pd` carried on
    /// `n_channels` wavelengths from independent lasers.
    ///
    /// # Panics
    ///
    /// Panics if `n_channels` is zero.
    pub fn rin_variance(&self, i_pd: f64, n_channels: usize) -> f64 {
        assert!(n_channels > 0, "need at least one wavelength channel");
        let rin_lin = rin_dbc_to_linear(self.rin_dbc_per_hz);
        i_pd * i_pd * rin_lin * self.bandwidth_hz / n_channels as f64
    }

    /// Total noise standard deviation (A) at photocurrent `i_pd` on
    /// `n_channels` wavelengths: the three sources are independent, so the
    /// variances add.
    pub fn total_sigma(&self, i_pd: f64, n_channels: usize) -> f64 {
        (self.shot_variance(i_pd) + self.thermal_variance() + self.rin_variance(i_pd, n_channels))
            .sqrt()
    }

    /// Breakdown of noise standard deviations `(rin, shot, thermal)` in A,
    /// useful for reproducing the "RIN contributes the least" observation.
    pub fn sigma_breakdown(&self, i_pd: f64, n_channels: usize) -> (f64, f64, f64) {
        (
            self.rin_variance(i_pd, n_channels).sqrt(),
            self.shot_variance(i_pd).sqrt(),
            self.thermal_variance().sqrt(),
        )
    }
}

impl Default for NoiseParams {
    fn default() -> NoiseParams {
        NoiseParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shot_variance_matches_eq5() {
        let n = NoiseParams::paper();
        let v = n.shot_variance(1e-3);
        let expected = 2.0 * 1.602_176_634e-19 * 1e-3 * 5e9;
        assert!((v - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn thermal_variance_matches_eq6() {
        let n = NoiseParams::paper();
        let v = n.thermal_variance();
        let expected = 4.0 * 1.380_649e-23 * 300.0 * 5e9 / 5e3;
        assert!((v - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn rin_variance_scales_with_current_squared() {
        let n = NoiseParams::paper();
        let v1 = n.rin_variance(1e-3, 10);
        let v2 = n.rin_variance(2e-3, 10);
        assert!((v2 - 4.0 * v1).abs() / v2 < 1e-12);
    }

    #[test]
    fn rin_averages_down_with_channel_count() {
        let n = NoiseParams::paper();
        assert!(n.rin_variance(1e-3, 40) < n.rin_variance(1e-3, 10));
    }

    #[test]
    fn total_sigma_dominated_by_largest_term() {
        let n = NoiseParams::paper();
        // At very small currents thermal noise dominates.
        let (rin, shot, thermal) = n.sigma_breakdown(1e-9, 20);
        assert!(thermal > shot && thermal > rin);
        // At very large currents RIN dominates (it grows ∝ I).
        let (rin, shot, thermal) = n.sigma_breakdown(0.1, 20);
        assert!(rin > shot && rin > thermal);
    }

    #[test]
    fn rin_least_at_typical_circuit_powers() {
        // Paper §II-C1: "RIN contributes the least to the total noise with
        // typical photonic circuit laser powers" — at tens of µW per channel.
        let n = NoiseParams::paper();
        let i_pd = 1.1 * 20.0 * 10e-6; // 20 channels × 10 µW × 1.1 A/W
        let (rin, shot, _thermal) = n.sigma_breakdown(i_pd, 20);
        assert!(rin < shot, "rin {rin} should be below shot {shot}");
    }

    #[test]
    fn bandwidth_scaling() {
        let n5 = NoiseParams::paper();
        let n8 = NoiseParams::paper().with_bandwidth(8e9);
        assert!(n8.shot_variance(1e-3) > n5.shot_variance(1e-3));
        assert!((n8.shot_variance(1e-3) / n5.shot_variance(1e-3) - 1.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one wavelength")]
    fn zero_channels_panics() {
        let n = NoiseParams::paper();
        let _ = n.rin_variance(1e-3, 0);
    }
}

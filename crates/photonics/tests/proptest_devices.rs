//! Property-based tests on the photonic device models: passivity,
//! monotonicity, and reciprocity invariants that must hold for any
//! physically meaningful parameterization.

use albireo_photonics::coupler::{Awg, StarCoupler};
use albireo_photonics::link::LinkBudget;
use albireo_photonics::mrr::{Microring, RingState};
use albireo_photonics::mzm::Mzm;
use albireo_photonics::noise::NoiseParams;
use albireo_photonics::photodiode::BalancedPd;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::thermal::ThermalModel;
use albireo_photonics::units::{dbm_to_watts, watts_to_dbm, Db};
use albireo_photonics::wdm::ChannelPlan;
use albireo_photonics::ybranch::{BroadcastTree, YBranch};
use albireo_photonics::OpticalParams;
use proptest::prelude::*;

proptest! {
    /// WDM multiplication applies exactly one scalar to all channels.
    #[test]
    fn mzm_wdm_is_uniform_scaling(
        weight in 0.0f64..=1.0,
        powers in proptest::collection::vec(1e-6f64..1e-2, 1..16),
    ) {
        let mut mzm = Mzm::from_params(&OpticalParams::paper());
        mzm.set_weight(weight).unwrap();
        let out = mzm.multiply_wdm(&powers);
        prop_assert_eq!(out.len(), powers.len());
        if let Some(first_nonzero) = powers.iter().position(|&p| p > 0.0) {
            let gain = out[first_nonzero] / powers[first_nonzero];
            for (o, p) in out.iter().zip(powers.iter()) {
                prop_assert!((o - p * gain).abs() < 1e-15);
            }
        }
    }

    /// Turning a ring off always reduces its drop transmission at
    /// resonance and increases its through transmission.
    #[test]
    fn ring_off_state_is_transparent(k2 in 0.01f64..0.3) {
        let mut ring = Microring::with_k2(&OpticalParams::paper(), k2);
        let drop_on = ring.drop_transmission(0.0);
        let through_on = ring.through_transmission(0.0);
        ring.set_state(RingState::Off);
        prop_assert!(ring.drop_transmission(0.0) < drop_on);
        prop_assert!(ring.through_transmission(0.0) > through_on);
    }

    /// FWHM from Eq. 9 matches the −3 dB width observed in the computed
    /// spectrum to within a few percent, for any coupling.
    #[test]
    fn fwhm_consistent_with_spectrum(k2 in 0.01f64..0.2) {
        let ring = Microring::with_k2(&OpticalParams::paper(), k2);
        let half = ring.drop_transmission(ring.fwhm() / 2.0);
        let rel = (half - ring.drop_peak() / 2.0).abs() / ring.drop_peak();
        prop_assert!(rel < 0.06, "k²={k2}: rel={rel}");
    }

    /// Finesse increases monotonically as coupling weakens.
    #[test]
    fn finesse_monotone_in_coupling(k2 in 0.02f64..0.3) {
        let p = OpticalParams::paper();
        let weak = Microring::with_k2(&p, k2 / 2.0);
        let strong = Microring::with_k2(&p, k2);
        prop_assert!(weak.finesse() > strong.finesse());
    }

    /// A star coupler conserves (at most) the power it receives, for any
    /// port configuration.
    #[test]
    fn star_coupler_passivity(
        inputs in 1usize..12,
        outputs in 1usize..12,
        power in 1e-6f64..1e-2,
    ) {
        let sc = StarCoupler::new(OpticalParams::paper().star_coupler, inputs, outputs).unwrap();
        let signal = vec![power; inputs];
        let out = sc.multicast(&signal);
        let total_out: f64 = out.iter().flatten().sum();
        let total_in: f64 = signal.iter().sum();
        prop_assert!(total_out <= total_in + 1e-15);
    }

    /// AWG demultiplexing never creates power.
    #[test]
    fn awg_passivity(powers in proptest::collection::vec(0.0f64..1e-2, 1..64)) {
        let awg = Awg::from_params(&OpticalParams::paper());
        let out = awg.demultiplex(&powers).unwrap();
        let total_out: f64 = out.iter().sum();
        let total_in: f64 = powers.iter().sum();
        prop_assert!(total_out <= total_in + 1e-15);
    }

    /// Broadcast trees: per-output power × fanout never exceeds the input.
    #[test]
    fn broadcast_tree_passivity(fanout in 1usize..64) {
        let tree = BroadcastTree::new(YBranch::from_params(&OpticalParams::paper()), fanout);
        let per_output = tree.per_output_transfer().linear();
        prop_assert!(per_output * fanout as f64 <= 1.0 + 1e-12);
    }

    /// Balanced detection is antisymmetric: swapping the rails flips the
    /// sign of the output current.
    #[test]
    fn balanced_pd_antisymmetry(p_pos in 0.0f64..1e-2, p_neg in 0.0f64..1e-2) {
        let pd = BalancedPd::from_params(&OpticalParams::paper());
        let forward = pd.output_current_total(p_pos, p_neg);
        let swapped = pd.output_current_total(p_neg, p_pos);
        prop_assert!((forward + swapped).abs() < 1e-15);
    }

    /// Total noise grows with bandwidth for any operating point.
    #[test]
    fn noise_monotone_in_bandwidth(i_pd in 1e-9f64..1e-2, n in 1usize..64) {
        let narrow = NoiseParams::paper();
        let wide = NoiseParams::paper().with_bandwidth(8e9);
        prop_assert!(wide.total_sigma(i_pd, n) > narrow.total_sigma(i_pd, n));
    }

    /// The combined precision never exceeds either individual limit.
    #[test]
    fn combined_precision_bounded(n in 2usize..64, p_mw in 0.1f64..4.0) {
        let model = PrecisionModel::paper();
        let ring = Microring::from_params(&OpticalParams::paper());
        let combined = model.combined_levels(&ring, n, p_mw * 1e-3);
        prop_assert!(combined <= model.noise_limited_levels(n, p_mw * 1e-3) + 1e-9);
        prop_assert!(combined <= model.crosstalk_limited_levels(&ring, n) + 1e-9);
        prop_assert!(combined >= 1.0);
    }

    /// dBm conversions round-trip for any power.
    #[test]
    fn dbm_round_trip(dbm in -60.0f64..30.0) {
        let back = watts_to_dbm(dbm_to_watts(dbm));
        prop_assert!((back - dbm).abs() < 1e-9);
    }

    /// Loss composition in dB equals multiplication in linear domain over
    /// arbitrary chains.
    #[test]
    fn loss_chain_composition(losses in proptest::collection::vec(0.0f64..10.0, 1..10)) {
        let total_db: Db = losses.iter().map(|&l| Db::loss(l)).sum();
        let product: f64 = losses.iter().map(|&l| Db::loss(l).linear()).product();
        prop_assert!((total_db.linear() - product).abs() / product < 1e-9);
    }

    /// Thermal drift penalty is symmetric in the sign of the excursion and
    /// monotone in its magnitude.
    #[test]
    fn thermal_penalty_symmetric_monotone(dt in 0.01f64..5.0) {
        let t = ThermalModel::silicon();
        let ring = Microring::from_params(&OpticalParams::paper());
        let plus = t.drift_penalty(&ring, dt);
        let minus = t.drift_penalty(&ring, -dt);
        prop_assert!((plus - minus).abs() < 1e-9);
        prop_assert!(t.drift_penalty(&ring, dt * 2.0) <= plus + 1e-12);
    }

    /// Channel plans keep windows disjoint for any geometry.
    #[test]
    fn channel_plan_windows_disjoint(plcus in 1usize..5, slots in 2usize..32) {
        let ring = Microring::from_params(&OpticalParams::paper());
        let plan = ChannelPlan::new(&ring, plcus, slots).unwrap();
        prop_assert_eq!(plan.len(), plcus * slots);
        let all: Vec<f64> = plan.channels().iter().map(|c| c.wavelength).collect();
        for w in all.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// Link budgets compose: output power is linear in input power.
    #[test]
    fn link_budget_linearity(p in 1e-6f64..1.0, scale in 0.1f64..10.0) {
        let b = LinkBudget::albireo_chip(&OpticalParams::paper(), 9, 3, 5, 10);
        let base = b.output_power(p);
        let scaled = b.output_power(p * scale);
        prop_assert!((scaled - base * scale).abs() / scaled < 1e-12);
    }
}

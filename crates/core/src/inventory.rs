//! Device-count derivation for an Albireo chip configuration.
//!
//! The counts below reproduce every number the paper quotes for the 9-PLCG
//! design: 306 DACs and 45 TIAs (§V), the 63-wavelength laser/modulator
//! bank, the 2430 switching MRRs behind Table III's MRR power row, and the
//! 81 star couplers / 9 AWGs behind Fig. 9's area breakdown.

use crate::config::ChipConfig;

/// Complete device inventory of an Albireo chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceInventory {
    /// Switching MRRs in the PLCU crossbars (`2·Nm·Nd·Nu·Ng`).
    pub switching_mrrs: usize,
    /// Weight MZMs in the PLCUs (`Nm·Nu·Ng`).
    pub weight_mzms: usize,
    /// Signal-generation modulators in the input bank (one per
    /// wavelength). The paper groups these with the MZMs for power/area
    /// accounting (its "MZI" rows), and this inventory follows suit via
    /// [`DeviceInventory::modulators`].
    pub input_modulators: usize,
    /// Laser sources (one per wavelength).
    pub lasers: usize,
    /// Digital-to-analog converters: one per weight MZM plus one per input
    /// modulator.
    pub dacs: usize,
    /// Analog-to-digital converters: `Nd` per PLCG aggregation unit.
    pub adcs: usize,
    /// Transimpedance amplifiers: `Nd` per PLCG aggregation unit.
    pub tias: usize,
    /// Photodiodes: `2·Nd` per PLCU (balanced pairs).
    pub photodiodes: usize,
    /// Star couplers: `Wy` per PLCU (one per kernel row).
    pub star_couplers: usize,
    /// Arrayed waveguide gratings: one per PLCG.
    pub awgs: usize,
    /// Y-branches in the broadcast tree (`Ng − 1` splits).
    pub ybranches: usize,
    /// Per-PLCG kernel caches.
    pub plcg_caches: usize,
    /// Global SRAM buffers.
    pub global_buffers: usize,
}

impl DeviceInventory {
    /// Derives the inventory from a chip configuration.
    pub fn for_chip(chip: &ChipConfig) -> DeviceInventory {
        let per_group_mzms = chip.plcu.nm * chip.nu;
        let wavelengths = chip.wavelengths_per_plcg();
        DeviceInventory {
            switching_mrrs: chip.plcu.switching_mrrs() * chip.nu * chip.ng,
            weight_mzms: per_group_mzms * chip.ng,
            input_modulators: wavelengths,
            lasers: wavelengths,
            dacs: per_group_mzms * chip.ng + wavelengths,
            adcs: chip.plcu.nd * chip.ng,
            tias: chip.plcu.nd * chip.ng,
            photodiodes: chip.plcu.photodiodes() * chip.nu * chip.ng,
            star_couplers: chip.kernel_y * chip.nu * chip.ng,
            awgs: chip.ng,
            ybranches: chip.ng.saturating_sub(1),
            plcg_caches: chip.ng,
            global_buffers: 1,
        }
    }

    /// All modulator devices (weight MZMs + input modulators): the
    /// population of the paper's "MZI" power/area rows.
    pub fn modulators(&self) -> usize {
        self.weight_mzms + self.input_modulators
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn albireo_9_counts_match_paper() {
        let inv = DeviceInventory::for_chip(&ChipConfig::albireo_9());
        // §V: "Albireo uses only 306 DACs" / "only 45 TIAs".
        assert_eq!(inv.dacs, 306);
        assert_eq!(inv.tias, 45);
        assert_eq!(inv.adcs, 45);
        // 63 wavelengths ⇒ 63 lasers and 63 input modulators.
        assert_eq!(inv.lasers, 63);
        assert_eq!(inv.input_modulators, 63);
        // 90 switching rings per PLCU × 3 × 9.
        assert_eq!(inv.switching_mrrs, 2430);
        // 9 MZMs per PLCU × 3 × 9 (+63 modulators ⇒ 306 "MZI" devices).
        assert_eq!(inv.weight_mzms, 243);
        assert_eq!(inv.modulators(), 306);
        // Passive distribution: one AWG per group, 3 star couplers per PLCU.
        assert_eq!(inv.awgs, 9);
        assert_eq!(inv.star_couplers, 81);
        // 10 PDs per PLCU × 3 × 9.
        assert_eq!(inv.photodiodes, 270);
        assert_eq!(inv.plcg_caches, 9);
        assert_eq!(inv.global_buffers, 1);
    }

    #[test]
    fn albireo_27_scales_groups_not_wavelengths() {
        let inv = DeviceInventory::for_chip(&ChipConfig::albireo_27());
        assert_eq!(inv.lasers, 63, "input bank is shared by all groups");
        assert_eq!(inv.switching_mrrs, 3 * 2430);
        assert_eq!(inv.weight_mzms, 3 * 243);
        assert_eq!(inv.dacs, 729 + 63);
        assert_eq!(inv.tias, 135);
        assert_eq!(inv.awgs, 27);
        assert_eq!(inv.star_couplers, 243);
    }

    #[test]
    fn ybranch_tree_size() {
        assert_eq!(
            DeviceInventory::for_chip(&ChipConfig::albireo_9()).ybranches,
            8
        );
        assert_eq!(
            DeviceInventory::for_chip(&ChipConfig::with_ng(1)).ybranches,
            0
        );
    }
}

//! Cycle-level dataflow tracing — the Fig. 7 reproduction.
//!
//! Figure 7 of the paper illustrates the depth-first dataflow inside one
//! PLCG: in each cycle, the `Nu` PLCUs hold the next `Nu` kernel channels,
//! the signal-generation bank modulates the matching
//! `Nu × Wy × (Nd + Wx − 1)` input field, and the `Nd` detected partials
//! are registered and accumulated until all `⌈Wz/Nu⌉` channel groups have
//! been applied, at which point the `Nd` output activations complete.
//!
//! This module generates that schedule as structured events so tests can
//! verify Algorithm 2's semantics and the bench harness can print the
//! trace.

use crate::config::ChipConfig;
use std::fmt;

/// One cycle of PLCG activity for one kernel position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCycle {
    /// Global cycle index within the trace.
    pub cycle: u64,
    /// Kernel (PLCG assignment) being applied.
    pub kernel: usize,
    /// Output row being produced.
    pub out_y: usize,
    /// First output column of the `Nd` block.
    pub out_x0: usize,
    /// Number of concurrent output columns in this block.
    pub columns: usize,
    /// First kernel channel applied this cycle.
    pub channel0: usize,
    /// Channels applied this cycle (≤ `Nu`).
    pub channels: usize,
    /// Whether this cycle completes the dot products (last channel group),
    /// triggering activation + writeback.
    pub completes_outputs: bool,
}

impl fmt::Display for TraceCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>6}: kernel {:>3} out ({:>3}, {:>3}..{:<3}) channels {:>3}..{:<3}{}",
            self.cycle,
            self.kernel,
            self.out_y,
            self.out_x0,
            self.out_x0 + self.columns,
            self.channel0,
            self.channel0 + self.channels,
            if self.completes_outputs {
                "  -> write"
            } else {
                ""
            }
        )
    }
}

/// Traces the PLCG schedule for one kernel over an output plane of
/// `out_y × out_x` with `channels` kernel channels (Algorithm 2's inner
/// loops; `Ng` kernels run these cycles in parallel on their own PLCGs).
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn trace_kernel(
    chip: &ChipConfig,
    kernel: usize,
    out_y: usize,
    out_x: usize,
    channels: usize,
) -> Vec<TraceCycle> {
    assert!(out_y > 0 && out_x > 0 && channels > 0, "empty trace");
    let nd = chip.plcu.nd;
    let nu = chip.nu;
    let mut cycles = Vec::new();
    let mut cycle = 0u64;
    for y in 0..out_y {
        let mut x0 = 0;
        while x0 < out_x {
            let columns = nd.min(out_x - x0);
            let mut c0 = 0;
            while c0 < channels {
                let group = nu.min(channels - c0);
                cycles.push(TraceCycle {
                    cycle,
                    kernel,
                    out_y: y,
                    out_x0: x0,
                    columns,
                    channel0: c0,
                    channels: group,
                    completes_outputs: c0 + group >= channels,
                });
                cycle += 1;
                c0 += group;
            }
            x0 += columns;
        }
    }
    cycles
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total cycles.
    pub cycles: u64,
    /// Output elements written.
    pub outputs_written: u64,
    /// Partial-sum register updates (the writes that stay on chip instead
    /// of spilling to memory).
    pub partial_updates: u64,
    /// Memory writebacks (one per completed output block).
    pub writebacks: u64,
}

/// Summarizes a trace.
pub fn summarize(trace: &[TraceCycle]) -> TraceSummary {
    let cycles = trace.len() as u64;
    let mut outputs = 0u64;
    let mut partials = 0u64;
    let mut writebacks = 0u64;
    for t in trace {
        if t.completes_outputs {
            outputs += t.columns as u64;
            writebacks += 1;
        } else {
            partials += t.columns as u64;
        }
    }
    TraceSummary {
        cycles,
        outputs_written: outputs,
        partial_updates: partials,
        writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipConfig {
        ChipConfig::albireo_9()
    }

    #[test]
    fn fig7_shape_nine_channels() {
        // Fig. 7's running example: Wz = 9 channels, Nu = 3 ⇒ 3 cycles per
        // output block, the third completing the dot product.
        let trace = trace_kernel(&chip(), 0, 1, 5, 9);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].channel0, 0);
        assert_eq!(trace[1].channel0, 3);
        assert_eq!(trace[2].channel0, 6);
        assert!(!trace[0].completes_outputs);
        assert!(!trace[1].completes_outputs);
        assert!(trace[2].completes_outputs);
    }

    #[test]
    fn cycle_count_matches_scheduler_formula() {
        // ⌈Bx/Nd⌉·By·⌈Wz/Nu⌉ for a 3×3 kernel that fits the PLCU.
        let c = chip();
        let trace = trace_kernel(&c, 0, 14, 14, 64);
        let expected = 14u64 * 14usize.div_ceil(5) as u64 * 64usize.div_ceil(3) as u64;
        assert_eq!(trace.len() as u64, expected);
    }

    #[test]
    fn every_output_written_exactly_once() {
        let c = chip();
        let trace = trace_kernel(&c, 0, 4, 13, 7);
        let summary = summarize(&trace);
        assert_eq!(summary.outputs_written, 4 * 13);
        // 7 channels = 3 groups; 2 partial updates per block.
        assert_eq!(summary.writebacks, 4 * 13usize.div_ceil(5) as u64);
    }

    #[test]
    fn depth_first_no_partial_writebacks() {
        // The defining property (paper §III-B): partials never leave the
        // chip; only completed activations are written.
        let trace = trace_kernel(&chip(), 0, 8, 8, 96);
        for t in &trace {
            if !t.completes_outputs {
                // A partial cycle must be followed (within its block) by
                // the completing cycle before the kernel moves.
                assert!(t.channel0 + t.channels < 96);
            }
        }
        let summary = summarize(&trace);
        assert!(summary.partial_updates > 0);
        assert_eq!(summary.outputs_written, 64);
    }

    #[test]
    fn blocks_advance_in_column_major_nd_steps() {
        let trace = trace_kernel(&chip(), 2, 2, 12, 3);
        // 12 columns in Nd=5 steps: blocks of 5, 5, 2 per row.
        let xs: Vec<(usize, usize)> = trace.iter().map(|t| (t.out_x0, t.columns)).collect();
        assert_eq!(xs[0], (0, 5));
        assert_eq!(xs[1], (5, 5));
        assert_eq!(xs[2], (10, 2));
        assert_eq!(trace[3].out_y, 1);
    }

    #[test]
    fn cycles_are_sequential() {
        let trace = trace_kernel(&chip(), 0, 3, 7, 10);
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.cycle, i as u64);
        }
    }

    #[test]
    fn display_is_readable() {
        let trace = trace_kernel(&chip(), 1, 1, 5, 6);
        let line = trace[1].to_string();
        assert!(line.contains("kernel"));
        assert!(line.contains("write"));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = trace_kernel(&chip(), 0, 0, 5, 3);
    }
}

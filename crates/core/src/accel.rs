//! The unified accelerator cost-model abstraction.
//!
//! The paper's evaluation (§IV–VI) is a *cross-accelerator* comparison:
//! Albireo against the photonic PIXEL and DEAP-CNN designs and the
//! reported electronic accelerators. Every one of those cost models is a
//! function from a network to latency/energy, so they all implement one
//! trait, [`Accelerator`], and speak one vocabulary, [`NetworkCost`] /
//! [`LayerCost`]. Everything downstream — the Fig. 8 comparison tables,
//! the CLI `compare` command, and the multi-chip serving simulator in
//! `albireo-runtime` — consumes `dyn Accelerator`, so adding a backend is
//! one trait impl, visible everywhere at once.
//!
//! Implementations in the workspace:
//!
//! * [`AlbireoAccelerator`] (here) — wraps the validated
//!   [`NetworkEvaluation`] dataflow/power models and the weight-DAC
//!   programming setup term used by the serving simulator.
//! * `Pixel` and `DeapCnn` in `albireo-baselines` — the analytic photonic
//!   baselines at the shared 60 W budget.
//! * `ReportedAccelerator` in `albireo-baselines` — published electronic
//!   results (Eyeriss, ENVISION, UNPU); supports only the networks the
//!   papers report.

use crate::config::{ChipConfig, TechnologyEstimate};
use crate::energy::NetworkEvaluation;
use crate::inventory::DeviceInventory;
use albireo_nn::Model;

/// Per-layer cost of one inference. This is the canonical per-layer
/// vocabulary; `energy::LayerEvaluation` is an alias of it.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Layer name.
    pub name: String,
    /// Cycles.
    pub cycles: u64,
    /// Latency, s.
    pub latency_s: f64,
    /// Energy, J.
    pub energy_j: f64,
    /// MACs performed.
    pub macs: u64,
    /// Datapath utilization.
    pub utilization: f64,
}

/// Whole-network cost of one inference on some accelerator — the common
/// currency every [`Accelerator`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Accelerator name (e.g. `albireo_9`, `PIXEL`).
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Total compute cycles (0 where the model has no cycle notion, e.g.
    /// reported electronic results).
    pub cycles: u64,
    /// Inference latency, s.
    pub latency_s: f64,
    /// Inference energy, J.
    pub energy_j: f64,
    /// Power while running, W.
    pub power_w: f64,
    /// Wavelengths used for computation (the paper's WDM-efficiency
    /// denominator; 0 for electronic designs).
    pub wavelengths: usize,
    /// One-time per-batch setup (weight programming), s.
    pub setup_s: f64,
    /// Energy of the setup pass, J.
    pub setup_energy_j: f64,
    /// Per-layer costs (empty where the model has no layer resolution).
    pub per_layer: Vec<LayerCost>,
}

impl NetworkCost {
    /// Energy-delay product in the paper's units, mJ·ms.
    pub fn edp_mj_ms(&self) -> f64 {
        (self.energy_j * 1e3) * (self.latency_s * 1e3)
    }

    /// The paper's WDM efficiency metric (§IV-B): energy per wavelength
    /// used, J. Designs that report zero wavelengths (electronic) divide
    /// by one.
    pub fn energy_per_wavelength(&self) -> f64 {
        self.energy_j / self.wavelengths.max(1) as f64
    }

    /// Achieved throughput, GOPS (one operation per MAC, the paper's
    /// Table IV convention). Zero where the model has no cycle/MAC
    /// notion.
    pub fn gops(&self) -> f64 {
        if self.latency_s > 0.0 {
            self.per_layer.iter().map(|l| l.macs).sum::<u64>() as f64 / self.latency_s / 1e9
        } else {
            0.0
        }
    }
}

/// A CNN accelerator cost model.
///
/// The trait is object-safe: the serving fleet holds `Arc<dyn
/// Accelerator>` and the comparison harnesses iterate over `Box<dyn
/// Accelerator>`.
///
/// # Degradation
///
/// Every accelerator exposes a count of interchangeable *compute groups*
/// — PLCGs for Albireo, OO MAC units for PIXEL, engines for DEAP-CNN —
/// and costs an inference for any active subset via
/// [`cost_with_groups`](Accelerator::cost_with_groups). The serving
/// simulator retires groups through its fault scenarios and re-costs work
/// from the surviving fraction, so degradation follows each design's own
/// scaling law rather than an ad-hoc slowdown factor.
pub trait Accelerator: Send + Sync {
    /// Short machine-friendly name (used in fleet labels and CSV rows).
    fn name(&self) -> &str;

    /// Human-facing description for comparison tables (defaults to
    /// [`name`](Accelerator::name)).
    fn description(&self) -> String {
        self.name().to_string()
    }

    /// Number of interchangeable compute groups the design is built from.
    fn compute_groups(&self) -> usize;

    /// Whether this accelerator can run `model` at all. Analytic models
    /// accept everything; reported-number models accept only the networks
    /// their papers measured.
    fn supports(&self, model: &Model) -> bool {
        let _ = model;
        true
    }

    /// Cost of one inference with `active_groups` of the design's compute
    /// groups healthy.
    ///
    /// # Panics
    ///
    /// Panics if `active_groups` is zero or exceeds
    /// [`compute_groups`](Accelerator::compute_groups), or if the model is
    /// not [`supports`](Accelerator::supports)ed.
    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost;

    /// Cost of one inference on the healthy design.
    fn cost(&self, model: &Model) -> NetworkCost {
        self.cost_with_groups(model, self.compute_groups())
    }

    /// Power the chip draws while provisioned but not serving, W.
    ///
    /// Photonic accelerators cannot power-gate to zero: the laser must
    /// stay locked and the microring resonators thermally tuned to their
    /// resonances, or the chip pays a (multi-ms) re-lock penalty that
    /// would dwarf any serving-scale warm-up. Electronic designs clock-
    /// and power-gate aggressively, so the default is 0 W. The serving
    /// simulator charges this for every provisioned-but-idle second when
    /// an autoscaling policy enables idle accounting.
    fn idle_power_w(&self) -> f64 {
        0.0
    }
}

/// The Albireo chip as an [`Accelerator`]: a [`ChipConfig`] under a
/// [`TechnologyEstimate`], costed through the validated
/// [`NetworkEvaluation`] dataflow/power models.
///
/// The serving-specific setup term models Albireo's depth-first dataflow
/// reprogramming every weight DAC once per inference: consecutive
/// same-network inferences in a micro-batch share one weight-programming
/// pass of `total_params / (dacs × clock)` seconds at chip power.
#[derive(Debug, Clone, PartialEq)]
pub struct AlbireoAccelerator {
    /// Display name (e.g. `albireo_9`).
    pub name: String,
    /// Chip geometry.
    pub chip: ChipConfig,
    /// Device-technology estimate (sets clock and power).
    pub estimate: TechnologyEstimate,
}

impl AlbireoAccelerator {
    /// An Albireo chip with an explicit name.
    pub fn new(name: impl Into<String>, chip: ChipConfig, estimate: TechnologyEstimate) -> Self {
        AlbireoAccelerator {
            name: name.into(),
            chip,
            estimate,
        }
    }

    /// The paper's 9-PLCG chip under an estimate.
    pub fn albireo_9(estimate: TechnologyEstimate) -> Self {
        Self::new("albireo_9", ChipConfig::albireo_9(), estimate)
    }

    /// The paper's 27-PLCG chip under an estimate.
    pub fn albireo_27(estimate: TechnologyEstimate) -> Self {
        Self::new("albireo_27", ChipConfig::albireo_27(), estimate)
    }
}

impl Accelerator for AlbireoAccelerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> String {
        format!("Albireo-{} ({} est.)", self.chip.ng, self.estimate.suffix())
    }

    fn compute_groups(&self) -> usize {
        self.chip.ng
    }

    /// The always-on photonic floor: laser plus MRR thermal tuning from
    /// the Table III breakdown. These stay powered while the chip idles
    /// (losing thermal lock costs far more than it saves at serving
    /// timescales); DACs, ADCs, TIAs, and modulators gate off with the
    /// datapath.
    fn idle_power_w(&self) -> f64 {
        let b = crate::power::PowerBreakdown::for_chip(&self.chip, self.estimate);
        b.laser_w + b.mrr_w
    }

    fn cost_with_groups(&self, model: &Model, active_groups: usize) -> NetworkCost {
        assert!(
            active_groups > 0 && active_groups <= self.chip.ng,
            "{}: active groups {active_groups} outside 1..={}",
            self.name,
            self.chip.ng
        );
        let mut chip = self.chip;
        chip.ng = active_groups;
        let eval = NetworkEvaluation::evaluate(&chip, self.estimate, model);
        let inv = DeviceInventory::for_chip(&chip);
        let clock = self.estimate.clock_hz();
        let setup_s = model.total_params() as f64 / (inv.dacs as f64 * clock);
        NetworkCost {
            accelerator: self.name.clone(),
            network: eval.network,
            cycles: eval.per_layer.iter().map(|l| l.cycles).sum(),
            latency_s: eval.latency_s,
            energy_j: eval.energy_j,
            power_w: eval.power_w,
            wavelengths: chip.wavelengths_per_plcg(),
            setup_s,
            setup_energy_j: eval.power_w * setup_s,
            per_layer: eval.per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn albireo_cost_matches_network_evaluation_bit_for_bit() {
        let accel = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        for model in zoo::all_benchmarks() {
            let cost = accel.cost(&model);
            let eval = NetworkEvaluation::evaluate(
                &ChipConfig::albireo_9(),
                TechnologyEstimate::Conservative,
                &model,
            );
            assert_eq!(cost.latency_s.to_bits(), eval.latency_s.to_bits());
            assert_eq!(cost.energy_j.to_bits(), eval.energy_j.to_bits());
            assert_eq!(cost.power_w.to_bits(), eval.power_w.to_bits());
            assert_eq!(cost.per_layer, eval.per_layer);
            assert_eq!(cost.edp_mj_ms().to_bits(), eval.edp_mj_ms().to_bits());
        }
    }

    #[test]
    fn setup_term_matches_the_serving_model() {
        let accel = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        let model = zoo::alexnet();
        let cost = accel.cost(&model);
        let inv = DeviceInventory::for_chip(&ChipConfig::albireo_9());
        let clock = TechnologyEstimate::Conservative.clock_hz();
        let expected = model.total_params() as f64 / (inv.dacs as f64 * clock);
        assert_eq!(cost.setup_s.to_bits(), expected.to_bits());
        assert_eq!(
            cost.setup_energy_j.to_bits(),
            (cost.power_w * expected).to_bits()
        );
        // §Serving: AlexNet's setup is a material fraction of its latency.
        assert!(cost.setup_s / cost.latency_s > 0.1);
    }

    #[test]
    fn degraded_chip_costs_more() {
        let accel = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        let model = zoo::vgg16();
        let healthy = accel.cost(&model);
        let degraded = accel.cost_with_groups(&model, 5);
        assert!(degraded.latency_s > healthy.latency_s);
        assert_eq!(healthy.accelerator, "albireo_9");
    }

    #[test]
    fn trait_objects_are_usable() {
        let accels: Vec<Box<dyn Accelerator>> = vec![
            Box::new(AlbireoAccelerator::albireo_9(
                TechnologyEstimate::Conservative,
            )),
            Box::new(AlbireoAccelerator::albireo_27(
                TechnologyEstimate::Aggressive,
            )),
        ];
        let model = zoo::mobilenet();
        for a in &accels {
            assert!(a.supports(&model));
            let c = a.cost(&model);
            assert!(c.latency_s > 0.0 && c.energy_j > 0.0);
            assert_eq!(c.network, "MobileNet");
            assert!(c.gops() > 0.0);
        }
        assert!(accels[1].cost(&model).latency_s < accels[0].cost(&model).latency_s);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_groups_rejected() {
        let accel = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        let _ = accel.cost_with_groups(&zoo::tiny(), 0);
    }

    #[test]
    fn idle_power_is_the_laser_plus_mrr_floor() {
        let accel = AlbireoAccelerator::albireo_9(TechnologyEstimate::Conservative);
        let b = crate::power::PowerBreakdown::for_chip(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
        );
        assert_eq!(accel.idle_power_w(), b.laser_w + b.mrr_w);
        // Table III: laser 2.36 W + MRR 7.52 W ≈ 9.9 W of 22.7 W total —
        // idle is material but well below running power.
        assert!(accel.idle_power_w() > 5.0);
        let running = accel.cost(&zoo::alexnet()).power_w;
        assert!(accel.idle_power_w() < running);
    }

    #[test]
    fn wdm_metric_uses_the_chip_wavelength_count() {
        let accel = AlbireoAccelerator::albireo_27(TechnologyEstimate::Conservative);
        let c = accel.cost(&zoo::alexnet());
        assert_eq!(
            c.wavelengths,
            ChipConfig::albireo_27().wavelengths_per_plcg()
        );
        let expected = c.energy_j / c.wavelengths as f64;
        assert!((c.energy_per_wavelength() - expected).abs() < 1e-18);
    }
}

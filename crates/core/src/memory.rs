//! Memory subsystem model.
//!
//! The paper models its 7 nm FinFET SRAM with PCACTI and reports only the
//! derived quantities: the 256 kB global buffer footprint (0.59×0.34 mm²),
//! the 16 kB per-PLCG kernel cache footprint (0.092×0.085 mm²), and the
//! total cache power (0.03 W for Albireo-9 in Table III). This module takes
//! those reported values as calibration anchors and adds a per-access
//! dynamic-energy model for sensitivity studies; the substitution is
//! recorded in DESIGN.md.

use crate::config::ChipConfig;

/// SRAM leakage/area/access model calibrated to the paper's PCACTI results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Global buffer leakage + refresh power, W.
    pub global_buffer_w: f64,
    /// Per-PLCG kernel cache leakage power, W.
    pub plcg_cache_w: f64,
    /// Global buffer footprint, m².
    pub global_buffer_area_m2: f64,
    /// Kernel cache footprint, m².
    pub plcg_cache_area_m2: f64,
    /// Dynamic energy per byte accessed in the global buffer, J
    /// (7 nm SRAM-class value, ~0.2 pJ/byte).
    pub buffer_access_j_per_byte: f64,
    /// Dynamic energy per byte accessed in a kernel cache, J.
    pub cache_access_j_per_byte: f64,
}

impl MemoryModel {
    /// The paper-calibrated model: 9 caches + 1 buffer total 0.03 W static.
    pub fn paper() -> MemoryModel {
        MemoryModel {
            global_buffer_w: 3.3e-3,
            plcg_cache_w: 2.966e-3,
            global_buffer_area_m2: 0.59e-3 * 0.34e-3,
            plcg_cache_area_m2: 0.092e-3 * 0.085e-3,
            buffer_access_j_per_byte: 0.2e-12,
            cache_access_j_per_byte: 0.05e-12,
        }
    }

    /// Static memory power for a chip configuration, W.
    pub fn static_power_w(&self, chip: &ChipConfig) -> f64 {
        self.global_buffer_w + self.plcg_cache_w * chip.ng as f64
    }

    /// Total memory area for a chip configuration, m².
    pub fn area_m2(&self, chip: &ChipConfig) -> f64 {
        self.global_buffer_area_m2 + self.plcg_cache_area_m2 * chip.ng as f64
    }

    /// Dynamic energy of moving `bytes` through the global buffer, J.
    pub fn buffer_access_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.buffer_access_j_per_byte
    }

    /// Dynamic energy of moving `bytes` through a kernel cache, J.
    pub fn cache_access_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.cache_access_j_per_byte
    }
}

impl Default for MemoryModel {
    fn default() -> MemoryModel {
        MemoryModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn albireo_9_static_power_matches_table_iii() {
        let m = MemoryModel::paper();
        let p = m.static_power_w(&ChipConfig::albireo_9());
        assert!((p - 0.03).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn area_matches_reported_footprints() {
        let m = MemoryModel::paper();
        let a = m.area_m2(&ChipConfig::albireo_9());
        // 0.2006 mm² + 9 × 0.00782 mm² ≈ 0.271 mm².
        assert!((a * 1e6 - 0.271).abs() < 0.005, "a = {} mm²", a * 1e6);
    }

    #[test]
    fn more_groups_more_power() {
        let m = MemoryModel::paper();
        assert!(
            m.static_power_w(&ChipConfig::albireo_27())
                > m.static_power_w(&ChipConfig::albireo_9())
        );
    }

    #[test]
    fn access_energy_scales_with_bytes() {
        let m = MemoryModel::paper();
        assert_eq!(
            m.buffer_access_energy_j(1000),
            1000.0 * m.buffer_access_j_per_byte
        );
        assert!(m.cache_access_energy_j(100) < m.buffer_access_energy_j(100));
    }
}

//! Cycle-timing feasibility: can the photonic datapath actually close
//! timing at the converter-limited clock?
//!
//! The paper fixes the clock at the DAC/ADC sampling rate (5 GS/s for
//! C/M, 8 GS/s for A) and separately shows (Fig. 4b) that small ring
//! couplings are too slow. This module combines the two: it walks the
//! signal path — DAC settling, MZM/MRR modulation, optical time of flight,
//! ring charging, photodetection, TIA settling, ADC sampling — and reports
//! whether each stage supports the target cycle time, reproducing the
//! paper's conclusion that `k² = 0.03` closes 5 GHz while `k² = 0.02`
//! does not comfortably.

use crate::config::{ChipConfig, TechnologyEstimate};
use albireo_photonics::mrr::Microring;
use albireo_photonics::waveguide::Waveguide;
use albireo_photonics::OpticalParams;

/// Power-response threshold for a stage to be considered "closing" timing
/// at the clock: the ring must pass at least this fraction of its DC
/// response at the modulation frequency (3 dB = 0.5).
pub const RESPONSE_THRESHOLD: f64 = 0.5;

/// One stage of the per-cycle signal path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStage {
    /// Stage name.
    pub name: &'static str,
    /// Stage delay or settling time, s.
    pub time_s: f64,
    /// Whether the stage is pipelined (overlaps with other cycles) rather
    /// than part of the per-cycle settling budget.
    pub pipelined: bool,
}

/// A full timing report for one configuration and estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Target cycle time, s.
    pub cycle_time_s: f64,
    /// The stages in path order.
    pub stages: Vec<TimingStage>,
    /// Ring power response at the modulation rate.
    pub ring_response: f64,
    /// Whether the non-pipelined stages fit the cycle and the ring
    /// response clears [`RESPONSE_THRESHOLD`].
    pub closes_timing: bool,
}

impl TimingReport {
    /// Total non-pipelined settling time per cycle, s.
    pub fn settling_time_s(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| !s.pipelined)
            .map(|s| s.time_s)
            .sum()
    }

    /// Total optical latency through the pipelined stages, s (fill time).
    pub fn pipeline_fill_s(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.pipelined)
            .map(|s| s.time_s)
            .sum()
    }
}

/// Analyzes the timing of a chip at an estimate's clock with a given ring
/// coupling.
pub fn analyze(chip: &ChipConfig, estimate: TechnologyEstimate, k2: f64) -> TimingReport {
    let params = OpticalParams::paper();
    let ring = Microring::with_k2(&params, k2);
    let wg = Waveguide::from_params(&params);
    let clock = estimate.clock_hz();
    let cycle = 1.0 / clock;

    // Converter settling: modelled as half a sample period each (they are
    // specified at the sampling rate, so by construction they fit; the
    // margin is what matters).
    let dac_settle = 0.5 * cycle;
    let adc_sample = 0.5 * cycle;
    // Ring charge time to 90% of steady state: 2.3 time constants.
    let ring_charge = 2.3 * ring.time_constant();
    // Time of flight across the chip (~1 cm of routing + distribution) is
    // pipelined: it delays the answer but does not limit the rate.
    let flight = wg.delay(0.01) * f64::from(chip.ng.max(1) as u32).log2().max(1.0);
    // TIA settling at its bandwidth (assume matched to the clock).
    let tia_settle = 0.35 / (0.7 * clock); // 0.35/BW rise time at 0.7×clock BW

    let stages = vec![
        TimingStage {
            name: "DAC settle",
            time_s: dac_settle,
            pipelined: false,
        },
        TimingStage {
            name: "MRR charge (switch fabric)",
            time_s: ring_charge,
            pipelined: false,
        },
        TimingStage {
            name: "time of flight",
            time_s: flight,
            pipelined: true,
        },
        TimingStage {
            name: "TIA settle",
            time_s: tia_settle,
            pipelined: false,
        },
        TimingStage {
            name: "ADC sample",
            time_s: adc_sample,
            pipelined: true,
        },
    ];
    let ring_response = ring.modulation_response(clock);
    let settling: f64 = stages
        .iter()
        .filter(|s| !s.pipelined)
        .map(|s| s.time_s)
        .sum();
    TimingReport {
        cycle_time_s: cycle,
        closes_timing: settling <= cycle * 1.5 && ring_response >= RESPONSE_THRESHOLD,
        stages,
        ring_response,
    }
}

/// The fastest clock (Hz) a ring coupling supports at the response
/// threshold.
pub fn max_clock_hz(k2: f64) -> f64 {
    let ring = Microring::with_k2(&OpticalParams::paper(), k2);
    // |H(f)|² = 1/(1+(2f/Δν)²) = 0.5  ⇒  f = Δν/2.
    ring.bandwidth_hz() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_closes_5ghz() {
        let report = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.03,
        );
        assert!(report.closes_timing, "k²=0.03 must close 5 GHz: {report:?}");
        assert!(report.ring_response >= RESPONSE_THRESHOLD);
    }

    #[test]
    fn k2_002_is_marginal_at_5ghz() {
        // Fig. 4b's conclusion: k² = 0.02 has poor temporal response; its
        // margin at 5 GHz is visibly worse than k² = 0.03's.
        let strong = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.03,
        );
        let weak = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.02,
        );
        assert!(weak.ring_response < strong.ring_response);
        assert!(max_clock_hz(0.02) < max_clock_hz(0.03));
    }

    #[test]
    fn aggressive_8ghz_is_tighter() {
        let c5 = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.03,
        );
        let a8 = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Aggressive,
            0.03,
        );
        assert!(a8.cycle_time_s < c5.cycle_time_s);
        assert!(a8.ring_response < c5.ring_response);
        // The k² = 0.03 ring still clears 8 GHz (bandwidth ≈ 20.7 GHz).
        assert!(a8.closes_timing);
    }

    #[test]
    fn max_clock_scales_with_bandwidth() {
        // k² = 0.03 ⇒ Δν ≈ 20.7 GHz ⇒ max clock ≈ 10.3 GHz.
        let f = max_clock_hz(0.03);
        assert!((9e9..12e9).contains(&f), "{f}");
        let f2 = max_clock_hz(0.02);
        assert!((6e9..8e9).contains(&f2), "{f2}");
    }

    #[test]
    fn settling_and_fill_decompose() {
        let report = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.03,
        );
        let total: f64 = report.stages.iter().map(|s| s.time_s).sum();
        assert!((report.settling_time_s() + report.pipeline_fill_s() - total).abs() < 1e-18);
        assert!(report.pipeline_fill_s() > 0.0);
    }

    #[test]
    fn time_of_flight_is_pipelined_not_rate_limiting() {
        let report = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.03,
        );
        let flight = report
            .stages
            .iter()
            .find(|s| s.name == "time of flight")
            .unwrap();
        assert!(flight.pipelined);
        // ~1 cm at c/4.68 ≈ 156 ps ≫ the 200 ps cycle would be a problem
        // if it were not pipelined.
        assert!(flight.time_s > 0.5 / 5e9);
    }

    #[test]
    fn very_weak_coupling_fails_timing() {
        let report = analyze(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            0.005,
        );
        assert!(!report.closes_timing, "k²=0.005 cannot close 5 GHz");
    }
}

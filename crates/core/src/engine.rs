//! The parallel evaluation engine: deterministic fan-out of the paper's
//! evaluation grid.
//!
//! Every result table in the paper is a sweep over
//! (chip × technology estimate × network); this module turns that grid
//! into independent work items executed under a [`Parallelism`] policy.
//! All grid arithmetic is deterministic (no RNG), so parallel evaluation
//! is trivially bit-identical to serial; the analog simulation reached
//! through [`crate::analog::AnalogEngine`] keeps the same guarantee via
//! per-work-item seed splitting (see `albireo-parallel`).
//!
//! Nested parallelism is deliberately avoided: the grid is the outer
//! fan-out, so each grid point's per-layer scheduling runs serially
//! inside its work item.

use crate::config::{ChipConfig, TechnologyEstimate};
use crate::energy::NetworkEvaluation;
use albireo_nn::Model;
use albireo_parallel::Parallelism;

/// One (chip × estimate × network) grid point's result.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Chip label (e.g. `"albireo_9"`).
    pub chip_name: String,
    /// Technology estimate used.
    pub estimate: TechnologyEstimate,
    /// The full network evaluation.
    pub evaluation: NetworkEvaluation,
}

/// The evaluation engine: a [`Parallelism`] policy plus grid drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalEngine {
    par: Parallelism,
}

impl Default for EvalEngine {
    fn default() -> EvalEngine {
        EvalEngine::new(Parallelism::default())
    }
}

impl EvalEngine {
    /// An engine with an explicit parallelism policy.
    pub fn new(par: Parallelism) -> EvalEngine {
        EvalEngine { par }
    }

    /// The engine's parallelism policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Evaluates one network (per-layer scheduling runs under the
    /// engine's policy).
    pub fn evaluate(
        &self,
        chip: &ChipConfig,
        estimate: TechnologyEstimate,
        model: &Model,
    ) -> NetworkEvaluation {
        NetworkEvaluation::evaluate_with(chip, estimate, model, self.par)
    }

    /// Evaluates the full (chip × estimate × network) grid, fanning the
    /// grid points across threads. Results are returned in grid order
    /// (chips outermost, networks innermost) regardless of thread count.
    pub fn evaluate_grid(
        &self,
        chips: &[(String, ChipConfig)],
        estimates: &[TechnologyEstimate],
        models: &[Model],
    ) -> Vec<GridResult> {
        let n = chips.len() * estimates.len() * models.len();
        self.par.map_indexed(n, |i| {
            let per_chip = estimates.len() * models.len();
            let (ci, rest) = (i / per_chip, i % per_chip);
            let (ei, mi) = (rest / models.len(), rest % models.len());
            let (name, chip) = &chips[ci];
            // Grid points are the outer fan-out; keep the inner
            // scheduling serial so worker counts do not multiply.
            let evaluation = NetworkEvaluation::evaluate_with(
                chip,
                estimates[ei],
                &models[mi],
                Parallelism::serial(),
            );
            GridResult {
                chip_name: name.clone(),
                estimate: estimates[ei],
                evaluation,
            }
        })
    }
}

/// The paper's standard grid: both chips, all three estimates, all four
/// benchmark networks (Tables II/IV).
pub fn paper_grid() -> (
    Vec<(String, ChipConfig)>,
    Vec<TechnologyEstimate>,
    Vec<Model>,
) {
    let chips = vec![
        ("albireo_9".to_string(), ChipConfig::albireo_9()),
        ("albireo_27".to_string(), ChipConfig::albireo_27()),
    ];
    let estimates = vec![
        TechnologyEstimate::Conservative,
        TechnologyEstimate::Moderate,
        TechnologyEstimate::Aggressive,
    ];
    let models = albireo_nn::zoo::all_benchmarks();
    (chips, estimates, models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn grid_order_is_stable_across_thread_counts() {
        let (chips, estimates, models) = paper_grid();
        let serial =
            EvalEngine::new(Parallelism::serial()).evaluate_grid(&chips, &estimates, &models);
        assert_eq!(serial.len(), 2 * 3 * 4);
        for threads in [2, 8] {
            let par = EvalEngine::new(Parallelism::with_threads(threads))
                .evaluate_grid(&chips, &estimates, &models);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn grid_layout_matches_indexing() {
        let (chips, estimates, models) = paper_grid();
        let grid = EvalEngine::default().evaluate_grid(&chips, &estimates, &models);
        // Chips outermost: first half is albireo_9, second albireo_27.
        assert!(grid[..12].iter().all(|g| g.chip_name == "albireo_9"));
        assert!(grid[12..].iter().all(|g| g.chip_name == "albireo_27"));
        // Networks innermost: the model cycle repeats every 4 entries.
        let names: Vec<&str> = grid[..4]
            .iter()
            .map(|g| g.evaluation.network.as_str())
            .collect();
        assert_eq!(names.len(), 4);
        for chunk in grid.chunks(4) {
            let chunk_names: Vec<&str> = chunk
                .iter()
                .map(|g| g.evaluation.network.as_str())
                .collect();
            assert_eq!(chunk_names, names);
        }
    }

    #[test]
    fn engine_evaluate_matches_direct_evaluation() {
        let chip = ChipConfig::albireo_9();
        let model = zoo::alexnet();
        let direct = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        let engine = EvalEngine::new(Parallelism::with_threads(4));
        let via_engine = engine.evaluate(&chip, TechnologyEstimate::Conservative, &model);
        assert_eq!(direct, via_engine);
    }
}

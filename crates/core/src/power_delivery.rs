//! Optical power delivery: how much laser power does each precision
//! target actually require?
//!
//! This closes the loop between Fig. 3 (precision vs laser power at the
//! detector) and Table I (per-laser electrical powers): starting from the
//! chip's link budget, it computes the per-channel power reaching the
//! photodiodes for a given laser, the resulting noise-limited precision,
//! and — inverted — the minimum laser power for a bit target. It verifies
//! that the conservative 37.5 mW laser sustains the 8-bit deployment
//! target through the full Albireo-9 link.

use crate::config::ChipConfig;
use albireo_photonics::link::LinkBudget;
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::OpticalParams;

/// Power-delivery analysis for one chip configuration.
#[derive(Debug, Clone)]
pub struct PowerDelivery {
    chip: ChipConfig,
    budget: LinkBudget,
    model: PrecisionModel,
    ring: Microring,
}

impl PowerDelivery {
    /// Builds the analysis for a chip, using the paper's optical
    /// parameters and ~1 cm of on-chip routing.
    pub fn new(chip: &ChipConfig) -> PowerDelivery {
        let params = OpticalParams::paper();
        PowerDelivery {
            chip: *chip,
            budget: LinkBudget::albireo_chip(&params, chip.ng, chip.kernel_x, chip.plcu.nd, 10),
            model: PrecisionModel::paper(),
            ring: Microring::from_params(&params),
        }
    }

    /// The end-to-end link loss, dB.
    pub fn link_loss_db(&self) -> f64 {
        self.budget.total_loss_db()
    }

    /// Per-channel power at the photodiodes for a given laser power, W.
    pub fn power_at_pd(&self, laser_power_w: f64) -> f64 {
        self.budget.output_power(laser_power_w)
    }

    /// Noise-limited precision (bits) delivered by a laser power through
    /// the link, at the chip's per-PLCU wavelength count.
    pub fn noise_bits(&self, laser_power_w: f64) -> f64 {
        self.model.noise_limited_bits(
            self.chip.wavelengths_per_plcu(),
            self.power_at_pd(laser_power_w),
        )
    }

    /// Combined (noise + crosstalk) precision in bits, negative rail
    /// included — the deliverable analog precision of the deployed chip.
    pub fn delivered_bits(&self, laser_power_w: f64) -> f64 {
        let n = self.chip.wavelengths_per_plcu();
        let levels = self
            .model
            .combined_levels(&self.ring, n, self.power_at_pd(laser_power_w));
        PrecisionModel::with_negative_rail(levels).log2()
    }

    /// Minimum laser power (W) whose *noise-limited* precision reaches
    /// `bits`, found by bisection. Returns `None` if even 1 W falls short
    /// (e.g. a crosstalk-limited target).
    pub fn min_laser_power_for_noise_bits(&self, bits: f64) -> Option<f64> {
        let mut lo = 1e-6;
        let mut hi = 1.0;
        if self.noise_bits(hi) < bits {
            return None;
        }
        if self.noise_bits(lo) >= bits {
            return Some(lo);
        }
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            if self.noise_bits(mid) >= bits {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// Total optical (laser) power injected into the chip for a
    /// per-channel laser power, W.
    pub fn total_optical_power(&self, laser_power_w: f64) -> f64 {
        laser_power_w * self.chip.wavelengths_per_plcg() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery() -> PowerDelivery {
        PowerDelivery::new(&ChipConfig::albireo_9())
    }

    #[test]
    fn link_loss_is_tens_of_db() {
        let d = delivery();
        assert!(
            (20.0..30.0).contains(&d.link_loss_db()),
            "{}",
            d.link_loss_db()
        );
    }

    #[test]
    fn conservative_laser_delivers_8_noise_bits() {
        // The 37.5 mW conservative laser must sustain the 8-bit deployment
        // target at the noise floor through the full chip link.
        let d = delivery();
        let bits = d.noise_bits(37.5e-3);
        assert!(bits >= 8.0, "bits = {bits}");
    }

    #[test]
    fn delivered_bits_are_crosstalk_limited_at_high_power() {
        // Past a few mW, the 21-λ crosstalk floor (≈6.8 bits with the
        // negative rail) dominates — more laser power stops helping.
        let d = delivery();
        let at_10mw = d.delivered_bits(10e-3);
        let at_40mw = d.delivered_bits(37.5e-3);
        assert!((at_40mw - at_10mw) < 0.3, "{at_10mw} -> {at_40mw}");
        assert!((6.0..7.2).contains(&at_40mw), "{at_40mw}");
    }

    #[test]
    fn min_power_bisection_is_consistent() {
        let d = delivery();
        let p = d
            .min_laser_power_for_noise_bits(8.0)
            .expect("8 bits reachable");
        assert!(d.noise_bits(p) >= 8.0);
        assert!(d.noise_bits(p * 0.5) < 8.0);
        // The requirement sits below the conservative 37.5 mW device.
        assert!(p < 37.5e-3, "p = {p}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        let d = delivery();
        assert!(d.min_laser_power_for_noise_bits(20.0).is_none());
    }

    #[test]
    fn bigger_chips_need_more_laser_power() {
        // Broadcasting to 27 groups costs ~4.8 dB more than 9 groups.
        let d9 = PowerDelivery::new(&ChipConfig::albireo_9());
        let d27 = PowerDelivery::new(&ChipConfig::albireo_27());
        assert!(d27.link_loss_db() > d9.link_loss_db());
        let p9 = d9.min_laser_power_for_noise_bits(8.0).unwrap();
        let p27 = d27.min_laser_power_for_noise_bits(8.0).unwrap();
        assert!(p27 > p9);
    }

    #[test]
    fn total_optical_power_counts_all_channels() {
        let d = delivery();
        assert!((d.total_optical_power(2e-3) - 63.0 * 2e-3).abs() < 1e-12);
    }
}

//! Architecture configuration and the Table I device-power estimates.

use albireo_photonics::OpticalParams;

/// Geometry of one photonic locally-connected unit (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlcuConfig {
    /// Number of input waveguides / weight MZMs `Nm` (paper: 9, one full
    /// 3×3 kernel channel).
    pub nm: usize,
    /// Number of balanced-PD output columns `Nd` (paper: 5).
    pub nd: usize,
}

impl PlcuConfig {
    /// The paper's 9×5 PLCU.
    pub fn paper() -> PlcuConfig {
        PlcuConfig { nm: 9, nd: 5 }
    }

    /// Switching MRRs in the unit: two (positive/negative rail) per
    /// MZM-output crossing.
    pub fn switching_mrrs(&self) -> usize {
        2 * self.nm * self.nd
    }

    /// Photodiodes in the unit: one balanced pair per output column.
    pub fn photodiodes(&self) -> usize {
        2 * self.nd
    }
}

impl Default for PlcuConfig {
    fn default() -> PlcuConfig {
        PlcuConfig::paper()
    }
}

/// Full chip configuration (paper §III-B/C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipConfig {
    /// PLCU geometry.
    pub plcu: PlcuConfig,
    /// PLCUs per PLCG `Nu` (paper: 3, bounded by the 64-wavelength
    /// distribution network at 21 wavelengths per PLCU).
    pub nu: usize,
    /// PLCGs per chip `Ng` (paper: 9 for the area-constrained design, 27
    /// for the 60 W power-scaled comparison).
    pub ng: usize,
    /// Kernel height `Wy` assumed by the wavelength plan (paper: 3).
    pub kernel_y: usize,
    /// Kernel width `Wx` assumed by the wavelength plan (paper: 3).
    pub kernel_x: usize,
    /// Global SRAM buffer capacity, bytes (paper: 256 kB).
    pub global_buffer_bytes: usize,
    /// Per-PLCG kernel cache capacity, bytes (paper: 16 kB).
    pub plcg_cache_bytes: usize,
    /// Model the reduced receptive-field parallelism of strided
    /// convolutions (the fixed `Nd + Wx − 1` multicast width fits fewer
    /// stride-`S` fields). Enabled by default; the paper does not state its
    /// treatment.
    pub model_stride_penalty: bool,
}

impl ChipConfig {
    /// The paper's primary 9-PLCG, 22.7 W design.
    pub fn albireo_9() -> ChipConfig {
        ChipConfig {
            plcu: PlcuConfig::paper(),
            nu: 3,
            ng: 9,
            kernel_y: 3,
            kernel_x: 3,
            global_buffer_bytes: 256 * 1024,
            plcg_cache_bytes: 16 * 1024,
            model_stride_penalty: true,
        }
    }

    /// The paper's 27-PLCG design scaled to the 60 W comparison budget.
    pub fn albireo_27() -> ChipConfig {
        ChipConfig {
            ng: 27,
            ..ChipConfig::albireo_9()
        }
    }

    /// A design with an arbitrary PLCG count (for scaling studies).
    pub fn with_ng(ng: usize) -> ChipConfig {
        assert!(ng > 0, "need at least one PLCG");
        ChipConfig {
            ng,
            ..ChipConfig::albireo_9()
        }
    }

    /// Wavelengths used by one PLCU: `Wy·(Nd + Wx − 1)` (paper §III-A;
    /// 21 for the 9×5 design).
    pub fn wavelengths_per_plcu(&self) -> usize {
        self.kernel_y * (self.plcu.nd + self.kernel_x - 1)
    }

    /// Wavelengths used by one PLCG: `Nu` PLCUs in disjoint FSRs (63 for
    /// the paper design, within the 64-channel distribution network).
    pub fn wavelengths_per_plcg(&self) -> usize {
        self.nu * self.wavelengths_per_plcu()
    }

    /// Peak multiply-accumulates per cycle: `Ng·Nu·Nd·Nm`.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.ng * self.nu * self.plcu.nd * self.plcu.nm) as u64
    }

    /// The optical parameter set shared by all estimates (Table II).
    pub fn optical_params(&self) -> OpticalParams {
        OpticalParams::paper()
    }
}

impl Default for ChipConfig {
    fn default() -> ChipConfig {
        ChipConfig::albireo_9()
    }
}

/// The three device-technology estimates of the evaluation (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyEstimate {
    /// Demonstrated devices (Table I column 1) at 5 GS/s.
    Conservative,
    /// Device targets matching state-of-the-art electronic accelerator
    /// energy (column 2) at 5 GS/s.
    Moderate,
    /// Future devices making Albireo a high-performance successor
    /// (column 3) at 8 GS/s.
    Aggressive,
}

impl TechnologyEstimate {
    /// All three estimates in paper order.
    pub fn all() -> [TechnologyEstimate; 3] {
        [
            TechnologyEstimate::Conservative,
            TechnologyEstimate::Moderate,
            TechnologyEstimate::Aggressive,
        ]
    }

    /// The paper's suffix for this estimate (`C`, `M`, `A`).
    pub fn suffix(&self) -> &'static str {
        match self {
            TechnologyEstimate::Conservative => "C",
            TechnologyEstimate::Moderate => "M",
            TechnologyEstimate::Aggressive => "A",
        }
    }

    /// The per-device powers of Table I.
    pub fn device_powers(&self) -> DevicePowers {
        match self {
            TechnologyEstimate::Conservative => DevicePowers {
                mrr_w: 3.1e-3,
                mzm_w: 11.3e-3,
                laser_w: 37.5e-3,
                tia_w: 3e-3,
                adc_w: 29e-3,
                dac_w: 26e-3,
                sample_rate_hz: 5e9,
            },
            TechnologyEstimate::Moderate => DevicePowers {
                mrr_w: 388e-6,
                mzm_w: 1.41e-3,
                laser_w: 1.38e-3,
                tia_w: 1.5e-3,
                adc_w: 14.5e-3,
                dac_w: 13e-3,
                sample_rate_hz: 5e9,
            },
            // Table I lists a 1.38 mW aggressive laser, but the paper's own
            // Table III laser row (0.12 W for 63 lasers) implies ≈ 1.9 mW —
            // consistent with scaling laser power to hold precision at the
            // 8 GS/s bandwidth. We use the Table III-implied value and
            // record the discrepancy in EXPERIMENTS.md.
            TechnologyEstimate::Aggressive => DevicePowers {
                mrr_w: 155e-6,
                mzm_w: 565e-6,
                laser_w: 1.9e-3,
                tia_w: 300e-6,
                adc_w: 2.9e-3,
                dac_w: 2.6e-3,
                sample_rate_hz: 8e9,
            },
        }
    }

    /// Modulation clock of the photonic datapath: limited by the converter
    /// sampling rate (paper §IV-A).
    pub fn clock_hz(&self) -> f64 {
        self.device_powers().sample_rate_hz
    }
}

/// Per-device electrical powers (paper Table I), in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePowers {
    /// Active microring (switching/modulating), W.
    pub mrr_w: f64,
    /// Mach-Zehnder modulator, W.
    pub mzm_w: f64,
    /// Laser source (per wavelength), W.
    pub laser_w: f64,
    /// Transimpedance amplifier, W.
    pub tia_w: f64,
    /// Analog-to-digital converter, W.
    pub adc_w: f64,
    /// Digital-to-analog converter, W.
    pub dac_w: f64,
    /// Converter sampling rate, S/s.
    pub sample_rate_hz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plcu_geometry() {
        let p = PlcuConfig::paper();
        assert_eq!(p.nm, 9);
        assert_eq!(p.nd, 5);
        assert_eq!(p.switching_mrrs(), 90);
        assert_eq!(p.photodiodes(), 10);
    }

    #[test]
    fn wavelength_plan_matches_paper() {
        let c = ChipConfig::albireo_9();
        assert_eq!(c.wavelengths_per_plcu(), 21);
        assert_eq!(c.wavelengths_per_plcg(), 63);
        assert!(c.wavelengths_per_plcg() <= 64, "fits the 64-λ network");
    }

    #[test]
    fn peak_throughput() {
        let c = ChipConfig::albireo_9();
        // 9·3·5·9 = 1215 MACs per cycle; at 5 GHz ⇒ 6.075 TMAC/s.
        assert_eq!(c.peak_macs_per_cycle(), 1215);
        let c27 = ChipConfig::albireo_27();
        assert_eq!(c27.peak_macs_per_cycle(), 3645);
    }

    #[test]
    fn table_i_values() {
        let c = TechnologyEstimate::Conservative.device_powers();
        assert_eq!(c.mrr_w, 3.1e-3);
        assert_eq!(c.mzm_w, 11.3e-3);
        assert_eq!(c.laser_w, 37.5e-3);
        assert_eq!(c.adc_w, 29e-3);
        let m = TechnologyEstimate::Moderate.device_powers();
        assert_eq!(m.mrr_w, 388e-6);
        assert_eq!(m.dac_w, 13e-3);
        let a = TechnologyEstimate::Aggressive.device_powers();
        assert_eq!(a.mrr_w, 155e-6);
        assert_eq!(a.sample_rate_hz, 8e9);
    }

    #[test]
    fn clocks_match_converter_rates() {
        assert_eq!(TechnologyEstimate::Conservative.clock_hz(), 5e9);
        assert_eq!(TechnologyEstimate::Moderate.clock_hz(), 5e9);
        assert_eq!(TechnologyEstimate::Aggressive.clock_hz(), 8e9);
    }

    #[test]
    fn estimates_are_strictly_cheaper() {
        let c = TechnologyEstimate::Conservative.device_powers();
        let m = TechnologyEstimate::Moderate.device_powers();
        let a = TechnologyEstimate::Aggressive.device_powers();
        for (cv, mv, av) in [
            (c.mrr_w, m.mrr_w, a.mrr_w),
            (c.mzm_w, m.mzm_w, a.mzm_w),
            (c.tia_w, m.tia_w, a.tia_w),
            (c.adc_w, m.adc_w, a.adc_w),
            (c.dac_w, m.dac_w, a.dac_w),
        ] {
            assert!(cv > mv && mv > av);
        }
    }

    #[test]
    fn suffixes() {
        assert_eq!(TechnologyEstimate::Conservative.suffix(), "C");
        assert_eq!(TechnologyEstimate::Moderate.suffix(), "M");
        assert_eq!(TechnologyEstimate::Aggressive.suffix(), "A");
        assert_eq!(TechnologyEstimate::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one PLCG")]
    fn zero_plcgs_rejected() {
        let _ = ChipConfig::with_ng(0);
    }
}

//! Latency, energy, EDP, and throughput metrics (paper Table IV / Fig. 8).
//!
//! Energy is computed as the paper does: the chip's device power total
//! (Table III) integrated over the inference latency, with the memory
//! subsystem's static power included in that total. Per-layer access
//! energies are also surfaced for finer studies.

use crate::area::AreaBreakdown;
use crate::config::{ChipConfig, TechnologyEstimate};
use crate::memory::MemoryModel;
use crate::power::PowerBreakdown;
use crate::sched::{schedule_model_with, LayerSchedule};
use albireo_nn::stats::workload_stats;
use albireo_nn::Model;
use albireo_parallel::Parallelism;

/// Per-layer evaluation result — the canonical
/// [`LayerCost`](crate::accel::LayerCost) under its historical name.
pub type LayerEvaluation = crate::accel::LayerCost;

/// Whole-network evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkEvaluation {
    /// Network name.
    pub network: String,
    /// Estimate used.
    pub estimate: TechnologyEstimate,
    /// Total inference latency, s.
    pub latency_s: f64,
    /// Total inference energy, J.
    pub energy_j: f64,
    /// Chip power while running, W.
    pub power_w: f64,
    /// Total MACs.
    pub total_macs: u64,
    /// Total operations (2 per MAC).
    pub total_ops: u64,
    /// Chip area, mm².
    pub area_mm2: f64,
    /// Active area (excl. passive distribution), mm².
    pub active_area_mm2: f64,
    /// Dynamic SRAM energy for the network's data movement, J. The paper's
    /// Table III folds memory into a static power term; this field exposes
    /// the per-access model separately (it is ~0.1% of device energy,
    /// confirming the paper's treatment).
    pub memory_dynamic_energy_j: f64,
    /// Per-layer results.
    pub per_layer: Vec<LayerEvaluation>,
}

impl NetworkEvaluation {
    /// Evaluates a network on a chip under an estimate.
    pub fn evaluate(chip: &ChipConfig, estimate: TechnologyEstimate, model: &Model) -> Self {
        Self::evaluate_with(chip, estimate, model, Parallelism::default())
    }

    /// [`evaluate`](NetworkEvaluation::evaluate) under an explicit
    /// [`Parallelism`] policy (applied to the per-layer scheduling). The
    /// evaluation is pure arithmetic, so the result is identical at any
    /// thread count.
    pub fn evaluate_with(
        chip: &ChipConfig,
        estimate: TechnologyEstimate,
        model: &Model,
        par: Parallelism,
    ) -> Self {
        let clock = estimate.clock_hz();
        let power = PowerBreakdown::for_chip(chip, estimate).total_w();
        let area = AreaBreakdown::for_chip(chip);
        let schedules: Vec<LayerSchedule> = schedule_model_with(chip, model, par);
        let per_layer: Vec<LayerEvaluation> = schedules
            .into_iter()
            .map(|s| {
                let latency = s.cycles as f64 / clock;
                LayerEvaluation {
                    name: s.name,
                    cycles: s.cycles,
                    latency_s: latency,
                    energy_j: power * latency,
                    macs: s.macs,
                    utilization: s.utilization,
                }
            })
            .collect();
        let latency_s: f64 = per_layer.iter().map(|l| l.latency_s).sum();
        let mem = MemoryModel::paper();
        let stats = workload_stats(model, chip.nu);
        NetworkEvaluation {
            network: model.name().to_string(),
            estimate,
            latency_s,
            energy_j: power * latency_s,
            power_w: power,
            total_macs: model.total_macs(),
            total_ops: model.total_ops(),
            area_mm2: area.total_mm2(),
            active_area_mm2: area.active_mm2(),
            memory_dynamic_energy_j: mem.buffer_access_energy_j(stats.traffic_bytes),
            per_layer,
        }
    }

    /// [`evaluate_with`](NetworkEvaluation::evaluate_with), recording the
    /// run into `obs`: one span per layer on the engine track (virtual
    /// timestamps from the cumulative-latency clock, so traces are
    /// byte-reproducible at any thread count) plus per-device energy
    /// counters for the signal-chain stages the paper prices separately
    /// (DAC, ADC, laser). Energy counters are integer nanojoules so
    /// parallel accumulation stays exact.
    ///
    /// When `obs` is disabled this costs one branch over
    /// `evaluate_with`; the returned evaluation is identical either way.
    pub fn evaluate_observed(
        chip: &ChipConfig,
        estimate: TechnologyEstimate,
        model: &Model,
        par: Parallelism,
        obs: &albireo_obs::Obs,
    ) -> Self {
        let eval = Self::evaluate_with(chip, estimate, model, par);
        if !obs.is_enabled() {
            return eval;
        }
        let power = PowerBreakdown::for_chip(chip, estimate);
        let total_w = power.total_w();
        let mut clock_s = 0.0f64;
        for (idx, layer) in eval.per_layer.iter().enumerate() {
            let end = clock_s + layer.latency_s;
            albireo_obs::span!(
                obs,
                track = albireo_obs::track::ENGINE,
                begin = clock_s,
                end = end,
                "layer",
                idx = idx,
                cycles = layer.cycles,
                macs = layer.macs,
            );
            clock_s = end;
        }
        obs.counter("engine.layers")
            .add(eval.per_layer.len() as u64);
        obs.counter("engine.cycles")
            .add(eval.per_layer.iter().map(|l| l.cycles).sum());
        obs.counter("engine.macs").add(eval.total_macs);
        for (label, watts, _) in power.rows() {
            let key = match label {
                "DAC" => "engine.energy.dac_nj",
                "ADC" => "engine.energy.adc_nj",
                "Laser" => "engine.energy.laser_nj",
                _ => continue,
            };
            obs.counter(key)
                .add((watts * eval.latency_s * 1e9).round() as u64);
        }
        obs.counter("engine.energy.total_nj")
            .add((total_w * eval.latency_s * 1e9).round() as u64);
        eval
    }

    /// Total inference energy including the dynamic SRAM traffic, J.
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j + self.memory_dynamic_energy_j
    }

    /// Energy-delay product in the paper's units, mJ·ms.
    pub fn edp_mj_ms(&self) -> f64 {
        (self.energy_j * 1e3) * (self.latency_s * 1e3)
    }

    /// Achieved throughput, GOPS. The paper's GOPS figures count one
    /// operation per MAC (Table IV is internally consistent only under
    /// that convention), so this does too; `total_ops` (2 per MAC) is
    /// still available for cross-paper comparisons.
    pub fn gops(&self) -> f64 {
        self.total_macs as f64 / self.latency_s / 1e9
    }

    /// Area efficiency over the full chip, GOPS/mm².
    pub fn gops_per_mm2(&self) -> f64 {
        self.gops() / self.area_mm2
    }

    /// Area efficiency over the active area only, GOPS/mm².
    pub fn gops_per_mm2_active(&self) -> f64 {
        self.gops() / self.active_area_mm2
    }

    /// Energy-area efficiency, GOPS/W/mm² (full chip).
    pub fn gops_per_w_per_mm2(&self) -> f64 {
        self.gops() / self.power_w / self.area_mm2
    }

    /// Energy-area efficiency over active area, GOPS/W/mm².
    pub fn gops_per_w_per_mm2_active(&self) -> f64 {
        self.gops() / self.power_w / self.active_area_mm2
    }

    /// Mean datapath utilization across compute cycles.
    pub fn mean_utilization(&self) -> f64 {
        let cycles: u64 = self.per_layer.iter().map(|l| l.cycles).sum();
        if cycles == 0 {
            return 0.0;
        }
        self.per_layer
            .iter()
            .map(|l| l.utilization * l.cycles as f64)
            .sum::<f64>()
            / cycles as f64
    }

    /// Inference throughput, inferences per second (the architecture has
    /// no batching: one inference occupies the whole chip).
    pub fn inferences_per_second(&self) -> f64 {
        1.0 / self.latency_s
    }

    /// Energy efficiency, inferences per joule.
    pub fn inferences_per_joule(&self) -> f64 {
        1.0 / self.energy_j
    }

    /// Energy per wavelength used — the paper's WDM-efficiency metric
    /// (§IV-B), J per wavelength.
    pub fn energy_per_wavelength(&self, wavelengths: usize) -> f64 {
        assert!(wavelengths > 0, "need at least one wavelength");
        self.energy_j / wavelengths as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    fn eval(estimate: TechnologyEstimate, model: &Model) -> NetworkEvaluation {
        NetworkEvaluation::evaluate(&ChipConfig::albireo_9(), estimate, model)
    }

    #[test]
    fn vgg16_conservative_anchor() {
        // Paper Table IV: 2.55 ms, 58.1 mJ, 148.2 mJ·ms.
        let e = eval(TechnologyEstimate::Conservative, &zoo::vgg16());
        let ms = e.latency_s * 1e3;
        let mj = e.energy_j * 1e3;
        assert!((2.0..3.5).contains(&ms), "latency = {ms} ms");
        assert!((45.0..80.0).contains(&mj), "energy = {mj} mJ");
        assert!(
            (90.0..280.0).contains(&e.edp_mj_ms()),
            "edp = {}",
            e.edp_mj_ms()
        );
    }

    #[test]
    fn moderate_same_latency_lower_energy() {
        // Albireo-M runs at the same 5 GHz clock: latency equal, energy
        // scaled by the power ratio (22.7 → 6.19 W).
        let c = eval(TechnologyEstimate::Conservative, &zoo::vgg16());
        let m = eval(TechnologyEstimate::Moderate, &zoo::vgg16());
        assert!((c.latency_s - m.latency_s).abs() < 1e-12);
        let ratio = c.energy_j / m.energy_j;
        assert!((3.5..3.9).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn aggressive_is_faster_and_cheaper() {
        let c = eval(TechnologyEstimate::Conservative, &zoo::alexnet());
        let a = eval(TechnologyEstimate::Aggressive, &zoo::alexnet());
        // 8 GHz vs 5 GHz clock.
        assert!((c.latency_s / a.latency_s - 1.6).abs() < 1e-9);
        // Paper: AlexNet EDP improves 0.37 → 0.010 mJ·ms (~37×).
        let edp_ratio = c.edp_mj_ms() / a.edp_mj_ms();
        assert!((20.0..50.0).contains(&edp_ratio), "edp ratio = {edp_ratio}");
    }

    #[test]
    fn gops_in_table_iv_range() {
        // Paper: VGG16 Albireo-C = 48.8 GOPS/mm² total, 431 active.
        let e = eval(TechnologyEstimate::Conservative, &zoo::vgg16());
        let g = e.gops_per_mm2();
        assert!((30.0..70.0).contains(&g), "gops/mm² = {g}");
        let ga = e.gops_per_mm2_active();
        assert!((250.0..600.0).contains(&ga), "active gops/mm² = {ga}");
        // Active/total ratio ≈ 8.8×.
        let ratio = ga / g;
        assert!((8.0..10.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn gops_per_w_matches_paper_order() {
        // Paper: VGG16 Albireo-C 2.14 GOPS/W/mm²; Albireo-A 48.6.
        let c = eval(TechnologyEstimate::Conservative, &zoo::vgg16());
        let a = eval(TechnologyEstimate::Aggressive, &zoo::vgg16());
        assert!(
            (1.0..4.0).contains(&c.gops_per_w_per_mm2()),
            "{}",
            c.gops_per_w_per_mm2()
        );
        assert!(a.gops_per_w_per_mm2() > 10.0 * c.gops_per_w_per_mm2());
    }

    #[test]
    fn per_layer_sums_match_totals() {
        let e = eval(TechnologyEstimate::Conservative, &zoo::resnet18());
        let lat: f64 = e.per_layer.iter().map(|l| l.latency_s).sum();
        let energy: f64 = e.per_layer.iter().map(|l| l.energy_j).sum();
        assert!((lat - e.latency_s).abs() < 1e-12);
        assert!((energy - e.energy_j).abs() < 1e-9);
    }

    #[test]
    fn utilization_below_one() {
        for model in zoo::all_benchmarks() {
            let e = eval(TechnologyEstimate::Conservative, &model);
            let u = e.mean_utilization();
            assert!((0.0..=1.0).contains(&u), "{}: {u}", model.name());
        }
    }

    #[test]
    fn throughput_metrics_are_reciprocal() {
        let e = eval(TechnologyEstimate::Conservative, &zoo::alexnet());
        assert!((e.inferences_per_second() * e.latency_s - 1.0).abs() < 1e-12);
        assert!((e.inferences_per_joule() * e.energy_j - 1.0).abs() < 1e-12);
        // AlexNet at 0.2 ms ⇒ ~5k inferences/s.
        assert!((3000.0..10000.0).contains(&e.inferences_per_second()));
    }

    #[test]
    fn memory_energy_is_negligible_vs_device_energy() {
        // Validates the paper's choice to fold memory into static power:
        // dynamic SRAM traffic is well under 1% of device energy.
        let e = eval(TechnologyEstimate::Conservative, &zoo::vgg16());
        assert!(e.memory_dynamic_energy_j > 0.0);
        assert!(e.memory_dynamic_energy_j < 0.01 * e.energy_j);
        assert!((e.total_energy_j() - e.energy_j - e.memory_dynamic_energy_j).abs() < 1e-12);
    }

    #[test]
    fn energy_per_wavelength_metric() {
        let e = eval(TechnologyEstimate::Conservative, &zoo::alexnet());
        let w = e.energy_per_wavelength(63);
        assert!((w - e.energy_j / 63.0).abs() < 1e-18);
    }

    #[test]
    fn observed_evaluation_matches_plain_and_traces_every_layer() {
        let chip = ChipConfig::albireo_9();
        let model = zoo::alexnet();
        let obs = albireo_obs::Obs::enabled();
        let observed = NetworkEvaluation::evaluate_observed(
            &chip,
            TechnologyEstimate::Conservative,
            &model,
            Parallelism::serial(),
            &obs,
        );
        let plain = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        assert_eq!(observed, plain, "instrumentation must not change results");
        let events = obs.drain_events();
        // One Begin + one End per layer, non-decreasing virtual time.
        assert_eq!(events.len(), 2 * plain.per_layer.len());
        assert!(events.windows(2).all(|w| w[0].ts_s <= w[1].ts_s));
        // Device energy counters land in the right order of magnitude:
        // counters are nJ, evaluation energies are J.
        let snap = obs.snapshot();
        let total_nj = snap
            .counters
            .iter()
            .find(|(name, _)| name == "engine.energy.total_nj")
            .map(|(_, v)| *v)
            .unwrap();
        assert!((total_nj as f64 / 1e9 - plain.energy_j).abs() < 1e-6 * plain.energy_j.max(1e-9));
        for key in [
            "engine.energy.dac_nj",
            "engine.energy.adc_nj",
            "engine.energy.laser_nj",
        ] {
            let v = snap
                .counters
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, v)| *v)
                .unwrap();
            assert!(v > 0, "{key} should be nonzero");
            assert!(v < total_nj, "{key} is a component of the total");
        }
    }

    #[test]
    fn observed_evaluation_with_disabled_obs_records_nothing() {
        let obs = albireo_obs::Obs::disabled();
        NetworkEvaluation::evaluate_observed(
            &ChipConfig::albireo_9(),
            TechnologyEstimate::Conservative,
            &zoo::alexnet(),
            Parallelism::serial(),
            &obs,
        );
        assert!(obs.drain_events().is_empty());
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn mobilenet_is_fastest_network() {
        // MobileNet has the fewest MACs; it should finish fastest.
        let evals: Vec<NetworkEvaluation> = zoo::all_benchmarks()
            .iter()
            .map(|m| eval(TechnologyEstimate::Conservative, m))
            .collect();
        let mobilenet = evals.iter().find(|e| e.network == "MobileNet").unwrap();
        let vgg = evals.iter().find(|e| e.network == "VGG16").unwrap();
        assert!(mobilenet.latency_s < vgg.latency_s / 5.0);
    }
}

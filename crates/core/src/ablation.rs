//! Ablation studies of the Albireo design choices (the per-design-point
//! sensitivity analysis DESIGN.md calls out for `Ng`, `Nd`, `Nu`, the
//! stride model, and the depth-first dataflow).

use crate::config::{ChipConfig, PlcuConfig, TechnologyEstimate};
use crate::energy::NetworkEvaluation;
use crate::power::PowerBreakdown;
use crate::{area::AreaBreakdown, sched::total_cycles};
use albireo_nn::stats::workload_stats;
use albireo_nn::Model;
use albireo_photonics::mrr::Microring;
use albireo_photonics::precision::PrecisionModel;
use albireo_photonics::OpticalParams;

/// One design point of an architecture sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Human-readable label (e.g. `Ng=9`).
    pub label: String,
    /// The configuration.
    pub chip: ChipConfig,
    /// Chip power, W.
    pub power_w: f64,
    /// Chip area, mm².
    pub area_mm2: f64,
    /// Network latency, s.
    pub latency_s: f64,
    /// Network EDP, mJ·ms.
    pub edp_mj_ms: f64,
    /// Crosstalk-limited precision of the PLCU's wavelength count, bits
    /// (negative rail included).
    pub precision_bits: f64,
}

fn design_point(
    label: String,
    chip: ChipConfig,
    estimate: TechnologyEstimate,
    model: &Model,
) -> DesignPoint {
    let eval = NetworkEvaluation::evaluate(&chip, estimate, model);
    let precision = plcu_precision_bits(&chip);
    DesignPoint {
        label,
        chip,
        power_w: PowerBreakdown::for_chip(&chip, estimate).total_w(),
        area_mm2: AreaBreakdown::for_chip(&chip).total_mm2(),
        latency_s: eval.latency_s,
        edp_mj_ms: eval.edp_mj_ms(),
        precision_bits: precision,
    }
}

/// Crosstalk-limited precision (bits, negative rail included) for a chip's
/// per-PLCU wavelength count.
pub fn plcu_precision_bits(chip: &ChipConfig) -> f64 {
    let ring = Microring::from_params(&OpticalParams::paper());
    let model = PrecisionModel::paper();
    let levels = model.crosstalk_limited_levels(&ring, chip.wavelengths_per_plcu());
    PrecisionModel::with_negative_rail(levels).log2()
}

/// Sweeps the PLCG count (`Ng`), the chip-level parallelism knob.
pub fn sweep_ng(values: &[usize], estimate: TechnologyEstimate, model: &Model) -> Vec<DesignPoint> {
    values
        .iter()
        .map(|&ng| design_point(format!("Ng={ng}"), ChipConfig::with_ng(ng), estimate, model))
        .collect()
}

/// Sweeps the PLCU output-column count (`Nd`), which trades receptive-field
/// parallelism against wavelength count and hence precision.
pub fn sweep_nd(values: &[usize], estimate: TechnologyEstimate, model: &Model) -> Vec<DesignPoint> {
    values
        .iter()
        .map(|&nd| {
            let mut chip = ChipConfig::albireo_9();
            chip.plcu = PlcuConfig {
                nm: chip.plcu.nm,
                nd,
            };
            design_point(format!("Nd={nd}"), chip, estimate, model)
        })
        .collect()
}

/// Sweeps the PLCUs-per-group count (`Nu`); larger `Nu` needs a wider
/// distribution network than the paper's 64 wavelengths.
pub fn sweep_nu(values: &[usize], estimate: TechnologyEstimate, model: &Model) -> Vec<DesignPoint> {
    values
        .iter()
        .map(|&nu| {
            let mut chip = ChipConfig::albireo_9();
            chip.nu = nu;
            design_point(format!("Nu={nu}"), chip, estimate, model)
        })
        .collect()
}

/// Stride-penalty ablation: cycle counts with and without modelling the
/// reduced receptive-field parallelism of strided convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideAblation {
    /// Cycles with the penalty modelled (default).
    pub with_penalty: u64,
    /// Cycles with full `Nd` parallelism assumed at any stride.
    pub without_penalty: u64,
}

impl StrideAblation {
    /// Relative slowdown introduced by the penalty.
    pub fn slowdown(&self) -> f64 {
        self.with_penalty as f64 / self.without_penalty as f64
    }
}

/// Runs the stride ablation for one network.
pub fn stride_ablation(model: &Model) -> StrideAblation {
    let mut chip = ChipConfig::albireo_9();
    chip.model_stride_penalty = true;
    let with_penalty = total_cycles(&chip, model);
    chip.model_stride_penalty = false;
    let without_penalty = total_cycles(&chip, model);
    StrideAblation {
        with_penalty,
        without_penalty,
    }
}

/// Depth-first dataflow ablation: memory traffic with Albireo's stationary
/// accumulation vs a dataflow that spills partial sums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowAblation {
    /// Bytes moved with depth-first aggregation.
    pub depth_first_bytes: u64,
    /// Bytes moved when partials spill to memory.
    pub spilling_bytes: u64,
    /// Extra memory energy of the spilling dataflow, J (at the global
    /// buffer's per-byte access energy).
    pub extra_energy_j: f64,
}

/// Runs the dataflow ablation for one network.
pub fn dataflow_ablation(model: &Model, chip: &ChipConfig) -> DataflowAblation {
    let stats = workload_stats(model, chip.nu);
    let mem = crate::memory::MemoryModel::paper();
    DataflowAblation {
        depth_first_bytes: stats.traffic_bytes,
        spilling_bytes: stats.traffic_bytes + stats.avoided_partial_bytes,
        extra_energy_j: mem.buffer_access_energy_j(stats.avoided_partial_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn ng_sweep_trades_power_for_latency() {
        let points = sweep_ng(&[3, 9, 27], TechnologyEstimate::Conservative, &zoo::vgg16());
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(pair[1].power_w > pair[0].power_w);
            assert!(pair[1].area_mm2 > pair[0].area_mm2);
            assert!(pair[1].latency_s < pair[0].latency_s);
        }
    }

    #[test]
    fn ng_sweep_edp_improves_with_scale_on_vgg() {
        // Latency falls ~linearly while power rises sub-linearly (the
        // laser/modulator bank is shared), so EDP keeps improving.
        let points = sweep_ng(&[3, 9, 27], TechnologyEstimate::Conservative, &zoo::vgg16());
        for pair in points.windows(2) {
            assert!(pair[1].edp_mj_ms < pair[0].edp_mj_ms);
        }
    }

    #[test]
    fn nd_sweep_trades_precision_for_latency() {
        let points = sweep_nd(&[3, 5, 7], TechnologyEstimate::Conservative, &zoo::vgg16());
        for pair in points.windows(2) {
            assert!(pair[1].latency_s < pair[0].latency_s);
            assert!(pair[1].precision_bits < pair[0].precision_bits);
        }
        // The paper's Nd = 5 point keeps ~7 bits.
        let nd5 = &points[1];
        assert!(
            (6.5..7.2).contains(&nd5.precision_bits),
            "{}",
            nd5.precision_bits
        );
    }

    #[test]
    fn nu_sweep_hits_wavelength_wall() {
        let points = sweep_nu(&[2, 3, 4], TechnologyEstimate::Conservative, &zoo::vgg16());
        // Nu = 3 is the largest fitting 64 distribution wavelengths.
        assert!(points[1].chip.wavelengths_per_plcg() <= 64);
        assert!(points[2].chip.wavelengths_per_plcg() > 64);
        assert!(points[2].latency_s < points[1].latency_s);
    }

    #[test]
    fn stride_ablation_only_affects_strided_networks() {
        // VGG16 is stride-1 everywhere: no penalty.
        let vgg = stride_ablation(&zoo::vgg16());
        assert_eq!(vgg.with_penalty, vgg.without_penalty);
        assert!((vgg.slowdown() - 1.0).abs() < 1e-12);
        // AlexNet's stride-4 conv1 and ResNet's stride-2 convs pay.
        let alex = stride_ablation(&zoo::alexnet());
        assert!(alex.slowdown() > 1.05, "{}", alex.slowdown());
        let resnet = stride_ablation(&zoo::resnet18());
        assert!(resnet.slowdown() > 1.0);
    }

    #[test]
    fn dataflow_ablation_quantifies_depth_first_benefit() {
        let chip = ChipConfig::albireo_9();
        let a = dataflow_ablation(&zoo::vgg16(), &chip);
        assert!(a.spilling_bytes > a.depth_first_bytes);
        // VGG16 avoids hundreds of MB of partial traffic.
        assert!(a.spilling_bytes - a.depth_first_bytes > 100_000_000);
        assert!(a.extra_energy_j > 0.0);
    }

    #[test]
    fn precision_helper_matches_paper_point() {
        let bits = plcu_precision_bits(&ChipConfig::albireo_9());
        assert!((6.5..7.2).contains(&bits), "{bits}");
    }
}

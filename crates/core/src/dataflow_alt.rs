//! Dataflow alternatives: depth-first (the paper's choice) vs
//! weight-stationary position-first.
//!
//! Albireo's depth-first order (Algorithm 2) re-programs every weight MZM
//! and every input modulator *each cycle* (the next cycle applies the next
//! channel group), but never spills a partial sum. The obvious alternative
//! — weight-stationary, position-first — holds one channel group's weights
//! in the MZMs while sweeping all output positions, making the weight DACs
//! nearly static, at the price of spilling `⌈Wz/Nu⌉ − 1` partials per
//! output element to memory.
//!
//! Since DACs are the dominant power consumer (35–64% of Table III), this
//! module quantifies the trade the paper fixes silently: per-update
//! converter energy vs per-byte memory energy.

use crate::config::{ChipConfig, TechnologyEstimate};
use crate::memory::MemoryModel;
use crate::sched::layer_cycles;
use albireo_nn::layer::LayerKind;
use albireo_nn::Model;

/// Converter/update and memory traffic totals for one dataflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataflowCost {
    /// Weight-DAC update operations.
    pub weight_dac_updates: u64,
    /// Input-modulator DAC update operations.
    pub input_dac_updates: u64,
    /// Partial-sum bytes spilled to and reloaded from the global buffer.
    pub partial_bytes: u64,
    /// Total dynamic energy, J.
    pub energy_j: f64,
}

/// Energy of one DAC update at an estimate: its power divided by its
/// sampling rate (e.g. 26 mW / 5 GS/s = 5.2 pJ per update, conservative).
pub fn dac_update_energy_j(estimate: TechnologyEstimate) -> f64 {
    let p = estimate.device_powers();
    p.dac_w / p.sample_rate_hz
}

/// Costs of both dataflows for a whole network.
///
/// Depth-first: every cycle updates all weight MZM DACs of the active
/// groups (`Nm·Nu` per group per cycle) and all input modulators (one per
/// wavelength), with zero partial traffic. Weight-stationary: weights load
/// once per (kernel batch × channel group), inputs still update every
/// cycle, and each output element spills/reloads one 8-bit partial per
/// channel group beyond the first.
pub fn compare_dataflows(
    chip: &ChipConfig,
    estimate: TechnologyEstimate,
    model: &Model,
) -> (DataflowCost, DataflowCost) {
    let mem = MemoryModel::paper();
    let e_dac = dac_update_energy_j(estimate);
    let weights_per_group = (chip.plcu.nm * chip.nu) as u64;
    let wavelengths = chip.wavelengths_per_plcg() as u64;

    let mut df = DataflowCost {
        weight_dac_updates: 0,
        input_dac_updates: 0,
        partial_bytes: 0,
        energy_j: 0.0,
    };
    let mut ws = df;

    for layer in model.layers() {
        let cycles = layer_cycles(chip, layer);
        if cycles == 0 {
            continue;
        }
        let active_groups = chip.ng as u64;
        // Depth-first: everything updates every cycle.
        df.weight_dac_updates += cycles * weights_per_group * active_groups;
        df.input_dac_updates += cycles * wavelengths;

        // Weight-stationary: weights load once per (kernel batch, channel
        // group); inputs still stream.
        let (kernel_batches, channel_groups) = match layer.kind {
            LayerKind::Conv {
                kernels, groups, ..
            } => (
                (kernels as u64).div_ceil(chip.ng as u64),
                ((layer.input.z / groups) as u64).div_ceil(chip.nu as u64),
            ),
            LayerKind::Depthwise { .. } => (
                (layer.input.z as u64).div_ceil((chip.nu * chip.ng) as u64),
                1,
            ),
            LayerKind::Pointwise { kernels } => (
                (kernels as u64).div_ceil(chip.ng as u64),
                (layer.input.z as u64).div_ceil((chip.plcu.nm * chip.nu) as u64),
            ),
            LayerKind::FullyConnected { outputs } => (
                (outputs as u64).div_ceil(chip.ng as u64),
                (layer.input.elements() as u64).div_ceil((chip.plcu.nm * chip.nu) as u64),
            ),
            _ => (0, 0),
        };
        ws.weight_dac_updates +=
            kernel_batches * channel_groups * weights_per_group * active_groups;
        ws.input_dac_updates += cycles * wavelengths;
        // Spill + reload one byte per output per intermediate group.
        let outputs = layer.output.elements() as u64;
        ws.partial_bytes += 2 * outputs * channel_groups.saturating_sub(1);
    }

    df.energy_j = (df.weight_dac_updates + df.input_dac_updates) as f64 * e_dac
        + mem.buffer_access_energy_j(df.partial_bytes);
    ws.energy_j = (ws.weight_dac_updates + ws.input_dac_updates) as f64 * e_dac
        + mem.buffer_access_energy_j(ws.partial_bytes);
    (df, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn dac_update_energy_is_picojoule_scale() {
        let e = dac_update_energy_j(TechnologyEstimate::Conservative);
        assert!((e - 5.2e-12).abs() < 1e-15, "e = {e}");
        assert!(dac_update_energy_j(TechnologyEstimate::Aggressive) < e);
    }

    #[test]
    fn weight_stationary_saves_weight_updates_but_spills() {
        let chip = ChipConfig::albireo_9();
        let (df, ws) = compare_dataflows(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
        // FC layers see new weights every cycle under either dataflow, so
        // the network-level saving is ~25x rather than the pure-conv ~100x.
        assert!(ws.weight_dac_updates < df.weight_dac_updates / 10);
        assert_eq!(df.partial_bytes, 0, "depth-first never spills");
        assert!(ws.partial_bytes > 100_000_000);
        assert_eq!(df.input_dac_updates, ws.input_dac_updates);
    }

    #[test]
    fn weight_stationary_wins_on_dynamic_energy_with_these_devices() {
        // The quantitative surprise: at 5.2 pJ/update vs 0.2 pJ/byte,
        // weight-stationary's spills cost far less than depth-first's
        // constant weight reprogramming — the depth-first choice is
        // justified by the *converter power already being budgeted for
        // streaming* (Table III runs every DAC at full rate) and by
        // avoiding memory-bandwidth pressure, not by dynamic energy alone.
        let chip = ChipConfig::albireo_9();
        let (df, ws) = compare_dataflows(&chip, TechnologyEstimate::Conservative, &zoo::vgg16());
        assert!(
            ws.energy_j < df.energy_j,
            "{} vs {}",
            ws.energy_j,
            df.energy_j
        );
    }

    #[test]
    fn depth_first_dynamic_energy_matches_dac_power_budget() {
        // Sanity: depth-first's per-cycle update energy integrated over
        // the run equals the Table III DAC power × latency (within the
        // ceil-induced activity differences).
        let chip = ChipConfig::albireo_9();
        let model = zoo::vgg16();
        let (df, _) = compare_dataflows(&chip, TechnologyEstimate::Conservative, &model);
        let cycles = crate::sched::total_cycles(&chip, &model) as f64;
        let latency = cycles / 5e9;
        let table_iii_dac_energy = 7.96 * latency;
        let ratio = df.energy_j / table_iii_dac_energy;
        assert!((0.5..1.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn pooling_layers_contribute_nothing() {
        let chip = ChipConfig::albireo_9();
        let mut b = albireo_nn::Model::builder("pool-only", albireo_nn::VolumeShape::new(4, 8, 8));
        b.push("conv", albireo_nn::LayerKind::conv(4, 3, 1, 1))
            .unwrap();
        b.push(
            "pool",
            albireo_nn::LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
        )
        .unwrap();
        let model = b.build().unwrap();
        let (df, _) = compare_dataflows(&chip, TechnologyEstimate::Conservative, &model);
        assert!(df.weight_dac_updates > 0);
    }
}

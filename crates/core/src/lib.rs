//! The Albireo architecture model — the paper's primary contribution.
//!
//! Albireo is built from three nested units (paper §III):
//!
//! * **PLCU** (photonic locally-connected unit): an `Nm × Nd` grid of `Nm`
//!   weight MZMs and `2·Nm·Nd` switching MRRs computing `Nd` concurrent
//!   dot products over one kernel channel by exploiting the multicast
//!   pattern of overlapping receptive fields (Fig. 5).
//! * **PLCG** (photonic locally-connected group): `Nu` PLCUs processing
//!   `Nu` input channels in parallel, fed by an AWG demultiplexer and star
//!   couplers, with an electronic aggregation unit (`Nd` TIAs/ADCs/adders)
//!   performing depth-first partial-sum accumulation (Figs. 6b, 7).
//! * **Chip**: `Ng` PLCGs receiving the same broadcast input volume and
//!   applying `Ng` different kernels in parallel (Fig. 6a), plus a global
//!   SRAM buffer, per-group kernel caches, a laser/modulator bank and the
//!   DAC/ADC conversion interface.
//!
//! The crate provides:
//!
//! * [`accel`] — the unified [`Accelerator`] cost-model
//!   trait every accelerator (Albireo and the baselines in
//!   `albireo-baselines`) implements, plus the canonical
//!   [`NetworkCost`] vocabulary.
//! * [`config`] — architecture parameters and the Table I device-power
//!   estimates (conservative / moderate / aggressive).
//! * [`inventory`] — device-count derivation (306 DACs, 45 TIAs, 63 lasers,
//!   2430 switching MRRs for Albireo-9, matching the paper's §V numbers).
//! * [`power`] — the Table III power breakdown.
//! * [`area`] — the Fig. 9 area breakdown (≈ 124.6 mm² total).
//! * [`sched`] — the Algorithm 2 dataflow model producing per-layer cycle
//!   counts for standard, grouped, depthwise, pointwise, and FC layers.
//! * [`energy`] — per-layer and per-network latency / energy / EDP and the
//!   Table IV throughput metrics.
//! * [`engine`] — the parallel evaluation engine fanning the paper's
//!   (chip × estimate × network) grid across threads deterministically.
//! * [`analog`] — a functional analog simulation of the photonic signal
//!   chain (MZM multiply, MRR switching with crosstalk, balanced detection
//!   with noise, ADC quantization), validated against the digital golden
//!   model in `albireo-tensor`.
//! * [`report`] — plain-text table formatting shared by the bench bins.
//!
//! # Example
//!
//! ```
//! use albireo_core::config::{ChipConfig, TechnologyEstimate};
//! use albireo_core::energy::NetworkEvaluation;
//! use albireo_nn::zoo;
//!
//! let chip = ChipConfig::albireo_9();
//! let eval = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &zoo::alexnet());
//! println!("AlexNet on Albireo-C: {:.3} ms, {:.2} mJ", eval.latency_s * 1e3, eval.energy_j * 1e3);
//! ```

pub mod ablation;
pub mod accel;
pub mod analog;
pub mod area;
pub mod config;
pub mod dataflow_alt;
pub mod energy;
pub mod engine;
pub mod inventory;
pub mod memory;
pub mod power;
pub mod power_delivery;
pub mod report;
pub mod scaling;
pub mod sched;
pub mod timing;
pub mod trace;

pub use accel::{Accelerator, AlbireoAccelerator, LayerCost, NetworkCost};
pub use config::{ChipConfig, PlcuConfig, TechnologyEstimate};
pub use energy::NetworkEvaluation;
pub use inventory::DeviceInventory;

//! Chip area breakdown — paper Fig. 9 and the 124.6 mm² total.
//!
//! Areas come from Table II footprints × the device inventory. As the paper
//! observes, the passive distribution dominates: AWGs ≈ 72% and star
//! couplers ≈ 17% of the chip. Table IV's "active area only" metrics
//! exclude exactly this passive distribution (AWGs, star couplers, and the
//! broadcast Y-branches).

use crate::config::ChipConfig;
use crate::inventory::DeviceInventory;
use crate::memory::MemoryModel;
use albireo_photonics::OpticalParams;

/// Per-component area totals for one Albireo configuration, m².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Arrayed waveguide gratings.
    pub awg_m2: f64,
    /// Star couplers.
    pub star_coupler_m2: f64,
    /// Modulators (weight MZMs + input modulators, both MZM-class devices
    /// for footprint purposes, matching Fig. 9's 3.7% MZM share).
    pub mzm_m2: f64,
    /// Switching MRRs.
    pub mrr_m2: f64,
    /// Lasers.
    pub laser_m2: f64,
    /// Photodiodes.
    pub photodiode_m2: f64,
    /// Broadcast-tree Y-branches.
    pub ybranch_m2: f64,
    /// SRAM (global buffer + kernel caches).
    pub memory_m2: f64,
}

impl AreaBreakdown {
    /// Computes the breakdown for a chip configuration.
    pub fn for_chip(chip: &ChipConfig) -> AreaBreakdown {
        let inv = DeviceInventory::for_chip(chip);
        let p = OpticalParams::paper();
        let mem = MemoryModel::paper();
        AreaBreakdown {
            awg_m2: inv.awgs as f64 * p.awg.area_m2,
            star_coupler_m2: inv.star_couplers as f64 * p.star_coupler.area_m2,
            mzm_m2: inv.modulators() as f64 * p.mzm.area_m2,
            mrr_m2: inv.switching_mrrs as f64 * p.mrr.area_m2,
            laser_m2: inv.lasers as f64 * p.laser.area_m2,
            photodiode_m2: inv.photodiodes as f64 * p.photodiode.area_m2,
            ybranch_m2: inv.ybranches as f64 * p.ybranch.area_m2,
            memory_m2: mem.area_m2(chip),
        }
    }

    /// Total chip area, m².
    pub fn total_m2(&self) -> f64 {
        self.awg_m2
            + self.star_coupler_m2
            + self.mzm_m2
            + self.mrr_m2
            + self.laser_m2
            + self.photodiode_m2
            + self.ybranch_m2
            + self.memory_m2
    }

    /// Active area (total minus the passive distribution: AWGs, star
    /// couplers, Y-branches), m² — the basis of Table IV's "active area
    /// only" rows.
    pub fn active_m2(&self) -> f64 {
        self.total_m2() - self.awg_m2 - self.star_coupler_m2 - self.ybranch_m2
    }

    /// Total chip area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_m2() * 1e6
    }

    /// Active area in mm².
    pub fn active_mm2(&self) -> f64 {
        self.active_m2() * 1e6
    }

    /// Rows as `(label, mm², portion)` sorted in Fig. 9's dominance order.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total_m2();
        [
            ("AWG", self.awg_m2),
            ("Star coupler", self.star_coupler_m2),
            ("Laser", self.laser_m2),
            ("MZM", self.mzm_m2),
            ("MRR", self.mrr_m2),
            ("Photodiode", self.photodiode_m2),
            ("SRAM", self.memory_m2),
            ("Y-branch", self.ybranch_m2),
        ]
        .into_iter()
        .map(|(name, a)| (name, a * 1e6, a / total))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_matches_paper_124_6_mm2() {
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let total = a.total_mm2();
        assert!((total - 124.6).abs() / 124.6 < 0.01, "total = {total} mm²");
    }

    #[test]
    fn awg_share_is_72_percent() {
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let share = a.awg_m2 / a.total_m2();
        assert!((0.70..0.74).contains(&share), "share = {share}");
        // A single AWG is 8% of the chip (§IV-B).
        let single = 10e-6 / a.total_m2();
        assert!((0.075..0.085).contains(&single), "single = {single}");
    }

    #[test]
    fn star_coupler_share_is_17_percent() {
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let share = a.star_coupler_m2 / a.total_m2();
        assert!((0.16..0.18).contains(&share), "share = {share}");
    }

    #[test]
    fn mzm_share_is_3_7_percent() {
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let share = a.mzm_m2 / a.total_m2();
        assert!((0.034..0.040).contains(&share), "share = {share}");
    }

    #[test]
    fn active_area_is_about_14_mm2() {
        // Table IV: GOPS/mm² total vs active differ by ≈ 8.8× for Albireo,
        // implying ≈ 14 mm² of active area.
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let active = a.active_mm2();
        assert!((12.0..16.0).contains(&active), "active = {active} mm²");
    }

    #[test]
    fn rows_sum_to_total() {
        let a = AreaBreakdown::for_chip(&ChipConfig::albireo_9());
        let sum: f64 = a.rows().iter().map(|r| r.1).sum();
        assert!((sum - a.total_mm2()).abs() < 1e-6);
    }

    #[test]
    fn area_scales_with_groups() {
        let a9 = AreaBreakdown::for_chip(&ChipConfig::albireo_9()).total_m2();
        let a27 = AreaBreakdown::for_chip(&ChipConfig::albireo_27()).total_m2();
        assert!(a27 > 2.5 * a9 && a27 < 3.1 * a9);
    }
}

//! Dataflow scheduling — paper Algorithm 2 and the §III-C layer mappings.
//!
//! Albireo's dataflow is depth-first: for each group of `Nd` output
//! positions, partial sums are aggregated across all `⌈Wz/Nu⌉` channel
//! groups before the kernel moves (no partial-sum writes to memory). The
//! cycle count of a standard convolution is therefore
//!
//! ```text
//! cycles = ⌈Wm/Ng⌉ · By · ⌈Bx/Nd⌉ · ⌈Wz/Nu⌉ · ⌈Wx·Wy/Nm⌉
//! ```
//!
//! with the §III-C variants for FC, depthwise and pointwise layers.
//!
//! Strided convolutions: the PLCU's multicast width is fixed at
//! `Nd + Wx − 1` input columns, which fits only
//! `⌊(Nd − 1)/S⌋ + 1` stride-`S` receptive fields. The paper does not state
//! its treatment of strides; this penalty is modelled by default and can be
//! disabled via [`crate::config::ChipConfig::model_stride_penalty`].

use crate::config::ChipConfig;
use albireo_nn::layer::{LayerInstance, LayerKind};
use albireo_nn::Model;
use albireo_parallel::Parallelism;

/// Ceiling division of two positive integers.
fn ceil_div(a: usize, b: usize) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b) as u64
}

/// Cycle count and utilization for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSchedule {
    /// Layer name.
    pub name: String,
    /// Cycles spent in the photonic datapath.
    pub cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Fraction of the chip's peak MACs/cycle actually used.
    pub utilization: f64,
}

/// Schedules one layer on the chip, returning its cycle count
/// (0 for pooling layers, which run in the digital aggregation path).
pub fn layer_cycles(chip: &ChipConfig, layer: &LayerInstance) -> u64 {
    let nm = chip.plcu.nm;
    let nd = chip.plcu.nd;
    let nu = chip.nu;
    let ng = chip.ng;
    match layer.kind {
        LayerKind::Conv {
            kernels,
            kernel_y,
            kernel_x,
            stride,
            groups,
            ..
        } => {
            let nd_eff = effective_nd(chip, stride);
            let depth = layer.input.z / groups;
            // All kernels (across all groups) are distributed over the Ng
            // PLCGs; each kernel's dot products span its group's channels.
            ceil_div(kernels, ng)
                * layer.output.y as u64
                * ceil_div(layer.output.x, nd_eff)
                * ceil_div(depth, nu)
                * ceil_div(kernel_y * kernel_x, nm)
        }
        LayerKind::Depthwise { kernel, stride, .. } => {
            let nd_eff = effective_nd(chip, stride);
            // Each PLCU applies one depthwise kernel; no cross-channel
            // aggregation, so Nu·Ng channels run concurrently (§III-C).
            ceil_div(layer.input.z, nu * ng)
                * layer.output.y as u64
                * ceil_div(layer.output.x, nd_eff)
                * ceil_div(kernel * kernel, nm)
        }
        LayerKind::Pointwise { kernels } => {
            // Each MZM holds one channel of the 1×1 kernel: Nm·Nu channels
            // aggregate per cycle per group; Nd receptive fields per PLCU.
            ceil_div(kernels, ng)
                * layer.output.y as u64
                * ceil_div(layer.output.x, nd)
                * ceil_div(layer.input.z, nm * nu)
        }
        LayerKind::FullyConnected { outputs } => {
            // One kernel per output; only one PD column is used (no
            // parameter sharing), aggregation across the group's PLCUs
            // still applies: Nm·Nu MACs per cycle per group.
            ceil_div(outputs, ng) * ceil_div(layer.input.elements(), nm * nu)
        }
        LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => 0,
    }
}

/// Receptive fields that fit the fixed multicast width at stride `S`.
fn effective_nd(chip: &ChipConfig, stride: usize) -> usize {
    let nd = chip.plcu.nd;
    if !chip.model_stride_penalty || stride <= 1 {
        nd
    } else {
        (nd - 1) / stride + 1
    }
}

/// Schedules every layer of a network.
pub fn schedule_model(chip: &ChipConfig, model: &Model) -> Vec<LayerSchedule> {
    schedule_model_with(chip, model, Parallelism::default())
}

/// [`schedule_model`] under an explicit [`Parallelism`] policy; layers are
/// independent work items, so the schedule is identical at any thread
/// count.
pub fn schedule_model_with(
    chip: &ChipConfig,
    model: &Model,
    par: Parallelism,
) -> Vec<LayerSchedule> {
    let peak = chip.peak_macs_per_cycle();
    let layers = model.layers();
    par.map_indexed(layers.len(), |i| {
        let layer = &layers[i];
        let cycles = layer_cycles(chip, layer);
        let macs = layer.macs();
        let utilization = if cycles == 0 {
            0.0
        } else {
            macs as f64 / (cycles as f64 * peak as f64)
        };
        LayerSchedule {
            name: layer.name.clone(),
            cycles,
            macs,
            utilization,
        }
    })
}

/// Total cycles for a network.
pub fn total_cycles(chip: &ChipConfig, model: &Model) -> u64 {
    model
        .layers()
        .iter()
        .map(|layer| layer_cycles(chip, layer))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::layer::VolumeShape;
    use albireo_nn::zoo;

    fn conv_instance(
        kernels: usize,
        kernel: usize,
        stride: usize,
        in_shape: VolumeShape,
        out_shape: VolumeShape,
    ) -> LayerInstance {
        LayerInstance {
            name: "conv".into(),
            kind: LayerKind::conv(kernels, kernel, stride, 0),
            input: in_shape,
            output: out_shape,
            is_branch: false,
        }
    }

    #[test]
    fn unit_conv_formula() {
        // 64 kernels of 3×3×64 over a 56×56 output on Albireo-9:
        // ⌈64/9⌉·56·⌈56/5⌉·⌈64/3⌉·⌈9/9⌉ = 8·56·12·22·1.
        let chip = ChipConfig::albireo_9();
        let li = conv_instance(
            64,
            3,
            1,
            VolumeShape::new(64, 58, 58),
            VolumeShape::new(64, 56, 56),
        );
        assert_eq!(layer_cycles(&chip, &li), 8 * 56 * 12 * 22);
    }

    #[test]
    fn large_kernel_needs_extra_passes() {
        let chip = ChipConfig::albireo_9();
        let small = conv_instance(
            9,
            3,
            1,
            VolumeShape::new(3, 10, 10),
            VolumeShape::new(9, 8, 8),
        );
        let large = conv_instance(
            9,
            5,
            1,
            VolumeShape::new(3, 12, 12),
            VolumeShape::new(9, 8, 8),
        );
        // 5×5 = 25 weights ⇒ ⌈25/9⌉ = 3 passes vs 1.
        assert_eq!(layer_cycles(&chip, &large), 3 * layer_cycles(&chip, &small));
    }

    #[test]
    fn stride_penalty_reduces_parallelism() {
        let mut chip = ChipConfig::albireo_9();
        let li = conv_instance(
            9,
            3,
            2,
            VolumeShape::new(3, 21, 21),
            VolumeShape::new(9, 10, 10),
        );
        let with_penalty = layer_cycles(&chip, &li);
        chip.model_stride_penalty = false;
        let without = layer_cycles(&chip, &li);
        // stride 2: Nd_eff = 3 ⇒ ⌈10/3⌉ = 4 vs ⌈10/5⌉ = 2 column groups.
        assert_eq!(with_penalty, 2 * without);
    }

    #[test]
    fn more_groups_never_slower() {
        let chip9 = ChipConfig::albireo_9();
        let chip27 = ChipConfig::albireo_27();
        for model in zoo::all_benchmarks() {
            let c9 = total_cycles(&chip9, &model);
            let c27 = total_cycles(&chip27, &model);
            assert!(c27 <= c9, "{}: {c27} > {c9}", model.name());
            assert!(c27 > 0);
        }
    }

    #[test]
    fn vgg16_latency_anchor() {
        // Paper Table IV: VGG16 on Albireo-C is 2.55 ms at 5 GHz
        // (12.75 M cycles). The reproduced dataflow lands within ~20%.
        let chip = ChipConfig::albireo_9();
        let cycles = total_cycles(&chip, &zoo::vgg16());
        let ms = cycles as f64 / 5e9 * 1e3;
        assert!((2.0..3.5).contains(&ms), "VGG16 latency = {ms} ms");
    }

    #[test]
    fn alexnet_latency_anchor() {
        // Paper: 0.13 ms. The reproduced model (with the stride penalty on
        // conv1) lands within ~2×; the shape (sub-ms, ~20× faster than
        // VGG16) holds.
        let chip = ChipConfig::albireo_9();
        let cycles = total_cycles(&chip, &zoo::alexnet());
        let ms = cycles as f64 / 5e9 * 1e3;
        assert!((0.05..0.3).contains(&ms), "AlexNet latency = {ms} ms");
    }

    #[test]
    fn fc_layer_cycles() {
        let chip = ChipConfig::albireo_9();
        let li = LayerInstance {
            name: "fc".into(),
            kind: LayerKind::FullyConnected { outputs: 4096 },
            input: VolumeShape::new(256, 6, 6),
            output: VolumeShape::new(4096, 1, 1),
            is_branch: false,
        };
        // ⌈4096/9⌉·⌈9216/27⌉ = 456·342.
        assert_eq!(layer_cycles(&chip, &li), 456 * 342);
    }

    #[test]
    fn pointwise_cycles() {
        let chip = ChipConfig::albireo_9();
        let li = LayerInstance {
            name: "pw".into(),
            kind: LayerKind::Pointwise { kernels: 64 },
            input: VolumeShape::new(32, 112, 112),
            output: VolumeShape::new(64, 112, 112),
            is_branch: false,
        };
        // ⌈64/9⌉·112·⌈112/5⌉·⌈32/27⌉ = 8·112·23·2.
        assert_eq!(layer_cycles(&chip, &li), 8 * 112 * 23 * 2);
    }

    #[test]
    fn depthwise_cycles() {
        let chip = ChipConfig::albireo_9();
        let li = LayerInstance {
            name: "dw".into(),
            kind: LayerKind::Depthwise {
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            input: VolumeShape::new(64, 56, 56),
            output: VolumeShape::new(64, 56, 56),
            is_branch: false,
        };
        // ⌈64/27⌉·56·⌈56/5⌉·1 = 3·56·12.
        assert_eq!(layer_cycles(&chip, &li), 3 * 56 * 12);
    }

    #[test]
    fn pooling_is_free() {
        let chip = ChipConfig::albireo_9();
        let li = LayerInstance {
            name: "pool".into(),
            kind: LayerKind::MaxPool {
                window: 2,
                stride: 2,
            },
            input: VolumeShape::new(64, 112, 112),
            output: VolumeShape::new(64, 56, 56),
            is_branch: false,
        };
        assert_eq!(layer_cycles(&chip, &li), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let chip = ChipConfig::albireo_9();
        for model in zoo::all_benchmarks() {
            for s in schedule_model(&chip, &model) {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&s.utilization),
                    "{}: utilization {}",
                    s.name,
                    s.utilization
                );
            }
        }
    }

    #[test]
    fn schedule_covers_all_layers() {
        let chip = ChipConfig::albireo_9();
        let model = zoo::mobilenet();
        let sched = schedule_model(&chip, &model);
        assert_eq!(sched.len(), model.layers().len());
        let total: u64 = sched.iter().map(|s| s.cycles).sum();
        assert_eq!(total, total_cycles(&chip, &model));
    }
}

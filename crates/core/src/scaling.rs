//! Technology-scaling analysis: how much must photonic devices improve?
//!
//! The paper frames Albireo-M as "a target performance for photonic device
//! engineers to pursue" — the device powers at which Albireo matches
//! state-of-the-art electronic accelerator energy. This module computes
//! that target directly: the uniform factor by which the conservative
//! device powers must shrink for Albireo's inference energy to match a
//! given electronic baseline, and the per-device improvement factors the
//! paper's moderate/aggressive columns actually assume.

use crate::config::{ChipConfig, DevicePowers, TechnologyEstimate};
use crate::energy::NetworkEvaluation;
use crate::memory::MemoryModel;
use crate::power::PowerBreakdown;
use albireo_nn::Model;

/// The uniform device-power reduction factor (> 1 = devices must get that
/// many times cheaper) for Albireo on `chip` to match `target_energy_j`
/// on `model`, starting from the conservative devices. The memory power
/// is held fixed (it is already 7 nm digital).
///
/// Returns `None` if the target is unreachable even with free photonics
/// (i.e. the cache power alone exceeds the target budget).
pub fn uniform_scaling_to_match_energy(
    chip: &ChipConfig,
    model: &Model,
    target_energy_j: f64,
) -> Option<f64> {
    let eval = NetworkEvaluation::evaluate(chip, TechnologyEstimate::Conservative, model);
    let cache_w = MemoryModel::paper().static_power_w(chip);
    let device_w = eval.power_w - cache_w;
    // energy = (device_w / f + cache_w) · latency  ⇒  solve for f.
    let target_power = target_energy_j / eval.latency_s;
    let budget_for_devices = target_power - cache_w;
    if budget_for_devices <= 0.0 {
        return None;
    }
    Some(device_w / budget_for_devices)
}

/// Per-device improvement factors between two estimates (how many times
/// cheaper each device class must get).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprovementFactors {
    /// MRR drive power factor.
    pub mrr: f64,
    /// MZM drive power factor.
    pub mzm: f64,
    /// Laser power factor.
    pub laser: f64,
    /// TIA power factor.
    pub tia: f64,
    /// ADC power factor.
    pub adc: f64,
    /// DAC power factor.
    pub dac: f64,
}

impl ImprovementFactors {
    /// Factors from one estimate's devices to another's.
    pub fn between(from: TechnologyEstimate, to: TechnologyEstimate) -> ImprovementFactors {
        let a = from.device_powers();
        let b = to.device_powers();
        ImprovementFactors {
            mrr: a.mrr_w / b.mrr_w,
            mzm: a.mzm_w / b.mzm_w,
            laser: a.laser_w / b.laser_w,
            tia: a.tia_w / b.tia_w,
            adc: a.adc_w / b.adc_w,
            dac: a.dac_w / b.dac_w,
        }
    }

    /// The largest single-device factor — the hardest engineering ask.
    pub fn max(&self) -> f64 {
        [self.mrr, self.mzm, self.laser, self.tia, self.adc, self.dac]
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// The smallest factor — the easiest ask.
    pub fn min(&self) -> f64 {
        [self.mrr, self.mzm, self.laser, self.tia, self.adc, self.dac]
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }
}

/// One point on a device-scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Uniform device-power reduction factor relative to conservative.
    pub factor: f64,
    /// Chip power at that scaling, W.
    pub power_w: f64,
    /// Network energy, J.
    pub energy_j: f64,
    /// Network EDP, mJ·ms.
    pub edp_mj_ms: f64,
}

/// Sweeps uniform device-power scaling factors and reports the resulting
/// power/energy/EDP for a network (latency is unchanged: the clock stays
/// at 5 GHz).
pub fn scaling_curve(chip: &ChipConfig, model: &Model, factors: &[f64]) -> Vec<ScalingPoint> {
    let eval = NetworkEvaluation::evaluate(chip, TechnologyEstimate::Conservative, model);
    let cache_w = MemoryModel::paper().static_power_w(chip);
    let device_w =
        PowerBreakdown::for_chip(chip, TechnologyEstimate::Conservative).total_w() - cache_w;
    factors
        .iter()
        .map(|&factor| {
            assert!(factor > 0.0, "scaling factor must be positive");
            let power = device_w / factor + cache_w;
            let energy = power * eval.latency_s;
            ScalingPoint {
                factor,
                power_w: power,
                energy_j: energy,
                edp_mj_ms: energy * 1e3 * eval.latency_s * 1e3,
            }
        })
        .collect()
}

/// Convenience: the conservative-estimate device powers (re-exported for
/// scaling reports).
pub fn conservative_powers() -> DevicePowers {
    TechnologyEstimate::Conservative.device_powers()
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_nn::zoo;

    #[test]
    fn matching_envision_needs_single_digit_scaling() {
        // Paper: "Albireo-M consumes roughly equal energy to both ENVISION
        // and UNPU". ENVISION's AlexNet energy is 0.94 mJ; the uniform
        // factor to reach it should be near the 3.7× overall power ratio
        // between Albireo-C (22.7 W) and Albireo-M (6.19 W).
        let chip = ChipConfig::albireo_9();
        let f =
            uniform_scaling_to_match_energy(&chip, &zoo::alexnet(), 0.94e-3).expect("reachable");
        assert!((2.0..15.0).contains(&f), "factor = {f}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        let chip = ChipConfig::albireo_9();
        // 1 nJ for an AlexNet inference is below even the cache energy.
        assert!(uniform_scaling_to_match_energy(&chip, &zoo::alexnet(), 1e-9).is_none());
    }

    #[test]
    fn scaling_factor_one_reproduces_conservative() {
        let chip = ChipConfig::albireo_9();
        let model = zoo::vgg16();
        let curve = scaling_curve(&chip, &model, &[1.0]);
        let eval = NetworkEvaluation::evaluate(&chip, TechnologyEstimate::Conservative, &model);
        assert!((curve[0].power_w - eval.power_w).abs() < 1e-9);
        assert!((curve[0].energy_j - eval.energy_j).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_in_factor() {
        let chip = ChipConfig::albireo_9();
        let curve = scaling_curve(&chip, &zoo::alexnet(), &[1.0, 2.0, 4.0, 8.0, 16.0]);
        for pair in curve.windows(2) {
            assert!(pair[1].power_w < pair[0].power_w);
            assert!(pair[1].edp_mj_ms < pair[0].edp_mj_ms);
        }
        // Cache power is the floor.
        let floor = MemoryModel::paper().static_power_w(&chip);
        assert!(curve.last().unwrap().power_w > floor);
    }

    #[test]
    fn paper_moderate_factors() {
        // Table I's implied per-device asks for the moderate column:
        // MRR 8×, MZM 8×, laser 27×, TIA 2×, ADC 2×, DAC 2×.
        let f = ImprovementFactors::between(
            TechnologyEstimate::Conservative,
            TechnologyEstimate::Moderate,
        );
        assert!((7.0..9.0).contains(&f.mrr), "{}", f.mrr);
        assert!((7.0..9.0).contains(&f.mzm), "{}", f.mzm);
        assert!((25.0..29.0).contains(&f.laser), "{}", f.laser);
        assert!((1.8..2.2).contains(&f.dac), "{}", f.dac);
        assert!(f.max() >= f.min());
        // The laser is the hardest ask of the moderate column.
        assert!((f.max() - f.laser).abs() < 1e-9);
    }

    #[test]
    fn aggressive_factors_are_larger_except_laser() {
        let m = ImprovementFactors::between(
            TechnologyEstimate::Conservative,
            TechnologyEstimate::Moderate,
        );
        let a = ImprovementFactors::between(
            TechnologyEstimate::Conservative,
            TechnologyEstimate::Aggressive,
        );
        assert!(a.mrr > m.mrr);
        assert!(a.dac > m.dac);
        // The aggressive laser is *less* aggressive than moderate's (it
        // must hold precision at 8 GS/s) — the Table I/III subtlety.
        assert!(a.laser < m.laser);
    }
}

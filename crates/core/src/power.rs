//! Chip power breakdown — paper Table III.

use crate::config::{ChipConfig, TechnologyEstimate};
use crate::inventory::DeviceInventory;
use crate::memory::MemoryModel;

/// Per-device-class power totals for one Albireo configuration and
/// technology estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Switching-MRR power, W (Table III "MRR" row).
    pub mrr_w: f64,
    /// Modulator power (weight MZMs + input modulators), W (Table III
    /// "MZI" row).
    pub mzi_w: f64,
    /// Laser power, W.
    pub laser_w: f64,
    /// TIA power, W.
    pub tia_w: f64,
    /// DAC power, W.
    pub dac_w: f64,
    /// ADC power, W.
    pub adc_w: f64,
    /// Memory (caches + global buffer) static power, W.
    pub cache_w: f64,
}

impl PowerBreakdown {
    /// Computes the breakdown for a chip under an estimate.
    pub fn for_chip(chip: &ChipConfig, estimate: TechnologyEstimate) -> PowerBreakdown {
        let inv = DeviceInventory::for_chip(chip);
        let p = estimate.device_powers();
        let mem = MemoryModel::paper();
        PowerBreakdown {
            mrr_w: inv.switching_mrrs as f64 * p.mrr_w,
            mzi_w: inv.modulators() as f64 * p.mzm_w,
            laser_w: inv.lasers as f64 * p.laser_w,
            tia_w: inv.tias as f64 * p.tia_w,
            dac_w: inv.dacs as f64 * p.dac_w,
            adc_w: inv.adcs as f64 * p.adc_w,
            cache_w: mem.static_power_w(chip),
        }
    }

    /// Total chip power, W.
    pub fn total_w(&self) -> f64 {
        self.mrr_w + self.mzi_w + self.laser_w + self.tia_w + self.dac_w + self.adc_w + self.cache_w
    }

    /// Rows as `(label, watts, portion)` in the paper's Table III order.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total_w();
        [
            ("MRR", self.mrr_w),
            ("MZI", self.mzi_w),
            ("Laser", self.laser_w),
            ("TIA", self.tia_w),
            ("DAC", self.dac_w),
            ("ADC", self.adc_w),
            ("Cache", self.cache_w),
        ]
        .into_iter()
        .map(|(name, w)| (name, w, w / total))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: f64, expected: f64, rel: f64) -> bool {
        (actual - expected).abs() / expected < rel
    }

    #[test]
    fn albireo_c_matches_table_iii() {
        let b =
            PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Conservative);
        assert!(close(b.mrr_w, 7.52, 0.01), "mrr = {}", b.mrr_w);
        assert!(close(b.mzi_w, 3.45, 0.01), "mzi = {}", b.mzi_w);
        assert!(close(b.laser_w, 2.36, 0.01), "laser = {}", b.laser_w);
        assert!(close(b.tia_w, 0.135, 0.05), "tia = {}", b.tia_w);
        assert!(close(b.dac_w, 7.93, 0.01), "dac = {}", b.dac_w);
        assert!(close(b.adc_w, 1.31, 0.01), "adc = {}", b.adc_w);
        assert!(close(b.cache_w, 0.03, 0.05), "cache = {}", b.cache_w);
        assert!(close(b.total_w(), 22.7, 0.01), "total = {}", b.total_w());
    }

    #[test]
    fn albireo_m_matches_table_iii() {
        let b = PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Moderate);
        assert!(close(b.mrr_w, 0.94, 0.02), "mrr = {}", b.mrr_w);
        assert!(close(b.mzi_w, 0.43, 0.02), "mzi = {}", b.mzi_w);
        assert!(close(b.laser_w, 0.09, 0.05), "laser = {}", b.laser_w);
        assert!(close(b.dac_w, 3.98, 0.01), "dac = {}", b.dac_w);
        assert!(close(b.adc_w, 0.65, 0.01), "adc = {}", b.adc_w);
        assert!(close(b.total_w(), 6.19, 0.01), "total = {}", b.total_w());
    }

    #[test]
    fn albireo_a_matches_table_iii() {
        let b = PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Aggressive);
        assert!(close(b.mrr_w, 0.38, 0.02), "mrr = {}", b.mrr_w);
        assert!(close(b.mzi_w, 0.17, 0.02), "mzi = {}", b.mzi_w);
        assert!(close(b.laser_w, 0.12, 0.02), "laser = {}", b.laser_w);
        assert!(close(b.dac_w, 0.80, 0.01), "dac = {}", b.dac_w);
        assert!(close(b.adc_w, 0.13, 0.02), "adc = {}", b.adc_w);
        assert!(close(b.total_w(), 1.64, 0.02), "total = {}", b.total_w());
    }

    #[test]
    fn albireo_27_is_about_59_watts() {
        // §IV-A: "a 60 W version of Albireo, which is scaled up to 27 PLCGs"
        // (58.8 W in §IV-B).
        let b =
            PowerBreakdown::for_chip(&ChipConfig::albireo_27(), TechnologyEstimate::Conservative);
        assert!(close(b.total_w(), 58.8, 0.01), "total = {}", b.total_w());
        assert!(b.total_w() < 60.0, "fits the 60 W budget");
    }

    #[test]
    fn dac_dominates_moderate_estimate() {
        // Table III: DAC portion is 64.3% for Albireo-M.
        let b = PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Moderate);
        let dac_portion = b.dac_w / b.total_w();
        assert!(
            (0.60..0.68).contains(&dac_portion),
            "portion = {dac_portion}"
        );
    }

    #[test]
    fn rows_sum_to_total() {
        let b =
            PowerBreakdown::for_chip(&ChipConfig::albireo_9(), TechnologyEstimate::Conservative);
        let sum: f64 = b.rows().iter().map(|r| r.1).sum();
        assert!((sum - b.total_w()).abs() < 1e-12);
        let portions: f64 = b.rows().iter().map(|r| r.2).sum();
        assert!((portions - 1.0).abs() < 1e-12);
        assert_eq!(b.rows().len(), 7);
    }
}

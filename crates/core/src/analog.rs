//! Functional analog simulation of the Albireo photonic datapath.
//!
//! Where [`crate::sched`] and [`crate::energy`] model *performance*, this
//! module models *function*: it pushes real tensors through the physical
//! signal chain —
//!
//! 1. inputs normalized to optical powers and modulated onto the PLCU's
//!    wavelengths,
//! 2. star-coupler multicast of each kernel row's `Nd + Wx − 1` channels,
//! 3. MZM multiplication (every wavelength on a waveguide scaled by the
//!    same kernel weight, Eq. 2),
//! 4. MRR switching onto the positive/negative rails with inter-channel
//!    crosstalk leakage (the dominant precision limit, §II-C2) and
//!    off-state leakage,
//! 5. balanced photodetection (Eq. 4) with RIN/shot/thermal noise
//!    sampling (Eq. 5/6),
//! 6. TIA + ADC quantization and digital depth-first accumulation over
//!    `⌈Wz/Nu⌉` cycles (Algorithm 2).
//!
//! The result is validated against the digital golden model in
//! `albireo-tensor` within the precision bound predicted by
//! `albireo-photonics::precision`.

use crate::config::ChipConfig;
use albireo_parallel::{split_seed, stream_id, Parallelism};
use albireo_photonics::link::LinkBudget;
use albireo_photonics::mrr::Microring;
use albireo_photonics::noise::NoiseParams;
use albireo_photonics::photodiode::BalancedPd;
use albireo_photonics::precision::PrecisionModel;
use albireo_tensor::conv::ConvSpec;
use albireo_tensor::{output_extent, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the analog simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogSimConfig {
    /// Per-wavelength laser power, W (paper Fig. 3 anchor: 2 mW).
    pub laser_power_w: f64,
    /// ADC resolution, bits (paper: 8-bit converters).
    pub adc_bits: u32,
    /// Sample receiver noise (RIN/shot/thermal).
    pub enable_noise: bool,
    /// Model MRR inter-channel and off-state crosstalk.
    pub enable_crosstalk: bool,
    /// Wavelength-to-channel allocation strategy (see
    /// [`ChannelAllocation`]).
    pub allocation: ChannelAllocation,
    /// Digitally pre-compensate the deterministic crosstalk leakage: the
    /// controller knows what it transmitted, so it can subtract the
    /// predicted inter-channel interference from each detected partial —
    /// an architectural extension beyond the paper (its §II-C treats
    /// crosstalk as an uncorrected precision limit).
    pub crosstalk_compensation: bool,
    /// RNG seed for noise sampling (the simulation is deterministic per
    /// seed).
    pub seed: u64,
}

impl Default for AnalogSimConfig {
    fn default() -> AnalogSimConfig {
        AnalogSimConfig {
            laser_power_w: 2e-3,
            adc_bits: 8,
            enable_noise: true,
            enable_crosstalk: true,
            allocation: ChannelAllocation::Contiguous,
            crosstalk_compensation: false,
            seed: 0xA1B1_2E00,
        }
    }
}

/// How the PLCU's wavelengths are assigned to multicast columns.
///
/// The paper's Fig. 5 assigns each kernel row a *contiguous* block of
/// `Nd + Wx − 1` channels, so a ring's nearest spectral neighbours are the
/// row's own data channels. Interleaving the rows across the FSR (row `r`
/// takes slots `r, r + Wy, r + 2·Wy, …`) multiplies each ring's
/// nearest-neighbour detuning by `Wy`, cutting intra-row crosstalk — an
/// allocation optimization beyond the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelAllocation {
    /// Each row's channels occupy adjacent wavelength slots (the paper's
    /// layout).
    #[default]
    Contiguous,
    /// Rows are interleaved: adjacent slots belong to different rows, so
    /// same-row channels sit `Wy` slots apart.
    RowInterleaved,
}

/// A hardware fault injected into the analog datapath, for reliability
/// studies. Faults apply uniformly to every PLCU of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A switching ring stuck off: the crossing at (kernel row, kernel
    /// column, output column) never drops its signal onto its rail.
    DeadRing {
        /// Kernel row of the crossing.
        row: usize,
        /// Kernel column of the crossing.
        col: usize,
        /// Output column of the crossing.
        output: usize,
    },
    /// A weight MZM stuck at a fixed (signed, normalized) transmission.
    StuckMzm {
        /// Kernel row of the modulator.
        row: usize,
        /// Kernel column of the modulator.
        col: usize,
        /// The stuck weight in `[-1, 1]`.
        weight: f64,
    },
    /// A dead laser/modulator: the multicast column carries no power.
    DeadChannel {
        /// Multicast column index (`0..Nd + Wx − 1`).
        column: usize,
    },
}

/// A set of injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSet {
    faults: Vec<Fault>,
}

impl FaultSet {
    /// An empty (healthy) fault set.
    pub fn new() -> FaultSet {
        FaultSet::default()
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) -> &mut FaultSet {
        self.faults.push(fault);
        self
    }

    /// Whether no faults are present.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The injected faults, in insertion order.
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    fn ring_dead(&self, row: usize, col: usize, output: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::DeadRing { row: r, col: c, output: o }
                if *r == row && *c == col && *o == output)
        })
    }

    fn mzm_override(&self, row: usize, col: usize) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::StuckMzm {
                row: r,
                col: c,
                weight,
            } if *r == row && *c == col => Some(*weight),
            _ => None,
        })
    }

    fn channel_dead(&self, column: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::DeadChannel { column: c } if *c == column))
    }
}

impl AnalogSimConfig {
    /// An ideal configuration (no noise, no crosstalk, fine ADC) — useful
    /// for isolating quantization effects in tests.
    pub fn ideal() -> AnalogSimConfig {
        AnalogSimConfig {
            enable_noise: false,
            enable_crosstalk: false,
            adc_bits: 16,
            ..AnalogSimConfig::default()
        }
    }
}

/// The analog PLCG/chip simulation engine.
#[derive(Debug, Clone)]
pub struct AnalogEngine {
    chip: ChipConfig,
    cfg: AnalogSimConfig,
    ring: Microring,
    pd: BalancedPd,
    noise: NoiseParams,
    /// Per-wavelength optical power arriving at the photodiodes, W.
    p_channel: f64,
    /// Drop-port gain of an on-resonance switching ring (calibrated out of
    /// the output scale).
    main_gain: f64,
    /// Drop-port leakage of an off-state (detuned) ring.
    off_leakage: f64,
    /// Injected hardware faults.
    faults: FaultSet,
    /// Parallel execution policy for the per-kernel work items.
    par: Parallelism,
}

/// Stream-id pass tag for [`AnalogEngine::dot`] noise draws, keeping the
/// FC path's child seeds disjoint from every convolution pass.
const DOT_PASS: u64 = 0xD07;

impl AnalogEngine {
    /// Builds an engine for a chip configuration.
    pub fn new(chip: &ChipConfig, cfg: AnalogSimConfig) -> AnalogEngine {
        let params = chip.optical_params();
        let ring = Microring::from_params(&params);
        let link = LinkBudget::albireo_chip(&params, chip.ng, chip.kernel_x, chip.plcu.nd, 10);
        let p_channel = link.output_power(cfg.laser_power_w);
        AnalogEngine {
            chip: *chip,
            cfg,
            ring,
            pd: BalancedPd::from_params(&params),
            noise: NoiseParams::paper(),
            p_channel,
            main_gain: ring.drop_peak(),
            off_leakage: ring.drop_transmission(ring.fsr() / 2.0),
            faults: FaultSet::new(),
            par: Parallelism::default(),
        }
    }

    /// Sets the parallel execution policy (builder style). Results are
    /// bit-identical at any thread count: noise streams are keyed to work
    /// items, not threads.
    pub fn with_parallelism(mut self, par: Parallelism) -> AnalogEngine {
        self.par = par;
        self
    }

    /// Sets the parallel execution policy in place.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// The current parallel execution policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The per-work-item noise generator for pass `pass`, kernel `m`,
    /// output row `yb`. Derived purely from the configured seed and the
    /// item's logical coordinates, so the stream an item draws from is
    /// independent of thread count and execution order.
    fn item_rng(&self, pass: u64, m: usize, yb: usize) -> StdRng {
        StdRng::seed_from_u64(split_seed(
            self.cfg.seed,
            stream_id(pass, m as u64, yb as u64),
        ))
    }

    /// Injects a set of hardware faults (replacing any previous set).
    pub fn inject_faults(&mut self, faults: FaultSet) {
        self.faults = faults;
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults = FaultSet::new();
    }

    /// The currently injected faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The per-wavelength power reaching the photodiodes, W.
    pub fn channel_power_w(&self) -> f64 {
        self.p_channel
    }

    /// The precision (bits) the photonic subsystem is predicted to support
    /// for this configuration, from the combined noise + crosstalk model.
    pub fn expected_bits(&self) -> f64 {
        let model = PrecisionModel::paper();
        let n = self.chip.wavelengths_per_plcu();
        let levels = model.combined_levels(&self.ring, n, self.p_channel);
        PrecisionModel::with_negative_rail(levels).log2()
    }

    /// Crosstalk (drop transmission) from a channel `offset` wavelength
    /// slots away, with all `wavelengths_per_plcu` channels uniformly
    /// spaced in one FSR.
    fn crosstalk(&self, offset: isize, enabled: bool) -> f64 {
        if offset == 0 {
            return self.main_gain;
        }
        if !enabled {
            return 0.0;
        }
        let n = self.chip.wavelengths_per_plcu() as f64;
        let spacing = self.ring.fsr() / n;
        let slots = match self.cfg.allocation {
            ChannelAllocation::Contiguous => offset as f64,
            // Same-row channels are Wy slots apart under interleaving.
            ChannelAllocation::RowInterleaved => (offset * self.chip.kernel_y as isize) as f64,
        };
        self.ring
            .drop_at_phase(self.ring.phase_detuning(slots * spacing))
    }

    /// Simulates one PLCU cycle: one kernel channel applied to `nd_eff`
    /// overlapping receptive fields.
    ///
    /// `rows[r][c]` is the normalized (∈ [0,1]) input element of kernel row
    /// `r`, multicast column `c` (`c < nd_eff + wx − 1`); `weights[r][k]` is
    /// the *signed, normalized* kernel weight of row `r`, column `k`.
    ///
    /// Returns per-output-column `(positive_rail_w, negative_rail_w)`.
    fn plcu_rails(
        &self,
        rows: &[Vec<f64>],
        weights: &[Vec<f64>],
        nd_eff: usize,
        with_crosstalk: bool,
    ) -> Vec<(f64, f64)> {
        let mut rails = vec![(0.0, 0.0); nd_eff];
        for (r, wrow) in weights.iter().enumerate() {
            let arow = &rows[r];
            for (k, w_programmed) in wrow.iter().enumerate() {
                let w = self.faults.mzm_override(r, k).unwrap_or(*w_programmed);
                if w == 0.0 {
                    continue;
                }
                let mag = w.abs().min(1.0);
                for (d, rail) in rails.iter_mut().enumerate() {
                    if self.faults.ring_dead(r, k, d) {
                        continue;
                    }
                    let target = d + k;
                    // Main term plus crosstalk from the row's other
                    // channels, all scaled by the shared MZM weight.
                    let mut dropped = 0.0;
                    for (c, &a) in arow.iter().enumerate() {
                        if self.faults.channel_dead(c) {
                            continue;
                        }
                        let t = self.crosstalk(c as isize - target as isize, with_crosstalk);
                        if t != 0.0 {
                            dropped += t * a;
                        }
                    }
                    let p_dropped = dropped * mag * self.p_channel;
                    // The matching-sign ring drops onto its rail; the
                    // opposite-rail ring is detuned but leaks a little.
                    let leak = if with_crosstalk && !self.faults.channel_dead(target) {
                        arow.get(target).copied().unwrap_or(0.0)
                            * mag
                            * self.off_leakage
                            * self.p_channel
                    } else {
                        0.0
                    };
                    if w > 0.0 {
                        rail.0 += p_dropped;
                        rail.1 += leak;
                    } else {
                        rail.1 += p_dropped;
                        rail.0 += leak;
                    }
                }
            }
        }
        rails
    }

    /// Converts rail powers to a balanced, noise-sampled, ADC-quantized
    /// *normalized* dot-product value. Noise is drawn from the caller's
    /// per-work-item generator.
    fn detect(&self, p_pos: f64, p_neg: f64, full_scale_terms: usize, rng: &mut StdRng) -> f64 {
        let r = self.pd.positive().responsivity();
        let mut current = self.pd.output_current_total(p_pos, p_neg);
        if self.cfg.enable_noise {
            let n = self.chip.wavelengths_per_plcu();
            let sigma = self.noise.total_sigma(r * (p_pos + p_neg), n);
            current += sigma * sample_standard_normal(rng);
        }
        // ADC over ±full scale.
        let i_fs = r * self.p_channel * self.main_gain * full_scale_terms as f64;
        let max_code = (1i64 << (self.cfg.adc_bits - 1)) - 1;
        let code = ((current / i_fs) * max_code as f64).round() as i64;
        let code = code.clamp(-max_code, max_code);
        // Back to the normalized dot-product domain.
        code as f64 / max_code as f64 * full_scale_terms as f64
    }

    /// Computes a signed dot product `a · w` through the analog datapath
    /// using the FC mapping (one PD column, `Nm·Nu` terms per cycle).
    ///
    /// # Panics
    ///
    /// Panics if any input is negative (optical powers cannot be) or the
    /// lengths differ.
    pub fn dot(&mut self, a: &[f64], w: &[f64]) -> f64 {
        assert_eq!(a.len(), w.len(), "dot operands must have equal length");
        assert!(
            a.iter().all(|&v| v >= 0.0),
            "optical inputs must be non-negative"
        );
        let a_max = a.iter().fold(0.0_f64, |m, v| m.max(*v));
        let w_max = w.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        if a_max == 0.0 || w_max == 0.0 {
            return 0.0;
        }
        let chunk = self.chip.plcu.nm * self.chip.nu;
        let mut acc = 0.0;
        for (ci, (ac, wc)) in a.chunks(chunk).zip(w.chunks(chunk)).enumerate() {
            // Each Nm·Nu chunk is one detection event with its own derived
            // noise stream.
            let mut rng = self.item_rng(DOT_PASS, ci, 0);
            // Each term gets its own wavelength/MZM: model as a 1-column
            // PLCU row per term (no receptive-field sharing in FC, §III-C).
            let mut p_pos = 0.0;
            let mut p_neg = 0.0;
            for (&ai, &wi) in ac.iter().zip(wc.iter()) {
                let a_norm = ai / a_max;
                let w_norm = wi / w_max;
                let p = a_norm * w_norm.abs() * self.main_gain * self.p_channel;
                if w_norm >= 0.0 {
                    p_pos += p;
                    p_neg += a_norm
                        * w_norm.abs()
                        * if self.cfg.enable_crosstalk {
                            self.off_leakage
                        } else {
                            0.0
                        }
                        * self.p_channel;
                } else {
                    p_neg += p;
                    p_pos += a_norm
                        * w_norm.abs()
                        * if self.cfg.enable_crosstalk {
                            self.off_leakage
                        } else {
                            0.0
                        }
                        * self.p_channel;
                }
            }
            acc += self.detect(p_pos, p_neg, chunk, &mut rng);
        }
        acc * a_max * w_max
    }

    /// Runs a full convolution through the analog datapath, following the
    /// Algorithm 2 partitioning (kernels across PLCGs, `Nd` receptive
    /// fields per PLCU, `Nu`-channel groups aggregated depth-first in the
    /// digital domain). No activation is applied.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has more than `Nm` weights per channel, if the
    /// kernel depth mismatches the input, or if any input element is
    /// negative.
    pub fn conv2d(&mut self, input: &Tensor3, kernels: &Tensor4, spec: &ConvSpec) -> Tensor3 {
        self.conv2d_inner(input, kernels, spec, self.chip.plcu.nm, 0)
    }

    /// The shared convolution path. `nm_cap` is the assumed MZM capacity
    /// (the chip's `Nm`, or the widened virtual capacity the large-kernel
    /// decomposition guarantees by masking); `pass` tags this invocation's
    /// noise streams so decomposition passes draw independent noise.
    ///
    /// Output kernels are independent work items executed under the
    /// engine's [`Parallelism`] policy; each `(kernel, output row)` pair
    /// draws noise from its own seed-derived generator, so the output is
    /// bit-identical at any thread count.
    fn conv2d_inner(
        &self,
        input: &Tensor3,
        kernels: &Tensor4,
        spec: &ConvSpec,
        nm_cap: usize,
        pass: u64,
    ) -> Tensor3 {
        let (az, ay, ax) = input.dims();
        let (wm, wz, wy, wx) = kernels.dims();
        assert_eq!(wz, az, "kernel depth {wz} must equal input depth {az}");
        assert!(
            wy * wx <= nm_cap,
            "kernel {wy}x{wx} exceeds the PLCU's {nm_cap} MZMs; decompose it first"
        );
        assert!(
            input.iter().all(|&v| v >= 0.0),
            "optical inputs must be non-negative"
        );
        let _prof = albireo_obs::profile::scope("analog.conv2d");
        let by = output_extent(ay, wy, spec.padding, spec.stride);
        let bx = output_extent(ax, wx, spec.padding, spec.stride);
        let a_max = input.max_abs();
        let w_max = kernels.max_abs();
        let mut out = Tensor3::zeros(wm, by, bx);
        if a_max == 0.0 || w_max == 0.0 {
            return out;
        }
        // Overlapping receptive fields (the multicast pattern) exist only
        // at stride 1; otherwise columns are processed one at a time.
        let nd_eff = if spec.stride == 1 {
            self.chip.plcu.nd
        } else {
            1
        };
        let nu = self.chip.nu;
        let pad = spec.padding as isize;
        let scale = a_max * w_max;
        let full_scale_terms = nm_cap * nu;

        self.par
            .fill_slices(out.as_mut_slice(), (by * bx).max(1), |m, plane| {
                for yb in 0..by {
                    let mut rng = self.item_rng(pass, m, yb);
                    let ya = yb as isize * spec.stride as isize - pad;
                    let mut xb = 0;
                    while xb < bx {
                        let cols = nd_eff.min(bx - xb);
                        let xa = xb as isize * spec.stride as isize - pad;
                        let row_len = cols + wx - 1;
                        let mut totals = vec![0.0; cols];
                        let compensate =
                            self.cfg.crosstalk_compensation && self.cfg.enable_crosstalk;
                        // Depth-first aggregation over Nu-channel groups.
                        let mut z0 = 0;
                        while z0 < az {
                            let group = nu.min(az - z0);
                            let mut p_pos = vec![0.0; cols];
                            let mut p_neg = vec![0.0; cols];
                            // Predicted crosstalk excess (signed rail power)
                            // for digital pre-compensation.
                            let mut excess = vec![0.0; cols];
                            // One wall-clock scope per Nu-group: the MRR/MZM
                            // transfer-function evaluation (row prep + rails).
                            let rails_prof = albireo_obs::profile::scope("analog.rails");
                            for u in 0..group {
                                let z = z0 + u;
                                let rows: Vec<Vec<f64>> = (0..wy)
                                    .map(|r| {
                                        (0..row_len)
                                            .map(|c| {
                                                input.get_padded(
                                                    z,
                                                    ya + r as isize,
                                                    xa + c as isize,
                                                ) / a_max
                                            })
                                            .collect()
                                    })
                                    .collect();
                                let weights: Vec<Vec<f64>> = (0..wy)
                                    .map(|r| {
                                        (0..wx).map(|k| kernels[(m, z, r, k)] / w_max).collect()
                                    })
                                    .collect();
                                let rails = self.plcu_rails(
                                    &rows,
                                    &weights,
                                    cols,
                                    self.cfg.enable_crosstalk,
                                );
                                if compensate {
                                    let ideal = self.plcu_rails(&rows, &weights, cols, false);
                                    for (d, ((p, n), (pi, ni))) in
                                        rails.iter().zip(ideal.iter()).enumerate()
                                    {
                                        excess[d] += (p - n) - (pi - ni);
                                    }
                                }
                                for (d, (p, n)) in rails.into_iter().enumerate() {
                                    // Currents from corresponding PDs across the
                                    // group's PLCUs add in the analog domain.
                                    p_pos[d] += p;
                                    p_neg[d] += n;
                                }
                            }
                            drop(rails_prof);
                            let _detect_prof = albireo_obs::profile::scope("analog.detect");
                            for d in 0..cols {
                                let mut detected =
                                    self.detect(p_pos[d], p_neg[d], full_scale_terms, &mut rng);
                                if compensate {
                                    // Subtract the predicted interference in the
                                    // normalized dot-product domain.
                                    detected -= excess[d] / (self.p_channel * self.main_gain);
                                }
                                totals[d] += detected;
                            }
                            z0 += group;
                        }
                        for (d, t) in totals.into_iter().enumerate() {
                            plane[yb * bx + xb + d] = t * scale;
                        }
                        xb += cols;
                    }
                }
            });
        out
    }
}

impl AnalogEngine {
    /// Convolution for kernels of any size: kernels whose `Wy·Wx` exceeds
    /// the PLCU's `Nm` MZMs are decomposed into row bands of at most
    /// `⌊Nm/Wx⌋` kernel rows, each applied in its own pass with the
    /// partial outputs accumulated digitally — the extra cycles the paper
    /// describes for kernels that "will not completely fit in the PLCU's
    /// MZMs" (§III-A).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is wider than `Nm` (a row must fit), on depth
    /// mismatch, or on negative inputs.
    pub fn conv2d_large(&mut self, input: &Tensor3, kernels: &Tensor4, spec: &ConvSpec) -> Tensor3 {
        self.conv2d_large_inner(input, kernels, spec, 0)
    }

    /// [`conv2d_large`](AnalogEngine::conv2d_large) with an explicit noise
    /// stream base: decomposition pass `t` uses pass id `pass_base + t`,
    /// so every tile — and every group in a grouped convolution — draws
    /// independent noise.
    fn conv2d_large_inner(
        &self,
        input: &Tensor3,
        kernels: &Tensor4,
        spec: &ConvSpec,
        pass_base: u64,
    ) -> Tensor3 {
        let (wm, wz, wy, wx) = kernels.dims();
        let nm = self.chip.plcu.nm;
        if wy * wx <= nm {
            return self.conv2d_inner(input, kernels, spec, nm, pass_base);
        }
        // Tile the kernel into masked sub-kernels with at most Nm non-zero
        // weights each: full-width row bands when a row fits the MZMs,
        // single-row column chunks otherwise. The sum over tiles equals
        // the full convolution by linearity.
        let (rows_per_pass, cols_per_pass) = if wx <= nm {
            ((nm / wx).max(1), wx)
        } else {
            (1, nm)
        };
        let mut out: Option<Tensor3> = None;
        let mut pass = pass_base;
        let mut r0 = 0;
        while r0 < wy {
            let band = rows_per_pass.min(wy - r0);
            let mut c0 = 0;
            while c0 < wx {
                let chunk = cols_per_pass.min(wx - c0);
                let mut masked = Tensor4::zeros(wm, wz, wy, wx);
                for m in 0..wm {
                    for z in 0..wz {
                        for r in r0..r0 + band {
                            for k in c0..c0 + chunk {
                                masked.set(m, z, r, k, kernels[(m, z, r, k)]);
                            }
                        }
                    }
                }
                // Widen the virtual capacity so the shared path accepts the
                // masked kernel; the physical constraint (non-zero weights
                // ≤ Nm) is upheld by construction.
                let partial = self.conv2d_inner(input, &masked, spec, (wy * wx).max(nm), pass);
                pass += 1;
                out = Some(match out {
                    None => partial,
                    Some(mut acc) => {
                        for (a, p) in acc.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                            *a += p;
                        }
                        acc
                    }
                });
                c0 += chunk;
            }
            r0 += band;
        }
        out.expect("at least one pass")
    }

    /// Grouped convolution through the analog datapath (AlexNet's two-group
    /// layers): each group is an independent convolution over its channel
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if the channel counts are not divisible by `groups`.
    pub fn conv2d_grouped(
        &mut self,
        input: &Tensor3,
        kernels: &Tensor4,
        spec: &ConvSpec,
        groups: usize,
    ) -> Tensor3 {
        assert!(groups > 0, "groups must be positive");
        let (az, ay, ax) = input.dims();
        let (wm, wz, wy, wx) = kernels.dims();
        assert_eq!(az % groups, 0, "input depth not divisible by groups");
        assert_eq!(wm % groups, 0, "kernel count not divisible by groups");
        assert_eq!(wz, az / groups, "kernel depth must be input depth / groups");
        if groups == 1 {
            return self.conv2d_large_inner(input, kernels, spec, 0);
        }
        let ch_per_group = az / groups;
        let kn_per_group = wm / groups;
        let by = output_extent(ay, wy, spec.padding, spec.stride);
        let bx = output_extent(ax, wx, spec.padding, spec.stride);
        let mut out = Tensor3::zeros(wm, by, bx);
        for g in 0..groups {
            let mut sub = Tensor3::zeros(ch_per_group, ay, ax);
            for z in 0..ch_per_group {
                for y in 0..ay {
                    for x in 0..ax {
                        sub.set(z, y, x, input[(g * ch_per_group + z, y, x)]);
                    }
                }
            }
            let mut subk = Tensor4::zeros(kn_per_group, wz, wy, wx);
            for m in 0..kn_per_group {
                for z in 0..wz {
                    for y in 0..wy {
                        for x in 0..wx {
                            subk.set(m, z, y, x, kernels[(g * kn_per_group + m, z, y, x)]);
                        }
                    }
                }
            }
            // Each group gets its own noise-stream block (a group never
            // tiles into more than 1024 decomposition passes).
            let part = self.conv2d_large_inner(&sub, &subk, spec, g as u64 * 1024);
            for m in 0..kn_per_group {
                for y in 0..by {
                    for x in 0..bx {
                        out.set(g * kn_per_group + m, y, x, part[(m, y, x)]);
                    }
                }
            }
        }
        out
    }
}

/// Box-Muller standard-normal sample.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albireo_tensor::conv::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(cfg: AnalogSimConfig) -> AnalogEngine {
        AnalogEngine::new(&ChipConfig::albireo_9(), cfg)
    }

    fn random_case(seed: u64, z: usize, n: usize) -> (Tensor3, Tensor4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(z, n, n, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(4, z, 3, 3, 0.3, &mut rng);
        (input, kernels)
    }

    #[test]
    fn ideal_conv_matches_reference_closely() {
        let (input, kernels) = random_case(1, 3, 8);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let mut eng = engine(AnalogSimConfig::ideal());
        let analog = eng.conv2d(&input, &kernels, &spec);
        let full_scale = input.max_abs() * kernels.max_abs() * 27.0;
        let err = analog.max_abs_diff(&reference) / full_scale;
        // Only 16-bit ADC quantization remains: error well below 0.1%.
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn realistic_conv_matches_within_predicted_precision() {
        let (input, kernels) = random_case(2, 6, 8);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let mut eng = engine(AnalogSimConfig::default());
        let bits = eng.expected_bits();
        assert!(bits > 5.0, "predicted bits = {bits}");
        let analog = eng.conv2d(&input, &kernels, &spec);
        // Error budget: the predicted precision per detected partial,
        // accumulated over ⌈Wz/Nu⌉ = 2 cycles, against the per-cycle full
        // scale.
        let full_scale = input.max_abs() * kernels.max_abs() * 27.0;
        let cycles = 2.0;
        let budget = cycles * full_scale / 2f64.powf(bits - 1.0);
        let err = analog.max_abs_diff(&reference);
        assert!(
            err < budget,
            "error {err} exceeds budget {budget} (bits = {bits})"
        );
    }

    #[test]
    fn noise_only_errors_are_small() {
        let (input, kernels) = random_case(3, 3, 6);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let cfg = AnalogSimConfig {
            enable_crosstalk: false,
            adc_bits: 12,
            ..AnalogSimConfig::default()
        };
        let mut eng = engine(cfg);
        let analog = eng.conv2d(&input, &kernels, &spec);
        let full_scale = input.max_abs() * kernels.max_abs() * 27.0;
        let err = analog.max_abs_diff(&reference) / full_scale;
        assert!(err < 0.02, "relative error {err}");
    }

    #[test]
    fn crosstalk_biases_are_bounded() {
        let (input, kernels) = random_case(4, 3, 6);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let cfg = AnalogSimConfig {
            enable_noise: false,
            adc_bits: 16,
            ..AnalogSimConfig::default()
        };
        let mut eng = engine(cfg);
        let analog = eng.conv2d(&input, &kernels, &spec);
        let full_scale = input.max_abs() * kernels.max_abs() * 27.0;
        let err = analog.max_abs_diff(&reference) / full_scale;
        // Worst-case aggregate crosstalk for 21 λ at k² = 0.03 is a few
        // percent of full scale.
        assert!(err < 0.05, "relative error {err}");
        assert!(err > 0.0, "crosstalk should perturb the result");
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let (input, kernels) = random_case(5, 3, 6);
        let spec = ConvSpec::unit();
        let a = engine(AnalogSimConfig::default()).conv2d(&input, &kernels, &spec);
        let b = engine(AnalogSimConfig::default()).conv2d(&input, &kernels, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_with_noise() {
        let (input, kernels) = random_case(6, 3, 6);
        let spec = ConvSpec::unit();
        let a = engine(AnalogSimConfig::default()).conv2d(&input, &kernels, &spec);
        let cfg2 = AnalogSimConfig {
            seed: 99,
            ..AnalogSimConfig::default()
        };
        let b = engine(cfg2).conv2d(&input, &kernels, &spec);
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn strided_conv_supported() {
        let (input, kernels) = random_case(7, 3, 9);
        let spec = ConvSpec::new(2, 0);
        let reference = conv2d(&input, &kernels, &spec);
        let mut eng = engine(AnalogSimConfig::ideal());
        let analog = eng.conv2d(&input, &kernels, &spec);
        assert_eq!(analog.dims(), reference.dims());
        let full_scale = input.max_abs() * kernels.max_abs() * 27.0;
        assert!(analog.max_abs_diff(&reference) / full_scale < 1e-3);
    }

    #[test]
    fn fc_dot_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let a: Vec<f64> = (0..100).map(|_| rng.random::<f64>()).collect();
        let w: Vec<f64> = (0..100).map(|_| rng.random::<f64>() - 0.5).collect();
        let reference: f64 = a.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
        let mut eng = engine(AnalogSimConfig::ideal());
        let analog = eng.dot(&a, &w);
        let a_max = a.iter().cloned().fold(0.0_f64, f64::max);
        let w_max = w.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
        let full_scale = a_max * w_max * 27.0;
        assert!(
            (analog - reference).abs() / full_scale < 1e-3,
            "analog {analog} vs reference {reference}"
        );
    }

    #[test]
    fn zero_inputs_give_zero_output() {
        let input = Tensor3::zeros(3, 6, 6);
        let kernels = Tensor4::filled(2, 3, 3, 3, 0.5);
        let mut eng = engine(AnalogSimConfig::default());
        let out = eng.conv2d(&input, &kernels, &ConvSpec::unit());
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_inputs_rejected() {
        let input = Tensor3::filled(1, 4, 4, -1.0);
        let kernels = Tensor4::filled(1, 1, 3, 3, 0.5);
        let mut eng = engine(AnalogSimConfig::default());
        let _ = eng.conv2d(&input, &kernels, &ConvSpec::unit());
    }

    #[test]
    #[should_panic(expected = "exceeds the PLCU")]
    fn oversized_kernel_rejected() {
        let input = Tensor3::filled(1, 8, 8, 1.0);
        let kernels = Tensor4::filled(1, 1, 5, 5, 0.5);
        let mut eng = engine(AnalogSimConfig::default());
        let _ = eng.conv2d(&input, &kernels, &ConvSpec::unit());
    }

    #[test]
    fn channel_power_is_microwatt_scale() {
        let eng = engine(AnalogSimConfig::default());
        let p = eng.channel_power_w();
        assert!(p > 1e-7 && p < 1e-3, "p = {p}");
    }

    #[test]
    fn expected_bits_reasonable() {
        let eng = engine(AnalogSimConfig::default());
        let bits = eng.expected_bits();
        // §II-C2: 7 bits is the design's worst-case target.
        assert!((5.0..10.0).contains(&bits), "bits = {bits}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use albireo_tensor::conv::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn case(seed: u64) -> (Tensor3, Tensor4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(3, 8, 8, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 3, 3, 3, 0.3, &mut rng);
        (input, kernels)
    }

    fn engine(cfg: AnalogSimConfig) -> AnalogEngine {
        AnalogEngine::new(&ChipConfig::albireo_9(), cfg)
    }

    #[test]
    fn crosstalk_compensation_recovers_precision() {
        let (input, kernels) = case(101);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        let base_cfg = AnalogSimConfig {
            enable_noise: false,
            adc_bits: 16,
            ..AnalogSimConfig::default()
        };
        let uncompensated = engine(base_cfg).conv2d(&input, &kernels, &spec);
        let comp_cfg = AnalogSimConfig {
            crosstalk_compensation: true,
            ..base_cfg
        };
        let compensated = engine(comp_cfg).conv2d(&input, &kernels, &spec);
        let err_raw = uncompensated.max_abs_diff(&reference) / fs;
        let err_comp = compensated.max_abs_diff(&reference) / fs;
        assert!(
            err_comp < err_raw / 10.0,
            "compensation should cut error >10x: {err_raw} -> {err_comp}"
        );
    }

    #[test]
    fn compensation_still_helps_under_noise() {
        // Compensation removes the deterministic crosstalk bias but not
        // the stochastic receiver noise, so compare *mean* absolute error
        // aggregated over several noise seeds — a single draw's max error
        // can land wherever the noise happens to spike.
        let (input, kernels) = case(102);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let mean_err = |compensate: bool| {
            let mut total = 0.0;
            let mut count = 0usize;
            for seed in [11u64, 22, 33] {
                let cfg = AnalogSimConfig {
                    crosstalk_compensation: compensate,
                    seed,
                    ..AnalogSimConfig::default()
                };
                let out = engine(cfg).conv2d(&input, &kernels, &spec);
                for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
                    total += (a - b).abs();
                    count += 1;
                }
            }
            total / count as f64
        };
        let err_raw = mean_err(false);
        let err_comp = mean_err(true);
        assert!(err_comp < err_raw, "{err_comp} vs {err_raw}");
    }

    #[test]
    fn dead_ring_degrades_one_output_column_family() {
        let (input, kernels) = case(103);
        let spec = ConvSpec::unit();
        let mut healthy = engine(AnalogSimConfig::ideal());
        let clean = healthy.conv2d(&input, &kernels, &spec);
        let mut faulty = engine(AnalogSimConfig::ideal());
        let mut faults = FaultSet::new();
        faults.push(Fault::DeadRing {
            row: 1,
            col: 1,
            output: 2,
        });
        faulty.inject_faults(faults);
        let broken = faulty.conv2d(&input, &kernels, &spec);
        assert!(broken.max_abs_diff(&clean) > 0.0, "fault must be visible");
        // Only output columns congruent to 2 mod Nd are affected.
        let (_, by, bx) = clean.dims();
        for m in 0..2 {
            for y in 0..by {
                for x in 0..bx {
                    let diff = (clean[(m, y, x)] - broken[(m, y, x)]).abs();
                    if x % 5 != 2 {
                        assert!(diff < 1e-9, "column {x} should be clean, diff {diff}");
                    }
                }
            }
        }
    }

    #[test]
    fn stuck_mzm_biases_everything_it_touches() {
        let (input, kernels) = case(104);
        let spec = ConvSpec::unit();
        let clean = engine(AnalogSimConfig::ideal()).conv2d(&input, &kernels, &spec);
        let mut faulty = engine(AnalogSimConfig::ideal());
        let mut faults = FaultSet::new();
        faults.push(Fault::StuckMzm {
            row: 0,
            col: 0,
            weight: 1.0,
        });
        faulty.inject_faults(faults);
        let broken = faulty.conv2d(&input, &kernels, &spec);
        assert!(broken.max_abs_diff(&clean) > 1e-3);
    }

    #[test]
    fn dead_channel_loses_signal() {
        let (input, kernels) = case(105);
        let spec = ConvSpec::unit();
        let clean = engine(AnalogSimConfig::ideal()).conv2d(&input, &kernels, &spec);
        let mut faulty = engine(AnalogSimConfig::ideal());
        let mut faults = FaultSet::new();
        faults.push(Fault::DeadChannel { column: 0 });
        faulty.inject_faults(faults);
        let broken = faulty.conv2d(&input, &kernels, &spec);
        assert!(broken.max_abs_diff(&clean) > 1e-3);
    }

    #[test]
    fn clear_faults_restores_health() {
        let (input, kernels) = case(106);
        let spec = ConvSpec::unit();
        let mut eng = engine(AnalogSimConfig::ideal());
        let clean = eng.conv2d(&input, &kernels, &spec);
        let mut faults = FaultSet::new();
        faults.push(Fault::DeadChannel { column: 1 });
        eng.inject_faults(faults);
        assert_eq!(eng.faults().len(), 1);
        eng.clear_faults();
        assert!(eng.faults().is_empty());
        let recovered = eng.conv2d(&input, &kernels, &spec);
        assert!(recovered.max_abs_diff(&clean) < 1e-12);
    }

    #[test]
    fn more_faults_more_error() {
        let (input, kernels) = case(107);
        let spec = ConvSpec::unit();
        let clean = engine(AnalogSimConfig::ideal()).conv2d(&input, &kernels, &spec);
        let mut errs = Vec::new();
        for n_faults in [1usize, 3, 6] {
            let mut eng = engine(AnalogSimConfig::ideal());
            let mut faults = FaultSet::new();
            for i in 0..n_faults {
                faults.push(Fault::DeadRing {
                    row: i % 3,
                    col: i % 3,
                    output: i % 5,
                });
            }
            eng.inject_faults(faults);
            let broken = eng.conv2d(&input, &kernels, &spec);
            errs.push(broken.max_abs_diff(&clean));
        }
        assert!(errs[0] <= errs[1] && errs[1] <= errs[2], "{errs:?}");
    }
}

#[cfg(test)]
mod decomposition_tests {
    use super::*;
    use albireo_tensor::conv::{conv2d, conv2d_grouped};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> AnalogEngine {
        AnalogEngine::new(&ChipConfig::albireo_9(), AnalogSimConfig::ideal())
    }

    #[test]
    fn five_by_five_kernel_decomposes_correctly() {
        let mut rng = StdRng::seed_from_u64(201);
        let input = Tensor3::random_uniform(2, 10, 10, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 2, 5, 5, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let analog = engine().conv2d_large(&input, &kernels, &spec);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        let err = analog.max_abs_diff(&reference) / fs;
        // 3 passes of 16-bit quantization: still well under 0.5%.
        assert!(err < 5e-3, "relative error {err}");
    }

    #[test]
    fn small_kernels_take_the_direct_path() {
        let mut rng = StdRng::seed_from_u64(202);
        let input = Tensor3::random_uniform(1, 8, 8, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(1, 1, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let direct = engine().conv2d(&input, &kernels, &spec);
        let via_large = engine().conv2d_large(&input, &kernels, &spec);
        assert_eq!(direct, via_large);
    }

    #[test]
    fn alexnet_conv1_shape_11x11_stride_4() {
        let mut rng = StdRng::seed_from_u64(203);
        let input = Tensor3::random_uniform(3, 19, 19, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 3, 11, 11, 0.1, &mut rng);
        let spec = ConvSpec::new(4, 0);
        let reference = conv2d(&input, &kernels, &spec);
        let analog = engine().conv2d_large(&input, &kernels, &spec);
        assert_eq!(analog.dims(), reference.dims());
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        assert!(analog.max_abs_diff(&reference) / fs < 2e-2);
    }

    #[test]
    fn grouped_analog_matches_grouped_reference() {
        let mut rng = StdRng::seed_from_u64(204);
        let input = Tensor3::random_uniform(4, 8, 8, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(4, 2, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d_grouped(&input, &kernels, &spec, 2);
        let analog = engine().conv2d_grouped(&input, &kernels, &spec, 2);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        assert!(analog.max_abs_diff(&reference) / fs < 1e-3);
    }

    #[test]
    fn one_group_equals_direct() {
        let mut rng = StdRng::seed_from_u64(205);
        let input = Tensor3::random_uniform(2, 6, 6, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 2, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let a = engine().conv2d_grouped(&input, &kernels, &spec, 1);
        let b = engine().conv2d(&input, &kernels, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn wide_single_row_kernel_decomposes_by_columns() {
        let mut rng = StdRng::seed_from_u64(206);
        let input = Tensor3::random_uniform(1, 4, 16, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(1, 1, 1, 11, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let analog = engine().conv2d_large(&input, &kernels, &spec);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        assert!(analog.max_abs_diff(&reference) / fs < 5e-3);
    }

    #[test]
    fn capacity_restored_after_unchecked_pass() {
        let mut eng = engine();
        let input = Tensor3::filled(1, 8, 8, 1.0);
        let kernels = Tensor4::filled(1, 1, 5, 5, 0.5);
        let _ = eng.conv2d_large(&input, &kernels, &ConvSpec::unit());
        assert_eq!(eng.chip.plcu.nm, 9, "nm must be restored");
    }
}

#[cfg(test)]
mod allocation_tests {
    use super::*;
    use albireo_tensor::conv::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interleaved_allocation_reduces_crosstalk_error() {
        let chip = ChipConfig::albireo_9();
        let mut rng = StdRng::seed_from_u64(301);
        let input = Tensor3::random_uniform(3, 10, 10, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 3, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        let run = |allocation: ChannelAllocation| {
            let cfg = AnalogSimConfig {
                enable_noise: false,
                adc_bits: 16,
                allocation,
                ..AnalogSimConfig::default()
            };
            let mut e = AnalogEngine::new(&chip, cfg);
            e.conv2d(&input, &kernels, &spec).max_abs_diff(&reference) / fs
        };
        let contiguous = run(ChannelAllocation::Contiguous);
        let interleaved = run(ChannelAllocation::RowInterleaved);
        assert!(
            interleaved < contiguous / 3.0,
            "interleaving should cut crosstalk >3x: {contiguous} -> {interleaved}"
        );
    }

    #[test]
    fn allocation_is_irrelevant_without_crosstalk() {
        let chip = ChipConfig::albireo_9();
        let mut rng = StdRng::seed_from_u64(302);
        let input = Tensor3::random_uniform(2, 6, 6, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(1, 2, 3, 3, 0.3, &mut rng);
        let spec = ConvSpec::unit();
        let mut a = AnalogEngine::new(
            &chip,
            AnalogSimConfig {
                allocation: ChannelAllocation::Contiguous,
                ..AnalogSimConfig::ideal()
            },
        );
        let mut b = AnalogEngine::new(
            &chip,
            AnalogSimConfig {
                allocation: ChannelAllocation::RowInterleaved,
                ..AnalogSimConfig::ideal()
            },
        );
        assert_eq!(
            a.conv2d(&input, &kernels, &spec),
            b.conv2d(&input, &kernels, &spec)
        );
    }
}

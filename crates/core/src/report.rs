//! Plain-text table formatting shared by the experiment harness bins,
//! plus the [`json`] helpers every hand-rolled JSON emitter uses.

/// Minimal hand-rolled JSON formatting helpers.
///
/// The build environment has no serde, so every machine-readable artifact
/// (`BENCH_parallel.json`, `BENCH_serving.json`, the serve CLI's `--json`
/// output) is emitted by hand. These helpers pin the shared conventions —
/// floats as `{:.6}` with non-finite values mapped to `null`, arrays with
/// `", "` separators — so the emitters stay byte-identical to each other
/// and to their committed golden artifacts.
pub mod json {
    /// A finite float with the workspace's canonical six decimals;
    /// non-finite values become `null`.
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        }
    }

    /// `[a, b, c]` with `", "` separators.
    pub fn usize_array(values: &[usize]) -> String {
        let inner: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        format!("[{}]", inner.join(", "))
    }

    /// The separator after element `i` of `len`: `","` between elements,
    /// nothing after the last.
    pub fn sep(i: usize, len: usize) -> &'static str {
        if i + 1 < len {
            ","
        } else {
            ""
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn num_formats_six_decimals_and_null() {
            assert_eq!(num(1.25), "1.250000");
            assert_eq!(num(0.0), "0.000000");
            assert_eq!(num(f64::NAN), "null");
            assert_eq!(num(f64::INFINITY), "null");
        }

        #[test]
        fn arrays_and_separators() {
            assert_eq!(usize_array(&[1, 2, 8]), "[1, 2, 8]");
            assert_eq!(usize_array(&[]), "[]");
            assert_eq!(sep(0, 2), ",");
            assert_eq!(sep(1, 2), "");
        }
    }
}

/// Formats a table with a header row, aligning columns to their widest cell.
///
/// ```
/// use albireo_core::report::format_table;
/// let t = format_table(
///     &["network", "latency"],
///     &[vec!["AlexNet".into(), "0.13 ms".into()]],
/// );
/// assert!(t.contains("AlexNet"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with an adaptive unit (`s`, `ms`, `µs`, `ns`).
pub fn format_seconds(s: f64) -> String {
    let a = s.abs();
    if a >= 1.0 {
        format!("{s:.3} s")
    } else if a >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Formats joules with an adaptive unit (`J`, `mJ`, `µJ`, `nJ`).
pub fn format_joules(j: f64) -> String {
    let a = j.abs();
    if a >= 1.0 {
        format!("{j:.3} J")
    } else if a >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} µJ", j * 1e6)
    } else {
        format!("{:.1} nJ", j * 1e9)
    }
}

/// Formats watts with an adaptive unit (`W`, `mW`, `µW`).
pub fn format_watts(w: f64) -> String {
    let a = w.abs();
    if a >= 1.0 {
        format!("{w:.2} W")
    } else if a >= 1e-3 {
        format!("{:.2} mW", w * 1e3)
    } else {
        format!("{:.1} µW", w * 1e6)
    }
}

/// Formats a ratio as the paper's "N X" improvement style.
pub fn format_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0} X")
    } else if r >= 10.0 {
        format!("{r:.1} X")
    } else {
        format!("{r:.2} X")
    }
}

/// Serializes rows to CSV (no quoting; intended for numeric experiment
/// dumps).
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "longer"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        let _ = format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn second_units() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(2.5e-3), "2.500 ms");
        assert_eq!(format_seconds(2.5e-6), "2.500 µs");
        assert_eq!(format_seconds(2.5e-9), "2.5 ns");
    }

    #[test]
    fn joule_units() {
        assert_eq!(format_joules(0.0581), "58.100 mJ");
        assert_eq!(format_joules(1.2), "1.200 J");
    }

    #[test]
    fn watt_units() {
        assert_eq!(format_watts(22.7), "22.70 W");
        assert_eq!(format_watts(3.1e-3), "3.10 mW");
        assert_eq!(format_watts(388e-6), "388.0 µW");
    }

    #[test]
    fn ratio_style() {
        assert_eq!(format_ratio(110.3), "110 X");
        assert_eq!(format_ratio(74.2), "74.2 X");
        assert_eq!(format_ratio(1.7), "1.70 X");
    }

    #[test]
    fn csv_round_trip() {
        let csv = to_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "x,y\n1,2\n");
    }
}

//! Property-based tests on the architecture models: scheduling coverage,
//! power/area composition, trace semantics, and analog-engine sanity for
//! arbitrary configurations.

use albireo_core::analog::{AnalogEngine, AnalogSimConfig};
use albireo_core::area::AreaBreakdown;
use albireo_core::config::{ChipConfig, PlcuConfig, TechnologyEstimate};
use albireo_core::inventory::DeviceInventory;
use albireo_core::power::PowerBreakdown;
use albireo_core::sched::layer_cycles;
use albireo_core::trace::{summarize, trace_kernel};
use albireo_nn::layer::{LayerInstance, LayerKind, VolumeShape};
use albireo_tensor::conv::{conv2d, ConvSpec};
use albireo_tensor::{output_extent, Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn conv_instance(kernels: usize, channels: usize, extent: usize, stride: usize) -> LayerInstance {
    let out = output_extent(extent, 3, 1, stride);
    LayerInstance {
        name: "conv".into(),
        kind: LayerKind::conv(kernels, 3, stride, 1),
        input: VolumeShape::new(channels, extent, extent),
        output: VolumeShape::new(kernels, out, out),
        is_branch: false,
    }
}

proptest! {
    /// The scheduler always provisions at least as many MAC slots as the
    /// layer needs, for arbitrary geometry and chip configuration.
    #[test]
    fn schedule_capacity_covers_work(
        kernels in 1usize..96,
        channels in 1usize..96,
        extent in 3usize..32,
        stride in 1usize..3,
        ng in 1usize..16,
    ) {
        let chip = ChipConfig::with_ng(ng);
        let layer = conv_instance(kernels, channels, extent, stride);
        let cycles = layer_cycles(&chip, &layer);
        prop_assert!(cycles > 0);
        prop_assert!(
            cycles * chip.peak_macs_per_cycle() >= layer.macs(),
            "cycles {cycles} × {} < macs {}",
            chip.peak_macs_per_cycle(),
            layer.macs()
        );
    }

    /// Cycle counts shrink monotonically (or stay flat) along every
    /// parallelism axis.
    #[test]
    fn schedule_monotone_in_each_axis(
        kernels in 1usize..64,
        channels in 1usize..64,
        extent in 4usize..24,
    ) {
        let layer = conv_instance(kernels, channels, extent, 1);
        let base = ChipConfig::albireo_9();
        let c_base = layer_cycles(&base, &layer);

        let mut more_ng = base;
        more_ng.ng += 1;
        prop_assert!(layer_cycles(&more_ng, &layer) <= c_base);

        let mut more_nu = base;
        more_nu.nu += 1;
        prop_assert!(layer_cycles(&more_nu, &layer) <= c_base);

        let mut more_nd = base;
        more_nd.plcu = PlcuConfig { nm: 9, nd: base.plcu.nd + 1 };
        prop_assert!(layer_cycles(&more_nd, &layer) <= c_base);
    }

    /// Power and area totals equal the sum of their reported rows for any
    /// group count and estimate.
    #[test]
    fn power_area_rows_compose(ng in 1usize..40) {
        let chip = ChipConfig::with_ng(ng);
        for estimate in TechnologyEstimate::all() {
            let p = PowerBreakdown::for_chip(&chip, estimate);
            let row_sum: f64 = p.rows().iter().map(|r| r.1).sum();
            prop_assert!((row_sum - p.total_w()).abs() < 1e-9);
        }
        let a = AreaBreakdown::for_chip(&chip);
        let row_sum_mm2: f64 = a.rows().iter().map(|r| r.1).sum();
        prop_assert!((row_sum_mm2 - a.total_mm2()).abs() < 1e-6);
        prop_assert!(a.active_mm2() < a.total_mm2());
    }

    /// Device counts scale exactly linearly in the group count except the
    /// shared input bank.
    #[test]
    fn inventory_scaling(ng in 1usize..30) {
        let base = DeviceInventory::for_chip(&ChipConfig::with_ng(1));
        let scaled = DeviceInventory::for_chip(&ChipConfig::with_ng(ng));
        prop_assert_eq!(scaled.switching_mrrs, base.switching_mrrs * ng);
        prop_assert_eq!(scaled.weight_mzms, base.weight_mzms * ng);
        prop_assert_eq!(scaled.tias, base.tias * ng);
        prop_assert_eq!(scaled.awgs, ng);
        // The laser/modulator bank is broadcast-shared.
        prop_assert_eq!(scaled.lasers, base.lasers);
        prop_assert_eq!(scaled.input_modulators, base.input_modulators);
    }

    /// Every trace covers each output exactly once and completes each
    /// block with a writeback.
    #[test]
    fn trace_covers_outputs(
        out_y in 1usize..10,
        out_x in 1usize..20,
        channels in 1usize..40,
    ) {
        let chip = ChipConfig::albireo_9();
        let trace = trace_kernel(&chip, 0, out_y, out_x, channels);
        let summary = summarize(&trace);
        prop_assert_eq!(summary.outputs_written, (out_y * out_x) as u64);
        let groups = channels.div_ceil(chip.nu) as u64;
        let blocks = out_y as u64 * (out_x.div_ceil(chip.plcu.nd)) as u64;
        prop_assert_eq!(summary.cycles, blocks * groups);
        prop_assert_eq!(summary.writebacks, blocks);
    }

    /// The analog engine, with ideal settings, reproduces the digital
    /// reference for any random small convolution.
    #[test]
    fn analog_ideal_matches_reference(seed in 0u64..200, z in 1usize..5) {
        let chip = ChipConfig::albireo_9();
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(z, 6, 6, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, z, 3, 3, 0.4, &mut rng);
        let spec = ConvSpec::unit();
        let reference = conv2d(&input, &kernels, &spec);
        let mut engine = AnalogEngine::new(&chip, AnalogSimConfig::ideal());
        let analog = engine.conv2d(&input, &kernels, &spec);
        let fs = input.max_abs() * kernels.max_abs() * 27.0;
        if fs > 0.0 {
            prop_assert!(analog.max_abs_diff(&reference) / fs < 1e-3);
        }
    }

    /// The analog engine never produces non-finite outputs under any
    /// effect combination.
    #[test]
    fn analog_outputs_finite(
        seed in 0u64..200,
        noise in proptest::bool::ANY,
        crosstalk in proptest::bool::ANY,
    ) {
        let chip = ChipConfig::albireo_9();
        let cfg = AnalogSimConfig {
            enable_noise: noise,
            enable_crosstalk: crosstalk,
            ..AnalogSimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::random_uniform(2, 5, 5, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(2, 2, 3, 3, 0.4, &mut rng);
        let mut engine = AnalogEngine::new(&chip, cfg);
        let out = engine.conv2d(&input, &kernels, &ConvSpec::unit());
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }
}

//! Property tests of the analog engine's determinism contract: with noise
//! and crosstalk enabled, the parallel simulation is bit-identical to the
//! serial one for arbitrary shapes, seeds, and thread counts, because every
//! (pass, kernel, output-row) work item draws from its own split seed.

use albireo_core::analog::{AnalogEngine, AnalogSimConfig};
use albireo_core::config::ChipConfig;
use albireo_parallel::{split_seed, stream_id, Parallelism};
use albireo_tensor::conv::ConvSpec;
use albireo_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn noisy_config(seed: u64) -> AnalogSimConfig {
    AnalogSimConfig {
        enable_noise: true,
        enable_crosstalk: true,
        seed,
        ..AnalogSimConfig::default()
    }
}

proptest! {
    #[test]
    fn analog_conv_bit_identical_at_any_thread_count(
        data_seed in 0u64..1 << 32,
        noise_seed in 0u64..1 << 32,
        z in 1usize..5,
        n in 4usize..9,
        m in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(data_seed);
        let input = Tensor3::random_uniform(z, n, n, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(m, z, 3, 3, 0.3, &mut rng);
        let chip = ChipConfig::albireo_9();
        let spec = ConvSpec::unit();
        let mut serial_engine = AnalogEngine::new(&chip, noisy_config(noise_seed))
            .with_parallelism(Parallelism::serial());
        let serial = serial_engine.conv2d(&input, &kernels, &spec);
        for threads in THREAD_COUNTS {
            let mut engine = AnalogEngine::new(&chip, noisy_config(noise_seed))
                .with_parallelism(Parallelism::with_threads(threads));
            let par = engine.conv2d(&input, &kernels, &spec);
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn analog_large_kernel_decomposition_is_deterministic(
        noise_seed in 0u64..1 << 32,
        threads in 2usize..9,
    ) {
        // 5×5 kernels exceed the 9-MZM PLCU, forcing tiled decomposition —
        // every tile gets its own pass id, so parallel stays bit-identical.
        let mut rng = StdRng::seed_from_u64(7);
        let input = Tensor3::random_uniform(2, 9, 9, 0.0, 1.0, &mut rng);
        let kernels = Tensor4::random_gaussian(3, 2, 5, 5, 0.3, &mut rng);
        let chip = ChipConfig::albireo_9();
        let spec = ConvSpec::unit();
        let mut serial_engine = AnalogEngine::new(&chip, noisy_config(noise_seed))
            .with_parallelism(Parallelism::serial());
        let serial = serial_engine.conv2d_large(&input, &kernels, &spec);
        let mut engine = AnalogEngine::new(&chip, noisy_config(noise_seed))
            .with_parallelism(Parallelism::with_threads(threads));
        prop_assert_eq!(&engine.conv2d_large(&input, &kernels, &spec), &serial);
    }

    #[test]
    fn seed_derivation_is_stable_under_reordering(
        base in 0u64..u64::MAX / 2,
        passes in proptest::collection::vec(0u64..16, 1..12),
    ) {
        // Child seeds are a pure function of (base, coordinates): deriving
        // them in any order — forward, reverse, interleaved — yields the
        // same per-item seed, which is exactly what makes work-stealing-free
        // chunked execution reorder-safe.
        let coords: Vec<(u64, u64, u64)> = passes
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, (i * 3 % 7) as u64, (i * 5 % 11) as u64))
            .collect();
        let forward: Vec<u64> = coords
            .iter()
            .map(|&(p, m, y)| split_seed(base, stream_id(p, m, y)))
            .collect();
        let mut reversed: Vec<u64> = coords
            .iter()
            .rev()
            .map(|&(p, m, y)| split_seed(base, stream_id(p, m, y)))
            .collect();
        reversed.reverse();
        prop_assert_eq!(&forward, &reversed);
        // And distinct coordinates get distinct generators.
        let unique: std::collections::HashSet<u64> = forward.iter().copied().collect();
        prop_assert_eq!(unique.len(), forward.len());
    }
}

#[test]
fn analog_dot_is_deterministic_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(404);
    let a = Tensor3::random_uniform(1, 1, 200, 0.0, 1.0, &mut rng);
    let w = Tensor3::random_uniform(1, 1, 200, -1.0, 1.0, &mut rng);
    let chip = ChipConfig::albireo_9();
    let mut serial_engine =
        AnalogEngine::new(&chip, noisy_config(5)).with_parallelism(Parallelism::serial());
    let serial = serial_engine.dot(a.as_slice(), w.as_slice());
    for threads in THREAD_COUNTS {
        let mut engine = AnalogEngine::new(&chip, noisy_config(5))
            .with_parallelism(Parallelism::with_threads(threads));
        assert_eq!(engine.dot(a.as_slice(), w.as_slice()), serial);
    }
}

//! End-to-end tests of the `albireo` binary itself (spawned as a real
//! process, exercising argument parsing, exit codes, and output).

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_albireo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (stdout, _, ok) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("COMMANDS"));
}

#[test]
fn evaluate_outputs_metrics() {
    let (stdout, _, ok) = run(&["evaluate", "alexnet", "--estimate", "c"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("AlexNet"));
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("EDP"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("frobnicate"));
}

#[test]
fn unknown_network_fails_cleanly() {
    let (_, stderr, ok) = run(&["evaluate", "lenet"]);
    assert!(!ok);
    assert!(stderr.contains("lenet"));
}

#[test]
fn missing_option_value_is_a_parse_error() {
    let (_, stderr, ok) = run(&["evaluate", "vgg16", "--ng"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"));
}

#[test]
fn power_matches_table_iii() {
    let (stdout, _, ok) = run(&["power"]);
    assert!(ok);
    assert!(stdout.contains("22.7"), "{stdout}");
}

#[test]
fn sweep_end_to_end() {
    let (stdout, _, ok) = run(&["sweep", "--param", "ng", "--values", "9,27", "--network", "alexnet"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Ng=9"));
    assert!(stdout.contains("Ng=27"));
}

#[test]
fn experiment_fig9_end_to_end() {
    let (stdout, _, ok) = run(&["experiment", "fig9"]);
    assert!(ok);
    assert!(stdout.contains("AWG"));
    assert!(stdout.contains("124") || stdout.contains("125"));
}

#[test]
fn precision_end_to_end() {
    let (stdout, _, ok) = run(&["precision", "--k2", "0.03", "--wavelengths", "20"]);
    assert!(ok);
    assert!(stdout.contains("crosstalk-limited"));
}

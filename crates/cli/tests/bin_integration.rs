//! End-to-end tests of the `albireo` binary itself (spawned as a real
//! process, exercising argument parsing, exit codes, and output).

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_albireo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (stdout, _, ok) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("COMMANDS"));
}

#[test]
fn evaluate_outputs_metrics() {
    let (stdout, _, ok) = run(&["evaluate", "alexnet", "--estimate", "c"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("AlexNet"));
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("EDP"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("frobnicate"));
}

#[test]
fn unknown_network_fails_cleanly() {
    let (_, stderr, ok) = run(&["evaluate", "lenet"]);
    assert!(!ok);
    assert!(stderr.contains("lenet"));
}

#[test]
fn missing_option_value_is_a_parse_error() {
    let (_, stderr, ok) = run(&["evaluate", "vgg16", "--ng"]);
    assert!(!ok);
    assert!(stderr.contains("requires a value"));
}

#[test]
fn power_matches_table_iii() {
    let (stdout, _, ok) = run(&["power"]);
    assert!(ok);
    assert!(stdout.contains("22.7"), "{stdout}");
}

#[test]
fn sweep_end_to_end() {
    let (stdout, _, ok) = run(&[
        "sweep",
        "--param",
        "ng",
        "--values",
        "9,27",
        "--network",
        "alexnet",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Ng=9"));
    assert!(stdout.contains("Ng=27"));
}

#[test]
fn experiment_fig9_end_to_end() {
    let (stdout, _, ok) = run(&["experiment", "fig9"]);
    assert!(ok);
    assert!(stdout.contains("AWG"));
    assert!(stdout.contains("124") || stdout.contains("125"));
}

#[test]
fn precision_end_to_end() {
    let (stdout, _, ok) = run(&["precision", "--k2", "0.03", "--wavelengths", "20"]);
    assert!(ok);
    assert!(stdout.contains("crosstalk-limited"));
}

#[test]
fn threads_flag_is_accepted_everywhere() {
    let (stdout, _, ok) = run(&["evaluate", "vgg16", "--threads", "4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("VGG16"));
}

#[test]
fn threads_flag_rejects_garbage() {
    let (_, stderr, ok) = run(&["evaluate", "vgg16", "--threads", "many"]);
    assert!(!ok);
    assert!(stderr.contains("many"));
}

#[test]
fn output_is_identical_at_any_thread_count() {
    let (serial, _, ok) = run(&["evaluate", "vgg16", "--per-layer", "99", "--threads", "1"]);
    assert!(ok);
    for threads in ["2", "8"] {
        let (parallel, _, ok) = run(&[
            "evaluate",
            "vgg16",
            "--per-layer",
            "99",
            "--threads",
            threads,
        ]);
        assert!(ok);
        assert_eq!(parallel, serial, "output diverged at {threads} threads");
    }
}

#[test]
fn sweep_json_end_to_end() {
    let (stdout, _, ok) = run(&[
        "sweep",
        "--param",
        "ng",
        "--values",
        "9,27",
        "--json",
        "--network",
        "alexnet",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.trim_end().ends_with(']'));
    for key in [
        "\"design\"",
        "\"power_w\"",
        "\"area_mm2\"",
        "\"latency_s\"",
        "\"edp_mj_ms\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn bench_end_to_end_emits_schema() {
    let (stdout, _, ok) = run(&["bench", "--thread-counts", "1,2", "--target-ms", "1"]);
    assert!(ok, "{stdout}");
    for key in [
        "\"schema\": \"albireo.bench.parallel/v1\"",
        "\"thread_counts\": [1, 2]",
        "\"experiments\"",
        "\"paper_grid\"",
        "\"device_sweeps\"",
        "\"analog_conv\"",
        "\"wall_ms\"",
        "\"speedup\"",
        "\"total\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    assert!(stdout.contains("\"deterministic\": true"));
    assert!(!stdout.contains("\"deterministic\": false"));
}

#[test]
fn serve_end_to_end_prints_service_report() {
    let (stdout, _, ok) = run(&["serve", "--requests", "200", "--seed", "7"]);
    assert!(ok, "{stdout}");
    for key in [
        "serving report",
        "p50",
        "p95",
        "p99",
        "shed",
        "goodput",
        "mJ/request",
        "util",
        "albireo_9",
        "albireo_27",
        "digest",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn serve_same_seed_is_byte_identical_at_any_thread_count() {
    let (baseline, _, ok) = run(&[
        "serve",
        "--requests",
        "200",
        "--seed",
        "7",
        "--threads",
        "1",
    ]);
    assert!(ok, "{baseline}");
    for threads in ["2", "8"] {
        let (other, _, ok) = run(&[
            "serve",
            "--requests",
            "200",
            "--seed",
            "7",
            "--threads",
            threads,
        ]);
        assert!(ok);
        assert_eq!(other, baseline, "serve diverged at {threads} threads");
    }
    // Replicated runs must also be thread-count invariant.
    let (rep1, _, ok1) = run(&[
        "serve",
        "--requests",
        "120",
        "--replicas",
        "3",
        "--threads",
        "1",
    ]);
    let (rep8, _, ok8) = run(&[
        "serve",
        "--requests",
        "120",
        "--replicas",
        "3",
        "--threads",
        "8",
    ]);
    assert!(ok1 && ok8);
    assert_eq!(rep1, rep8);
}

#[test]
fn serve_trace_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join("albireo_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_for = |threads: &str| {
        let path = dir.join(format!("trace_t{threads}.json"));
        let path_str = path.to_str().unwrap().to_string();
        let (stdout, _, ok) = run(&[
            "serve",
            "--requests",
            "200",
            "--seed",
            "7",
            "--threads",
            threads,
            "--trace-out",
            &path_str,
        ]);
        assert!(ok, "{stdout}");
        let digest = stdout
            .lines()
            .find(|l| l.contains("trace events"))
            .and_then(|l| l.split("digest ").nth(1))
            .expect("digest note in output")
            .trim()
            .to_string();
        let trace = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (trace, digest)
    };
    let (baseline, base_digest) = trace_for("1");
    assert!(baseline.contains("\"traceEvents\""));
    assert!(baseline.contains("\"ph\": \"X\""), "no complete events");
    for threads in ["2", "4", "8"] {
        let (trace, digest) = trace_for(threads);
        assert_eq!(trace, baseline, "trace diverged at {threads} threads");
        assert_eq!(digest, base_digest, "digest diverged at {threads} threads");
    }
}

#[test]
fn serve_json_end_to_end() {
    let (stdout, _, ok) = run(&["serve", "--requests", "100", "--json"]);
    assert!(ok, "{stdout}");
    for key in [
        "\"schema\": \"albireo.bench.serving/v4\"",
        "\"latency_ms\"",
        "\"goodput_rps\"",
        "\"energy_per_request_mj\"",
        "\"chips\"",
        "\"digest\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn serve_chip_failure_degrades_without_error() {
    let (stdout, _, ok) = run(&[
        "serve",
        "--requests",
        "300",
        "--rate",
        "4000",
        "--fail",
        "1@0.01",
    ]);
    assert!(ok, "a mid-run chip failure must not error: {stdout}");
    assert!(stdout.contains("OFFLINE"), "{stdout}");
    assert!(!stdout.contains("completed 0 "), "{stdout}");
}

#[test]
fn plan_end_to_end_is_thread_count_invariant() {
    let run_at = |threads: &str| {
        run(&[
            "plan",
            "--slo",
            "p99<5ms",
            "--rate",
            "8000",
            "--requests",
            "400",
            "--screen-requests",
            "100",
            "--json",
            "--threads",
            threads,
        ])
    };
    let (baseline, _, ok) = run_at("1");
    assert!(ok, "{baseline}");
    for key in [
        "\"schema\": \"albireo.plan/v1\"",
        "\"winner\"",
        "\"frontier\"",
        "\"energy_per_request_mj\"",
        "\"digest\"",
    ] {
        assert!(baseline.contains(key), "missing {key} in {baseline}");
    }
    for threads in ["2", "8"] {
        let (other, _, ok) = run_at(threads);
        assert!(ok);
        assert_eq!(other, baseline, "plan diverged at {threads} threads");
    }
}

#[test]
fn plan_writes_report_and_frontier_csv() {
    let dir = std::env::temp_dir().join("albireo_plan_test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("plan.json");
    let csv_path = dir.join("frontier.csv");
    let (stdout, _, ok) = run(&[
        "plan",
        "--slo",
        "p99<5ms",
        "--rate",
        "8000",
        "--requests",
        "400",
        "--screen-requests",
        "100",
        "--json",
        "--out",
        json_path.to_str().unwrap(),
        "--csv-out",
        csv_path.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote"), "{stdout}");
    assert!(stdout.contains("digest"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("albireo.plan/v1"));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(
        csv.starts_with("rank,fleet,chips,policy,autoscale,"),
        "{csv}"
    );
    assert!(csv.lines().count() >= 2, "{csv}");
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn plan_without_slo_fails_with_usage_error() {
    let (_, stderr, ok) = run(&["plan"]);
    assert!(!ok);
    assert!(stderr.contains("--slo"), "{stderr}");
}

#[test]
fn bench_writes_json_file() {
    let dir = std::env::temp_dir().join("albireo_bench_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_parallel.json");
    let path_str = path.to_str().unwrap();
    let (stdout, _, ok) = run(&[
        "bench",
        "--thread-counts",
        "1",
        "--target-ms",
        "1",
        "--out",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("wrote"));
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("albireo.bench.parallel/v1"));
    std::fs::remove_file(&path).ok();
}

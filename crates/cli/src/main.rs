//! `albireo` — the command-line front end of the Albireo silicon-photonic
//! CNN accelerator simulator.
//!
//! ```text
//! albireo evaluate vgg16 --estimate conservative --ng 9
//! albireo sweep --param ng --values 3,9,27
//! albireo experiment table4
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let mut raw = std::env::args().skip(1);
    let command = match raw.next() {
        Some(c) => c,
        None => {
            print!("{}", commands::USAGE);
            return;
        }
    };
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match commands::dispatch(&command, &parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!("run `albireo help` for usage");
            }
            std::process::exit(e.exit_code());
        }
    }
}

//! `albireo` — the command-line front end of the Albireo silicon-photonic
//! CNN accelerator simulator.
//!
//! ```text
//! albireo evaluate vgg16 --estimate conservative --ng 9
//! albireo sweep --param ng --values 3,9,27
//! albireo serve --requests 500 --trace-out trace.json
//! albireo experiment table4
//! ```

mod args;
mod commands;

use args::Args;

/// Every diagnostic leaves through this one formatter: a fixed header
/// carrying the obs schema version and the run's seed (`seed=none` when
/// the command has no seed or parsing failed before one was read),
/// followed by the message itself.
fn diagnostic(seed: Option<&str>, message: &dyn std::fmt::Display) -> String {
    format!(
        "albireo[{} seed={}] error: {message}",
        albireo_obs::SCHEMA,
        seed.unwrap_or("none"),
    )
}

fn main() {
    let mut raw = std::env::args().skip(1);
    let command = match raw.next() {
        Some(c) => c,
        None => {
            print!("{}", commands::USAGE);
            return;
        }
    };
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{}", diagnostic(None, &e));
            std::process::exit(2);
        }
    };
    let seed = parsed.get("seed").map(str::to_string);
    match commands::dispatch(&command, &parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{}", diagnostic(seed.as_deref(), &e));
            if e.is_usage() {
                eprintln!("run `albireo help` for usage");
            }
            std::process::exit(e.exit_code());
        }
    }
}
